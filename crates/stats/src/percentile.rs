//! Percentile estimation with linear interpolation.
//!
//! The paper's grouping step (§II-A2) builds per-server feature vectors from
//! the {5, 25, 50, 75, 95}th percentiles of CPU utilisation, and uses the
//! "industry best practice of 5th percentile to represent the minimum and the
//! 95th percentile to represent the maximum" to eliminate outliers.

use crate::StatsError;

/// The percentile ranks used by the paper's server feature vector.
pub const FEATURE_PERCENTILES: [f64; 5] = [5.0, 25.0, 50.0, 75.0, 95.0];

/// Computes the `p`-th percentile (0..=100) of unsorted data.
///
/// Uses the common linear-interpolation definition (NIST R-7): the
/// percentile rank maps to position `p/100 * (n-1)` in the sorted data.
///
/// # Errors
///
/// - [`StatsError::EmptyInput`] if `values` is empty.
/// - [`StatsError::InvalidParameter`] if `p` is outside `0..=100`.
/// - [`StatsError::NonFinite`] if any value is NaN or infinite.
///
/// # Example
///
/// ```
/// use headroom_stats::percentile::percentile;
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// let data = [15.0, 20.0, 35.0, 40.0, 50.0];
/// assert_eq!(percentile(&data, 50.0)?, 35.0);
/// assert_eq!(percentile(&data, 100.0)?, 50.0);
/// # Ok(())
/// # }
/// ```
pub fn percentile(values: &[f64], p: f64) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter("percentile must be within 0..=100"));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
    Ok(percentile_of_sorted(&sorted, p))
}

/// Computes the `p`-th percentile of data that is **already sorted ascending**.
///
/// Skips validation and sorting; used in hot loops over pre-sorted windows.
/// Returns the last element for `p = 100`.
///
/// # Panics
///
/// Panics in debug builds if `sorted` is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty(), "percentile_of_sorted requires non-empty input");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The standard five-point percentile profile used as a grouping feature.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PercentileProfile {
    /// 5th percentile ("minimum" by industry practice).
    pub p5: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile ("maximum" by industry practice).
    pub p95: f64,
}

impl PercentileProfile {
    /// Computes the profile from unsorted data.
    ///
    /// # Errors
    ///
    /// Same as [`percentile`].
    pub fn from_values(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
        Ok(PercentileProfile {
            p5: percentile_of_sorted(&sorted, 5.0),
            p25: percentile_of_sorted(&sorted, 25.0),
            p50: percentile_of_sorted(&sorted, 50.0),
            p75: percentile_of_sorted(&sorted, 75.0),
            p95: percentile_of_sorted(&sorted, 95.0),
        })
    }

    /// Returns the profile as the 5-element feature array `[p5, p25, p50, p75, p95]`.
    pub fn as_features(&self) -> [f64; 5] {
        [self.p5, self.p25, self.p50, self.p75, self.p95]
    }

    /// Spread between the 95th and 5th percentile — the paper's "tightly
    /// bound CPU utilisation range" test uses this band.
    pub fn band(&self) -> f64 {
        self.p95 - self.p5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_set() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0).unwrap(), 2.0);
    }

    #[test]
    fn median_of_even_set_interpolates() {
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0).unwrap(), 2.5);
    }

    #[test]
    fn extremes() {
        let data = [5.0, 1.0, 9.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 9.0);
    }

    #[test]
    fn p95_interpolation() {
        // 0..=100 → p95 should be 95.0 exactly under R-7.
        let data: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((percentile(&data, 95.0).unwrap() - 95.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(percentile(&[], 50.0).unwrap_err(), StatsError::EmptyInput);
        assert!(matches!(percentile(&[1.0], 101.0).unwrap_err(), StatsError::InvalidParameter(_)));
        assert_eq!(percentile(&[f64::NAN], 50.0).unwrap_err(), StatsError::NonFinite);
    }

    #[test]
    fn single_value_profile() {
        let p = PercentileProfile::from_values(&[7.0]).unwrap();
        assert_eq!(p.as_features(), [7.0; 5]);
        assert_eq!(p.band(), 0.0);
    }

    #[test]
    fn profile_is_monotone() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let p = PercentileProfile::from_values(&values).unwrap();
        assert!(p.p5 <= p.p25 && p.p25 <= p.p50 && p.p50 <= p.p75 && p.p75 <= p.p95);
        assert!(p.band() > 0.0);
    }

    #[test]
    fn profile_rejects_empty() {
        assert_eq!(PercentileProfile::from_values(&[]).unwrap_err(), StatsError::EmptyInput);
    }

    #[test]
    fn unsorted_input_handled() {
        let data = [50.0, 10.0, 40.0, 20.0, 30.0];
        assert_eq!(percentile(&data, 50.0).unwrap(), 30.0);
    }
}
