//! Incremental degree-2 least squares with removal and shard merge.
//!
//! The quadratic workload→latency model (§II-B of the paper) is the second
//! of the two response curves behind every sizing decision. This
//! accumulator maintains it over a stream in O(1) per observation, supports
//! sliding-window eviction via [`remove`], and — like
//! [`crate::streaming::StreamingLinReg`] — composes across shards via
//! [`merge`], the canonical combine operation of the shard-and-merge
//! planner core (see [`crate::combine::Combine`]).
//!
//! [`remove`]: StreamingQuadFit::remove
//! [`merge`]: StreamingQuadFit::merge

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::polyfit::{Polynomial, Quadratic};
use crate::StatsError;

/// Incremental degree-2 least squares over a stream with removal support.
///
/// Maintains `Σuᵏ` for k ≤ 4 and `Σy`, `Σy²`, `Σuy`, `Σu²y`, with
/// `u = x − shift` (the shift is pinned to the first observation so the
/// normal equations stay well-conditioned far from the origin). The caller
/// owns the sliding window and calls [`remove`] with evicted pairs.
///
/// [`remove`]: StreamingQuadFit::remove
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamingQuadFit {
    n: usize,
    shift: f64,
    shift_set: bool,
    su: [f64; 4], // Σu, Σu², Σu³, Σu⁴
    sy: f64,
    sy2: f64,
    suy: f64,
    su2y: f64,
}

impl StreamingQuadFit {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingQuadFit::default()
    }

    /// Observations accumulated.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when nothing is accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds one observation. Non-finite pairs are ignored.
    pub fn push(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        if !self.shift_set {
            self.shift = x;
            self.shift_set = true;
        }
        let u = x - self.shift;
        let u2 = u * u;
        self.n += 1;
        self.su[0] += u;
        self.su[1] += u2;
        self.su[2] += u2 * u;
        self.su[3] += u2 * u2;
        self.sy += y;
        self.sy2 += y * y;
        self.suy += u * y;
        self.su2y += u2 * y;
    }

    /// Removes one previously pushed observation.
    ///
    /// Non-finite pairs are ignored, matching [`push`].
    ///
    /// # Panics
    ///
    /// Panics when the accumulator is empty.
    ///
    /// [`push`]: StreamingQuadFit::push
    pub fn remove(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        assert!(self.n > 0, "remove from empty StreamingQuadFit");
        let u = x - self.shift;
        let u2 = u * u;
        self.n -= 1;
        self.su[0] -= u;
        self.su[1] -= u2;
        self.su[2] -= u2 * u;
        self.su[3] -= u2 * u2;
        self.sy -= y;
        self.sy2 -= y * y;
        self.suy -= u * y;
        self.su2y -= u2 * y;
        if self.n == 0 {
            // Fresh start: the next push re-pins the shift.
            *self = StreamingQuadFit::new();
        }
    }

    /// Folds another accumulator into this one (shard-and-combine).
    ///
    /// The two accumulators may have different conditioning shifts: the
    /// other's power sums are re-based onto this shift with the binomial
    /// expansion of `Σ(u′ + δ)ᵏ`, so the merged accumulator represents
    /// exactly the concatenated observation streams.
    pub fn merge(&mut self, other: &StreamingQuadFit) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        // other's u′ = x − other.shift; in this basis u = u′ + δ.
        let d = other.shift - self.shift;
        let d2 = d * d;
        let nf = other.n as f64;
        let [s1, s2, s3, s4] = other.su;
        self.n += other.n;
        self.su[0] += s1 + nf * d;
        self.su[1] += s2 + 2.0 * d * s1 + nf * d2;
        self.su[2] += s3 + 3.0 * d * s2 + 3.0 * d2 * s1 + nf * d2 * d;
        self.su[3] += s4 + 4.0 * d * s3 + 6.0 * d2 * s2 + 4.0 * d2 * d * s1 + nf * d2 * d2;
        self.sy += other.sy;
        self.sy2 += other.sy2;
        self.suy += other.suy + d * other.sy;
        self.su2y += other.su2y + 2.0 * d * other.suy + d2 * other.sy;
    }

    /// Discards all accumulated observations.
    pub fn clear(&mut self) {
        *self = StreamingQuadFit::new();
    }

    /// The current quadratic fit (ascending coefficients, in original x),
    /// plus its R².
    ///
    /// A convenience wrapper around [`fit_quadratic`] for callers that
    /// want a [`Polynomial`]; hot per-pool paths should call
    /// [`fit_quadratic`] directly — same coefficients, no coefficient
    /// allocation.
    ///
    /// # Errors
    ///
    /// As [`fit_quadratic`].
    ///
    /// [`fit_quadratic`]: StreamingQuadFit::fit_quadratic
    pub fn fit(&self) -> Result<(Polynomial, f64), StatsError> {
        let (quad, r_squared) = self.fit_quadratic()?;
        Ok((Polynomial::new(quad.coeffs.to_vec()), r_squared))
    }

    /// The current quadratic fit as an inline-coefficient [`Quadratic`],
    /// plus its R² — the allocation-free form of [`fit`], bit-identical
    /// coefficients.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] with fewer than 3 observations.
    /// - [`StatsError::Singular`] when the x values do not span a quadratic
    ///   (e.g. fewer than 3 distinct values).
    ///
    /// [`fit`]: StreamingQuadFit::fit
    pub fn fit_quadratic(&self) -> Result<(Quadratic, f64), StatsError> {
        if self.n < 3 {
            return Err(StatsError::InsufficientData { needed: 3, got: self.n });
        }
        let n = self.n as f64;
        // Normal equations (XᵀX)a = Xᵀy in the shifted basis.
        let mut m = [
            [n, self.su[0], self.su[1], self.sy],
            [self.su[0], self.su[1], self.su[2], self.suy],
            [self.su[1], self.su[2], self.su[3], self.su2y],
        ];
        // Gaussian elimination with partial pivoting.
        for col in 0..3 {
            let pivot = (col..3)
                .max_by(|&a, &b| {
                    m[a][col].abs().partial_cmp(&m[b][col].abs()).expect("finite sums")
                })
                .expect("non-empty");
            m.swap(col, pivot);
            let scale = m[col].iter().take(3).fold(0.0f64, |acc, v| acc.max(v.abs())).max(1.0);
            if m[col][col].abs() < 1e-12 * scale {
                return Err(StatsError::Singular);
            }
            for row in (col + 1)..3 {
                let f = m[row][col] / m[col][col];
                #[allow(clippy::needless_range_loop)] // rows `row` and `col` alias the same array
                for k in col..4 {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
        let mut a = [0.0f64; 3];
        for row in (0..3).rev() {
            let mut acc = m[row][3];
            for k in (row + 1)..3 {
                acc -= m[row][k] * a[k];
            }
            a[row] = acc / m[row][row];
        }
        // Expand a0 + a1·(x−c) + a2·(x−c)² into ascending powers of x.
        let c = self.shift;
        let quad =
            Quadratic { coeffs: [a[0] - a[1] * c + a[2] * c * c, a[1] - 2.0 * a[2] * c, a[2]] };
        // R² from the closed forms: SS_res = Σy² − aᵀXᵀy, SS_tot = Σy² − (Σy)²/n.
        let ss_res = (self.sy2 - (a[0] * self.sy + a[1] * self.suy + a[2] * self.su2y)).max(0.0);
        let ss_tot = self.sy2 - self.sy * self.sy / n;
        let r_squared = if ss_tot < 1e-12 { 1.0 } else { (1.0 - ss_res / ss_tot).clamp(0.0, 1.0) };
        Ok((quad, r_squared))
    }
}

impl Persist for StreamingQuadFit {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.n);
        w.put_f64(self.shift);
        w.put_bool(self.shift_set);
        for v in &self.su {
            w.put_f64(*v);
        }
        w.put_f64(self.sy);
        w.put_f64(self.sy2);
        w.put_f64(self.suy);
        w.put_f64(self.su2y);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.take_usize()?;
        let shift = r.take_f64()?;
        let shift_set = r.take_bool()?;
        let mut su = [0.0f64; 4];
        for v in &mut su {
            *v = r.take_f64()?;
        }
        Ok(StreamingQuadFit {
            n,
            shift,
            shift_set,
            su,
            sy: r.take_f64()?,
            sy2: r.take_f64()?,
            suy: r.take_f64()?,
            su2y: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_paper_quadratic() {
        // Pool B latency curve: 4.028e-5 x² − 0.031 x + 36.68.
        let mut q = StreamingQuadFit::new();
        for i in 0..400 {
            let x = 100.0 + (i % 120) as f64 * 5.0;
            q.push(x, 4.028e-5 * x * x - 0.031 * x + 36.68);
        }
        let (poly, r2) = q.fit().unwrap();
        assert!((poly.coeffs()[2] - 4.028e-5).abs() < 1e-9, "{:?}", poly.coeffs());
        assert!((poly.coeffs()[1] + 0.031).abs() < 1e-6);
        assert!((poly.coeffs()[0] - 36.68).abs() < 1e-4);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn matches_batch_polyfit_over_sliding_window() {
        let xs: Vec<f64> = (0..600).map(|i| 50.0 + (i % 97) as f64 * 4.1).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2e-4 * x * x - 0.05 * x + 20.0 + ((i * 13) % 7) as f64 * 0.1)
            .collect();
        let window = 240;
        let mut q = StreamingQuadFit::new();
        for i in 0..xs.len() {
            q.push(xs[i], ys[i]);
            if i >= window {
                q.remove(xs[i - window], ys[i - window]);
            }
        }
        let (poly, _) = q.fit().unwrap();
        let start = xs.len() - window;
        let batch = Polynomial::fit(&xs[start..], &ys[start..], 2).unwrap();
        for (s, b) in poly.coeffs().iter().zip(batch.poly.coeffs()) {
            assert!((s - b).abs() < 1e-6 * (1.0 + b.abs()), "{s} vs {b}");
        }
    }

    #[test]
    fn merge_matches_single_stream() {
        // Two shards see disjoint halves of the stream and pin different
        // shifts; the merge must agree with one accumulator that saw it all.
        let xs: Vec<f64> = (0..300).map(|i| 80.0 + (i % 71) as f64 * 6.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3e-4 * x * x - 0.02 * x + 11.0).collect();
        let mut whole = StreamingQuadFit::new();
        let mut left = StreamingQuadFit::new();
        let mut right = StreamingQuadFit::new();
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            whole.push(x, y);
            if i < 140 {
                left.push(x, y);
            } else {
                right.push(x, y);
            }
        }
        assert_ne!(left, right, "shards pinned different shifts");
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        let (merged, _) = left.fit().unwrap();
        let (single, _) = whole.fit().unwrap();
        for (m, s) in merged.coeffs().iter().zip(single.coeffs()) {
            assert!((m - s).abs() < 1e-7 * (1.0 + s.abs()), "{m} vs {s}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut q = StreamingQuadFit::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            q.push(x, x * x);
        }
        let snapshot = q;
        q.merge(&StreamingQuadFit::new());
        assert_eq!(q, snapshot);
        let mut empty = StreamingQuadFit::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn quad_insufficient_and_singular() {
        let mut q = StreamingQuadFit::new();
        assert!(matches!(q.fit(), Err(StatsError::InsufficientData { .. })));
        q.push(1.0, 1.0);
        q.push(1.0, 2.0);
        q.push(1.0, 3.0);
        assert_eq!(q.fit().unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn quad_remove_to_empty_resets_shift() {
        let mut q = StreamingQuadFit::new();
        q.push(500.0, 1.0);
        q.remove(500.0, 1.0);
        assert!(q.is_empty());
        // The next stream re-pins the shift to its own first x.
        for x in [10.0, 20.0, 30.0, 40.0] {
            q.push(x, 2.0 * x * x);
        }
        let (poly, _) = q.fit().unwrap();
        assert!((poly.coeffs()[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quad_ignores_non_finite() {
        let mut q = StreamingQuadFit::new();
        q.push(f64::NAN, 1.0);
        assert!(q.is_empty());
        for x in [1.0, 2.0, 3.0, 4.0] {
            q.push(x, x);
        }
        q.remove(f64::INFINITY, 1.0);
        assert_eq!(q.len(), 4);
    }
}
