//! Running summary statistics (Welford's online algorithm).

use crate::StatsError;

/// Accumulates count, mean, variance, min and max in a single pass.
///
/// Uses Welford's numerically stable online update, so it is safe to feed
/// millions of 120-second counter windows without catastrophic cancellation.
///
/// # Example
///
/// ```
/// use headroom_stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary from a slice in one call.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `values` is empty and
    /// [`StatsError::NonFinite`] if any value is NaN or infinite.
    pub fn from_slice(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        let mut s = Summary::new();
        for &v in values {
            s.add(v);
        }
        Ok(s)
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merges another summary into this one (parallel-combinable).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); `0.0` when fewer than 1 value.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); `0.0` when fewer than 2 values.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); `0.0` when the mean is zero.
    ///
    /// The metric-validation step uses this to decide whether a counter is
    /// "low variance" for a given workload level (§II-A1).
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean.abs()
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut s = Summary::new();
        s.add(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let seq = Summary::from_slice(&all).unwrap();
        let mut a = Summary::from_slice(&all[..37]).unwrap();
        let b = Summary::from_slice(&all[37..]).unwrap();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_slice_rejects_empty_and_nan() {
        assert_eq!(Summary::from_slice(&[]).unwrap_err(), StatsError::EmptyInput);
        assert_eq!(Summary::from_slice(&[1.0, f64::NAN]).unwrap_err(), StatsError::NonFinite);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[10.0, 10.0, 10.0]).unwrap();
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let s = Summary::from_slice(&[5.0, 10.0, 15.0]).unwrap();
        assert!(s.coefficient_of_variation() > 0.0);
    }

    #[test]
    fn collects_from_iterator() {
        let s: Summary = (1..=5).map(|i| i as f64).collect();
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.sum(), 15.0);
    }

    #[test]
    fn extend_adds_values() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
