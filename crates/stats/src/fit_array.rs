//! Fixed-size arrays of streaming accumulators, indexed by resource.
//!
//! The multi-resource planner keeps one response fit *per resource* for
//! every pool — a vector of accumulators that must shard and combine
//! exactly like its elements do. [`FitArray`] is that vector: a plain
//! `[F; N]` (no heap, `Copy` when the element is), where every bulk
//! operation ([`Combine::combine`], [`clear`]) applies element-wise. Because
//! the array is inline and fixed-size, adding it to per-pool shard state
//! costs no allocation on the steady-state window path.
//!
//! # Example
//!
//! ```
//! use headroom_stats::{Combine, FitArray, StreamingLinReg};
//!
//! // One workload→utilization fit per resource (here: 2 resources).
//! let mut shard_a: FitArray<StreamingLinReg, 2> = FitArray::new();
//! let mut shard_b: FitArray<StreamingLinReg, 2> = FitArray::new();
//! for x in 0..50 {
//!     let x = x as f64;
//!     shard_a[0].push(x, 0.5 * x + 1.0);
//!     shard_b[1].push(x, 2.0 * x - 3.0);
//! }
//! // Shard-and-combine: element-wise, exact.
//! shard_a.combine(&shard_b);
//! assert!((shard_a[0].fit().unwrap().slope - 0.5).abs() < 1e-12);
//! assert!((shard_a[1].fit().unwrap().slope - 2.0).abs() < 1e-12);
//! ```
//!
//! [`clear`]: FitArray::clear

use std::ops::{Index, IndexMut};

use crate::combine::Combine;
use crate::persist::{Persist, PersistError, Reader, Writer};

/// A fixed-size array of `N` independent accumulators of type `F`.
///
/// Indexing is by `usize`; callers with a semantic axis (e.g. a resource
/// enum) index with its stable integer mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitArray<F, const N: usize> {
    fits: [F; N],
}

impl<F: Default, const N: usize> Default for FitArray<F, N> {
    fn default() -> Self {
        FitArray::new()
    }
}

impl<F: Default, const N: usize> FitArray<F, N> {
    /// An array of `N` empty accumulators.
    pub fn new() -> Self {
        FitArray { fits: std::array::from_fn(|_| F::default()) }
    }

    /// Resets every accumulator to its empty state.
    pub fn clear(&mut self) {
        for f in &mut self.fits {
            *f = F::default();
        }
    }
}

impl<F, const N: usize> FitArray<F, N> {
    /// The accumulators, in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, F> {
        self.fits.iter()
    }

    /// Number of accumulators (always `N`).
    pub fn len(&self) -> usize {
        N
    }

    /// Whether the array holds no accumulators (`N == 0`).
    pub fn is_empty(&self) -> bool {
        N == 0
    }
}

impl<F, const N: usize> Index<usize> for FitArray<F, N> {
    type Output = F;

    fn index(&self, i: usize) -> &F {
        &self.fits[i]
    }
}

impl<F, const N: usize> IndexMut<usize> for FitArray<F, N> {
    fn index_mut(&mut self, i: usize) -> &mut F {
        &mut self.fits[i]
    }
}

impl<F: Combine, const N: usize> Combine for FitArray<F, N> {
    /// Element-wise combine: index `i` absorbs the other array's index `i`.
    fn combine(&mut self, other: &Self) {
        for (a, b) in self.fits.iter_mut().zip(other.fits.iter()) {
            a.combine(b);
        }
    }
}

impl<F: Persist + Default, const N: usize> Persist for FitArray<F, N> {
    fn persist(&self, w: &mut Writer) {
        for f in &self.fits {
            f.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut out = FitArray::new();
        for f in &mut out.fits {
            *f = F::restore(r)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingLinReg;

    #[test]
    fn combine_is_element_wise_merge() {
        let mut whole: FitArray<StreamingLinReg, 3> = FitArray::new();
        let mut left: FitArray<StreamingLinReg, 3> = FitArray::new();
        let mut right: FitArray<StreamingLinReg, 3> = FitArray::new();
        for i in 0..60 {
            let x = 10.0 + i as f64 * 3.0;
            for r in 0..3 {
                let y = (r + 1) as f64 * x + r as f64;
                whole[r].push(x, y);
                if i < 30 {
                    left[r].push(x, y);
                } else {
                    right[r].push(x, y);
                }
            }
        }
        left.combine(&right);
        for r in 0..3 {
            assert_eq!(left[r].len(), whole[r].len());
            let (merged, single) = (left[r].fit().unwrap(), whole[r].fit().unwrap());
            assert!((merged.slope - single.slope).abs() < 1e-9);
        }
    }

    #[test]
    fn clear_resets_every_element() {
        let mut fits: FitArray<StreamingLinReg, 2> = FitArray::new();
        fits[0].push(1.0, 2.0);
        fits[1].push(3.0, 4.0);
        fits.clear();
        assert!(fits.iter().all(|f| f.is_empty()));
        assert_eq!(fits.len(), 2);
        assert!(!fits.is_empty());
    }
}
