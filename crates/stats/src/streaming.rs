//! Incremental (streaming) simple linear regression.
//!
//! The batch planner refits [`crate::linreg::LinearFit`] from scratch over a
//! full observation range — O(n) per refit. A live planner revising its fit
//! every 120-second window cannot afford that: [`StreamingLinReg`] maintains
//! the same fit with O(1) `push`/`remove` updates, using Welford-style
//! centered moments so the result matches the batch fit to floating-point
//! accuracy even when the data is far from the origin.
//!
//! `remove` exists so a caller holding a ring buffer can maintain a sliding
//! window: push the incoming pair, remove the evicted one, and the fit now
//! covers exactly the window contents.
//!
//! # Example
//!
//! ```
//! use headroom_stats::streaming::StreamingLinReg;
//! use headroom_stats::LinearFit;
//!
//! # fn main() -> Result<(), headroom_stats::StatsError> {
//! let xs = [100.0, 200.0, 300.0, 400.0];
//! let ys = [4.2, 7.0, 9.8, 12.6];
//! let mut reg = StreamingLinReg::new();
//! for (&x, &y) in xs.iter().zip(&ys) {
//!     reg.push(x, y);
//! }
//! let streaming = reg.fit()?;
//! let batch = LinearFit::fit(&xs, &ys)?;
//! assert!((streaming.slope - batch.slope).abs() < 1e-12);
//! assert!((streaming.intercept - batch.intercept).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::linreg::LinearFit;
use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::StatsError;

/// Running simple linear regression with O(1) insert and remove.
///
/// Maintains centered second moments (`Σ(x−x̄)²`, `Σ(x−x̄)(y−ȳ)`,
/// `Σ(y−ȳ)²`) via Welford update/downdate formulas, so [`fit`] is O(1) and
/// numerically agrees with the two-pass batch [`LinearFit::fit`].
///
/// Non-finite observations are ignored on `push` (mirroring the telemetry
/// pipeline's treatment of corrupt windows); `remove` must only be called
/// with pairs previously pushed — removing arbitrary values silently
/// corrupts the moments.
///
/// [`fit`]: StreamingLinReg::fit
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamingLinReg {
    n: usize,
    mean_x: f64,
    mean_y: f64,
    sxx: f64,
    sxy: f64,
    syy: f64,
}

impl StreamingLinReg {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingLinReg::default()
    }

    /// Number of pairs currently accumulated.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no pairs are accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean of the accumulated x values (0 when empty).
    pub fn mean_x(&self) -> f64 {
        self.mean_x
    }

    /// Mean of the accumulated y values (0 when empty).
    pub fn mean_y(&self) -> f64 {
        self.mean_y
    }

    /// Population variance of the accumulated x values (0 when empty).
    pub fn variance_x(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sxx / self.n as f64).max(0.0)
        }
    }

    /// Population variance of the accumulated y values (0 when empty).
    pub fn variance_y(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.syy / self.n as f64).max(0.0)
        }
    }

    /// Adds one observation. Non-finite pairs are ignored.
    pub fn push(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        self.n += 1;
        let nf = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / nf;
        self.mean_y += dy / nf;
        // Note: uses the *old* delta on one side and the new mean on the
        // other — the standard Welford cross-moment update.
        self.sxx += dx * (x - self.mean_x);
        self.syy += dy * (y - self.mean_y);
        self.sxy += dx * (y - self.mean_y);
    }

    /// Removes one previously pushed observation (sliding-window eviction).
    ///
    /// Non-finite pairs are ignored, matching their treatment in [`push`].
    ///
    /// # Panics
    ///
    /// Panics when the accumulator is empty.
    ///
    /// [`push`]: StreamingLinReg::push
    pub fn remove(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        assert!(self.n > 0, "remove from empty StreamingLinReg");
        if self.n == 1 {
            *self = StreamingLinReg::new();
            return;
        }
        let nf = (self.n - 1) as f64;
        // Inverse of the Welford update: recover the means the accumulator
        // had before this pair was pushed, then subtract its contribution.
        let mean_x_prev = (self.mean_x * self.n as f64 - x) / nf;
        let mean_y_prev = (self.mean_y * self.n as f64 - y) / nf;
        let dx = x - mean_x_prev;
        let dy = y - mean_y_prev;
        self.sxx = (self.sxx - dx * (x - self.mean_x)).max(0.0);
        self.syy = (self.syy - dy * (y - self.mean_y)).max(0.0);
        self.sxy -= dx * (y - self.mean_y);
        self.mean_x = mean_x_prev;
        self.mean_y = mean_y_prev;
        self.n -= 1;
    }

    /// Folds another accumulator into this one (parallel merge, Chan et
    /// al.'s pairwise formula).
    pub fn merge(&mut self, other: &StreamingLinReg) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.sxx += other.sxx + dx * dx * n1 * n2 / n;
        self.syy += other.syy + dy * dy * n1 * n2 / n;
        self.sxy += other.sxy + dx * dy * n1 * n2 / n;
        self.mean_x += dx * n2 / n;
        self.mean_y += dy * n2 / n;
        self.n += other.n;
    }

    /// Discards all accumulated observations.
    pub fn clear(&mut self) {
        *self = StreamingLinReg::new();
    }

    /// The current OLS fit, identical in contract to [`LinearFit::fit`].
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] with fewer than 2 pairs.
    /// - [`StatsError::Singular`] when all x values are identical.
    pub fn fit(&self) -> Result<LinearFit, StatsError> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: self.n });
        }
        if self.sxx < 1e-12 {
            return Err(StatsError::Singular);
        }
        let slope = self.sxy / self.sxx;
        let intercept = self.mean_y - slope * self.mean_x;
        let r_squared = if self.syy < 1e-12 {
            1.0
        } else {
            // SS_res = Syy − Sxy²/Sxx, the closed form of the batch loop.
            let ss_res = (self.syy - self.sxy * self.sxy / self.sxx).max(0.0);
            (1.0 - ss_res / self.syy).max(0.0)
        };
        Ok(LinearFit { slope, intercept, r_squared, n: self.n })
    }

    /// The slope of the current fit, when defined.
    pub fn slope(&self) -> Option<f64> {
        self.fit().ok().map(|f| f.slope)
    }
}

impl Persist for StreamingLinReg {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.n);
        w.put_f64(self.mean_x);
        w.put_f64(self.mean_y);
        w.put_f64(self.sxx);
        w.put_f64(self.sxy);
        w.put_f64(self.syy);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(StreamingLinReg {
            n: r.take_usize()?,
            mean_x: r.take_f64()?,
            mean_y: r.take_f64()?,
            sxx: r.take_f64()?,
            sxy: r.take_f64()?,
            syy: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 37) as f64 * 13.7).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.028 * x + 1.37 + ((i * 31) % 17) as f64 * 0.05)
            .collect();
        (xs, ys)
    }

    #[test]
    fn matches_batch_fit() {
        let (xs, ys) = series(500);
        let mut reg = StreamingLinReg::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            reg.push(x, y);
        }
        let s = reg.fit().unwrap();
        let b = LinearFit::fit(&xs, &ys).unwrap();
        assert!((s.slope - b.slope).abs() < 1e-12, "{} vs {}", s.slope, b.slope);
        assert!((s.intercept - b.intercept).abs() < 1e-10);
        assert!((s.r_squared - b.r_squared).abs() < 1e-10);
        assert_eq!(s.n, b.n);
    }

    #[test]
    fn sliding_window_matches_batch_over_window() {
        let (xs, ys) = series(600);
        let window = 128;
        let mut reg = StreamingLinReg::new();
        for i in 0..xs.len() {
            reg.push(xs[i], ys[i]);
            if i >= window {
                reg.remove(xs[i - window], ys[i - window]);
            }
        }
        let start = xs.len() - window;
        let s = reg.fit().unwrap();
        let b = LinearFit::fit(&xs[start..], &ys[start..]).unwrap();
        assert_eq!(reg.len(), window);
        assert!((s.slope - b.slope).abs() < 1e-9, "{} vs {}", s.slope, b.slope);
        assert!((s.intercept - b.intercept).abs() < 1e-7);
    }

    #[test]
    fn remove_everything_resets() {
        let mut reg = StreamingLinReg::new();
        reg.push(1.0, 2.0);
        reg.push(3.0, 4.0);
        reg.remove(1.0, 2.0);
        reg.remove(3.0, 4.0);
        assert!(reg.is_empty());
        assert_eq!(reg, StreamingLinReg::new());
    }

    #[test]
    fn merge_matches_sequential() {
        let (xs, ys) = series(300);
        let mut left = StreamingLinReg::new();
        let mut right = StreamingLinReg::new();
        for i in 0..150 {
            left.push(xs[i], ys[i]);
        }
        for i in 150..300 {
            right.push(xs[i], ys[i]);
        }
        left.merge(&right);
        let merged = left.fit().unwrap();
        let batch = LinearFit::fit(&xs, &ys).unwrap();
        assert!((merged.slope - batch.slope).abs() < 1e-10);
        assert!((merged.intercept - batch.intercept).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut reg = StreamingLinReg::new();
        reg.push(1.0, 1.0);
        reg.push(2.0, 3.0);
        let snapshot = reg;
        reg.merge(&StreamingLinReg::new());
        assert_eq!(reg, snapshot);
        let mut empty = StreamingLinReg::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn insufficient_and_singular() {
        let mut reg = StreamingLinReg::new();
        assert!(matches!(reg.fit(), Err(StatsError::InsufficientData { .. })));
        reg.push(2.0, 1.0);
        assert!(matches!(reg.fit(), Err(StatsError::InsufficientData { .. })));
        reg.push(2.0, 5.0);
        assert_eq!(reg.fit().unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn ignores_non_finite() {
        let mut reg = StreamingLinReg::new();
        reg.push(f64::NAN, 1.0);
        reg.push(1.0, f64::INFINITY);
        assert!(reg.is_empty());
        reg.push(0.0, 1.0);
        reg.push(1.0, 3.0);
        reg.remove(f64::NAN, 0.0);
        let fit = reg.fit().unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "remove from empty")]
    fn remove_from_empty_panics() {
        StreamingLinReg::new().remove(1.0, 1.0);
    }

    #[test]
    fn constant_y_r2_is_one() {
        let mut reg = StreamingLinReg::new();
        for i in 0..10 {
            reg.push(i as f64, 5.0);
        }
        let fit = reg.fit().unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn far_from_origin_stays_accurate() {
        // Large common offset: naive raw-moment accumulation would lose
        // most significant digits here; centered moments must not.
        let xs: Vec<f64> = (0..200).map(|i| 1.0e9 + i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * (x - 1.0e9) + 7.0).collect();
        let mut reg = StreamingLinReg::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            reg.push(x, y);
        }
        let fit = reg.fit().unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-6, "slope {}", fit.slope);
    }
}
