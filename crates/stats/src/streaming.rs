//! Incremental (streaming) simple linear regression.
//!
//! The batch planner refits [`crate::linreg::LinearFit`] from scratch over a
//! full observation range — O(n) per refit. A live planner revising its fit
//! every 120-second window cannot afford that: [`StreamingLinReg`] maintains
//! the same fit with O(1) `push`/`remove` updates. Like
//! [`crate::quadfit::StreamingQuadFit`], it accumulates raw power sums in a
//! basis shifted by the first observation (`u = x − shift`), which keeps the
//! normal equations well-conditioned far from the origin *and* makes
//! `push`/`remove` pure add/subtract — no divisions. That matters because
//! these two calls are the planner's per-window hot path: every pool
//! updates four resource lanes plus the drift sub-window every window, and
//! the Welford mean updates this replaced cost two serially dependent
//! divisions per call. The divisions now happen once, at [`fit`] time.
//!
//! `remove` exists so a caller holding a ring buffer can maintain a sliding
//! window: push the incoming pair, remove the evicted one, and the fit now
//! covers exactly the window contents.
//!
//! [`fit`]: StreamingLinReg::fit
//!
//! # Example
//!
//! ```
//! use headroom_stats::streaming::StreamingLinReg;
//! use headroom_stats::LinearFit;
//!
//! # fn main() -> Result<(), headroom_stats::StatsError> {
//! let xs = [100.0, 200.0, 300.0, 400.0];
//! let ys = [4.2, 7.0, 9.8, 12.6];
//! let mut reg = StreamingLinReg::new();
//! for (&x, &y) in xs.iter().zip(&ys) {
//!     reg.push(x, y);
//! }
//! let streaming = reg.fit()?;
//! let batch = LinearFit::fit(&xs, &ys)?;
//! assert!((streaming.slope - batch.slope).abs() < 1e-12);
//! assert!((streaming.intercept - batch.intercept).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::linreg::LinearFit;
use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::StatsError;

/// Running simple linear regression with O(1) insert and remove.
///
/// Maintains `Σu`, `Σu²`, `Σy`, `Σy²`, `Σuy` with `u = x − shift` (the
/// shift is pinned to the first observation), so [`fit`] is O(1) and
/// numerically agrees with the two-pass batch [`LinearFit::fit`], while
/// `push`/`remove` are division-free add/subtract updates.
///
/// Non-finite observations are ignored on `push` (mirroring the telemetry
/// pipeline's treatment of corrupt windows); `remove` must only be called
/// with pairs previously pushed — removing arbitrary values silently
/// corrupts the sums.
///
/// [`fit`]: StreamingLinReg::fit
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamingLinReg {
    n: usize,
    shift: f64,
    shift_set: bool,
    su: f64,
    su2: f64,
    sy: f64,
    sy2: f64,
    suy: f64,
}

impl StreamingLinReg {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingLinReg::default()
    }

    /// Number of pairs currently accumulated.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no pairs are accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean of the accumulated x values (0 when empty).
    pub fn mean_x(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.shift + self.su / self.n as f64
        }
    }

    /// Mean of the accumulated y values (0 when empty).
    pub fn mean_y(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sy / self.n as f64
        }
    }

    /// Population variance of the accumulated x values (0 when empty).
    pub fn variance_x(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            let nf = self.n as f64;
            ((self.su2 - self.su * self.su / nf) / nf).max(0.0)
        }
    }

    /// Population variance of the accumulated y values (0 when empty).
    pub fn variance_y(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            let nf = self.n as f64;
            ((self.sy2 - self.sy * self.sy / nf) / nf).max(0.0)
        }
    }

    /// Adds one observation. Non-finite pairs are ignored.
    pub fn push(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        if !self.shift_set {
            self.shift = x;
            self.shift_set = true;
        }
        let u = x - self.shift;
        self.n += 1;
        self.su += u;
        self.su2 += u * u;
        self.sy += y;
        self.sy2 += y * y;
        self.suy += u * y;
    }

    /// Removes one previously pushed observation (sliding-window eviction).
    ///
    /// Non-finite pairs are ignored, matching their treatment in [`push`].
    ///
    /// # Panics
    ///
    /// Panics when the accumulator is empty.
    ///
    /// [`push`]: StreamingLinReg::push
    pub fn remove(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        assert!(self.n > 0, "remove from empty StreamingLinReg");
        let u = x - self.shift;
        self.n -= 1;
        self.su -= u;
        self.su2 -= u * u;
        self.sy -= y;
        self.sy2 -= y * y;
        self.suy -= u * y;
        if self.n == 0 {
            // Fresh start: the next push re-pins the shift.
            *self = StreamingLinReg::new();
        }
    }

    /// Folds another accumulator into this one (shard-and-combine).
    ///
    /// The two accumulators may have pinned different shifts: the other's
    /// power sums are re-based onto this shift with the binomial expansion
    /// of `Σ(u′ + δ)ᵏ`, so the merged accumulator represents exactly the
    /// concatenated observation streams.
    pub fn merge(&mut self, other: &StreamingLinReg) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        // other's u′ = x − other.shift; in this basis u = u′ + δ.
        let d = other.shift - self.shift;
        let nf = other.n as f64;
        self.n += other.n;
        self.su += other.su + nf * d;
        self.su2 += other.su2 + 2.0 * d * other.su + nf * d * d;
        self.sy += other.sy;
        self.sy2 += other.sy2;
        self.suy += other.suy + d * other.sy;
    }

    /// Discards all accumulated observations.
    pub fn clear(&mut self) {
        *self = StreamingLinReg::new();
    }

    /// The current OLS fit, identical in contract to [`LinearFit::fit`].
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] with fewer than 2 pairs.
    /// - [`StatsError::Singular`] when all x values are identical.
    pub fn fit(&self) -> Result<LinearFit, StatsError> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: self.n });
        }
        let inv_n = 1.0 / self.n as f64;
        // Centered moments recovered from the shifted power sums; the
        // shift keeps the cancellation benign far from the origin.
        let sxx = self.su2 - self.su * self.su * inv_n;
        if sxx < 1e-12 {
            return Err(StatsError::Singular);
        }
        let sxy = self.suy - self.su * self.sy * inv_n;
        let slope = sxy / sxx;
        let intercept = self.sy * inv_n - slope * (self.shift + self.su * inv_n);
        let syy = self.sy2 - self.sy * self.sy * inv_n;
        let r_squared = if syy < 1e-12 {
            1.0
        } else {
            // SS_res = Syy − Sxy²/Sxx = Syy − slope·Sxy, the closed form
            // of the batch loop.
            let ss_res = (syy - slope * sxy).max(0.0);
            (1.0 - ss_res / syy).max(0.0)
        };
        Ok(LinearFit { slope, intercept, r_squared, n: self.n })
    }

    /// The slope of the current fit, when defined.
    pub fn slope(&self) -> Option<f64> {
        self.fit().ok().map(|f| f.slope)
    }
}

impl Persist for StreamingLinReg {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.n);
        w.put_f64(self.shift);
        w.put_bool(self.shift_set);
        w.put_f64(self.su);
        w.put_f64(self.su2);
        w.put_f64(self.sy);
        w.put_f64(self.sy2);
        w.put_f64(self.suy);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(StreamingLinReg {
            n: r.take_usize()?,
            shift: r.take_f64()?,
            shift_set: r.take_bool()?,
            su: r.take_f64()?,
            su2: r.take_f64()?,
            sy: r.take_f64()?,
            sy2: r.take_f64()?,
            suy: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 37) as f64 * 13.7).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.028 * x + 1.37 + ((i * 31) % 17) as f64 * 0.05)
            .collect();
        (xs, ys)
    }

    #[test]
    fn matches_batch_fit() {
        let (xs, ys) = series(500);
        let mut reg = StreamingLinReg::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            reg.push(x, y);
        }
        let s = reg.fit().unwrap();
        let b = LinearFit::fit(&xs, &ys).unwrap();
        assert!((s.slope - b.slope).abs() < 1e-12, "{} vs {}", s.slope, b.slope);
        assert!((s.intercept - b.intercept).abs() < 1e-10);
        assert!((s.r_squared - b.r_squared).abs() < 1e-10);
        assert_eq!(s.n, b.n);
    }

    #[test]
    fn sliding_window_matches_batch_over_window() {
        let (xs, ys) = series(600);
        let window = 128;
        let mut reg = StreamingLinReg::new();
        for i in 0..xs.len() {
            reg.push(xs[i], ys[i]);
            if i >= window {
                reg.remove(xs[i - window], ys[i - window]);
            }
        }
        let start = xs.len() - window;
        let s = reg.fit().unwrap();
        let b = LinearFit::fit(&xs[start..], &ys[start..]).unwrap();
        assert_eq!(reg.len(), window);
        assert!((s.slope - b.slope).abs() < 1e-9, "{} vs {}", s.slope, b.slope);
        assert!((s.intercept - b.intercept).abs() < 1e-7);
    }

    #[test]
    fn remove_everything_resets() {
        let mut reg = StreamingLinReg::new();
        reg.push(1.0, 2.0);
        reg.push(3.0, 4.0);
        reg.remove(1.0, 2.0);
        reg.remove(3.0, 4.0);
        assert!(reg.is_empty());
        assert_eq!(reg, StreamingLinReg::new());
    }

    #[test]
    fn merge_matches_sequential() {
        let (xs, ys) = series(300);
        let mut left = StreamingLinReg::new();
        let mut right = StreamingLinReg::new();
        for i in 0..150 {
            left.push(xs[i], ys[i]);
        }
        for i in 150..300 {
            right.push(xs[i], ys[i]);
        }
        left.merge(&right);
        let merged = left.fit().unwrap();
        let batch = LinearFit::fit(&xs, &ys).unwrap();
        assert!((merged.slope - batch.slope).abs() < 1e-10);
        assert!((merged.intercept - batch.intercept).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut reg = StreamingLinReg::new();
        reg.push(1.0, 1.0);
        reg.push(2.0, 3.0);
        let snapshot = reg;
        reg.merge(&StreamingLinReg::new());
        assert_eq!(reg, snapshot);
        let mut empty = StreamingLinReg::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn insufficient_and_singular() {
        let mut reg = StreamingLinReg::new();
        assert!(matches!(reg.fit(), Err(StatsError::InsufficientData { .. })));
        reg.push(2.0, 1.0);
        assert!(matches!(reg.fit(), Err(StatsError::InsufficientData { .. })));
        reg.push(2.0, 5.0);
        assert_eq!(reg.fit().unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn ignores_non_finite() {
        let mut reg = StreamingLinReg::new();
        reg.push(f64::NAN, 1.0);
        reg.push(1.0, f64::INFINITY);
        assert!(reg.is_empty());
        reg.push(0.0, 1.0);
        reg.push(1.0, 3.0);
        reg.remove(f64::NAN, 0.0);
        let fit = reg.fit().unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "remove from empty")]
    fn remove_from_empty_panics() {
        StreamingLinReg::new().remove(1.0, 1.0);
    }

    #[test]
    fn constant_y_r2_is_one() {
        let mut reg = StreamingLinReg::new();
        for i in 0..10 {
            reg.push(i as f64, 5.0);
        }
        let fit = reg.fit().unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn far_from_origin_stays_accurate() {
        // Large common offset: power sums about the origin would lose
        // most significant digits here; the first-observation shift keeps
        // the accumulated sums small and conditioned.
        let xs: Vec<f64> = (0..200).map(|i| 1.0e9 + i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * (x - 1.0e9) + 7.0).collect();
        let mut reg = StreamingLinReg::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            reg.push(x, y);
        }
        let fit = reg.fit().unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-6, "slope {}", fit.slope);
    }
}
