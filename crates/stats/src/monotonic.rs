//! Sliding-window maximum in O(1) amortized per window.
//!
//! The streaming planner's sizing formula needs the maximum serving
//! allocation over the observation window; rescanning the window is O(W)
//! per replan. [`MonotonicMaxDeque`] is the classic monotonic-queue
//! companion to a FIFO window: push the incoming value, report the evicted
//! one, and the front of the deque is always the window maximum.
//!
//! # Example
//!
//! ```
//! use headroom_stats::monotonic::MonotonicMaxDeque;
//!
//! let mut m = MonotonicMaxDeque::new();
//! for v in [3, 1, 4, 1, 5] {
//!     m.push(v);
//! }
//! assert_eq!(m.max(), Some(5));
//! // FIFO eviction of the original stream keeps the max current.
//! for v in [3, 1, 4, 1, 5] {
//!     m.evict(v);
//! }
//! assert_eq!(m.max(), None);
//! ```

use std::collections::VecDeque;

use crate::persist::{Persist, PersistError, Reader, Writer};

/// Monotonic (non-increasing) deque reporting the maximum of a FIFO window.
///
/// The caller owns the window and drives this structure alongside it:
/// [`push`] every value entering the window, [`evict`] every value leaving
/// it, *in the same FIFO order*. Values dominated by a later arrival are
/// dropped eagerly, so the deque holds at most the "descending skyline" of
/// the window and [`max`] is O(1).
///
/// [`push`]: MonotonicMaxDeque::push
/// [`evict`]: MonotonicMaxDeque::evict
/// [`max`]: MonotonicMaxDeque::max
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonotonicMaxDeque<T> {
    deque: VecDeque<T>,
}

impl<T> Default for MonotonicMaxDeque<T> {
    fn default() -> Self {
        MonotonicMaxDeque { deque: VecDeque::new() }
    }
}

impl<T: PartialOrd + Copy> MonotonicMaxDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        MonotonicMaxDeque::default()
    }

    /// Values currently retained (≤ the window length, often far fewer).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Feeds the value entering the window. Amortized O(1).
    ///
    /// Strictly smaller tail entries are discarded; equal values are kept so
    /// duplicate maxima survive the eviction of one of them.
    pub fn push(&mut self, v: T) {
        while matches!(self.deque.back(), Some(b) if *b < v) {
            self.deque.pop_back();
        }
        self.deque.push_back(v);
    }

    /// Feeds the value leaving the window (the one [`push`]ed window-length
    /// calls ago). O(1).
    ///
    /// [`push`]: MonotonicMaxDeque::push
    pub fn evict(&mut self, v: T) {
        if matches!(self.deque.front(), Some(f) if *f == v) {
            self.deque.pop_front();
        }
    }

    /// The maximum of the current window. O(1).
    pub fn max(&self) -> Option<T> {
        self.deque.front().copied()
    }

    /// Drops all retained values.
    pub fn clear(&mut self) {
        self.deque.clear();
    }
}

impl<T: Persist> Persist for MonotonicMaxDeque<T> {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.deque.len());
        for v in &self.deque {
            v.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = r.take_usize()?;
        if len > r.remaining() {
            return Err(PersistError::Invalid("deque length exceeds remaining stream"));
        }
        let mut deque = VecDeque::with_capacity(len);
        for _ in 0..len {
            deque.push_back(T::restore(r)?);
        }
        Ok(MonotonicMaxDeque { deque })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn tracks_scan_max_over_sliding_window() {
        let stream: Vec<u32> = (0..500).map(|i| (i * 37 + 11) % 97).collect();
        let window = 23;
        let mut m = MonotonicMaxDeque::new();
        let mut w: VecDeque<u32> = VecDeque::new();
        for &v in &stream {
            m.push(v);
            w.push_back(v);
            if w.len() > window {
                let evicted = w.pop_front().unwrap();
                m.evict(evicted);
            }
            assert_eq!(m.max(), w.iter().copied().max());
        }
    }

    #[test]
    fn duplicate_maxima_survive_single_eviction() {
        let mut m = MonotonicMaxDeque::new();
        m.push(9);
        m.push(9);
        m.push(3);
        m.evict(9);
        assert_eq!(m.max(), Some(9), "the second 9 is still in the window");
        m.evict(9);
        assert_eq!(m.max(), Some(3));
    }

    #[test]
    fn retains_only_the_skyline() {
        let mut m = MonotonicMaxDeque::new();
        for v in [1, 2, 3, 4, 5] {
            m.push(v);
        }
        assert_eq!(m.len(), 1, "ascending stream keeps only its last value");
        assert_eq!(m.max(), Some(5));
        // Evicting dominated values is a no-op: they were already dropped.
        m.evict(1);
        assert_eq!(m.max(), Some(5));
    }

    #[test]
    fn clear_empties() {
        let mut m = MonotonicMaxDeque::new();
        m.push(1.5f64);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.max(), None);
    }
}
