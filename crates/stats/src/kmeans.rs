//! K-means clustering with k-means++ seeding.
//!
//! Fig. 3 of the paper shows a pool whose (5th, 95th)-percentile CPU scatter
//! forms *two* distinct clusters — newer, faster hardware running cooler than
//! the older generation. The grouping step uses clustering to split such
//! pools into separately-planned server groups.

use crate::StatsError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// Seed for k-means++ initialisation.
    pub seed: u64,
}

impl KMeansConfig {
    /// Creates a config for `k` clusters with standard defaults.
    pub fn new(k: usize) -> Self {
        KMeansConfig { k, max_iterations: 100, tolerance: 1e-9, seed: 11 }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids, `k` rows of the input dimensionality.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index for each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of points in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ initialisation.
///
/// # Errors
///
/// - [`StatsError::EmptyInput`] for no points.
/// - [`StatsError::InvalidParameter`] when `k == 0` or `k > n`.
/// - [`StatsError::DimensionMismatch`] for ragged point dimensions.
/// - [`StatsError::NonFinite`] for NaN/inf coordinates.
///
/// # Example
///
/// ```
/// use headroom_stats::kmeans::{kmeans, KMeansConfig};
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// // Two obvious blobs: old hot servers vs new cool servers.
/// let points = vec![
///     vec![10.0, 22.0], vec![11.0, 23.0], vec![9.5, 21.0],
///     vec![3.0, 8.0], vec![2.5, 7.5], vec![3.5, 9.0],
/// ];
/// let result = kmeans(&points, &KMeansConfig::new(2))?;
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[3]);
/// # Ok(())
/// # }
/// ```
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeansResult, StatsError> {
    if points.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if config.k == 0 || config.k > points.len() {
        return Err(StatsError::InvalidParameter("k must satisfy 1 <= k <= n"));
    }
    let dim = points[0].len();
    for p in points {
        if p.len() != dim {
            return Err(StatsError::DimensionMismatch { left: p.len(), right: dim });
        }
        if p.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = kmeanspp_init(points, config.k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;

    for iter in 0..config.max_iterations.max(1) {
        iterations = iter + 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = squared_distance(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (d, &v) in p.iter().enumerate() {
                sums[assignments[i]][d] += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..config.k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its centroid.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        squared_distance(a, &centroids[assignments[0]])
                            .partial_cmp(&squared_distance(b, &centroids[assignments[0]]))
                            .expect("finite")
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c] = points[far].clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += squared_distance(&centroids[c], &new).sqrt();
            centroids[c] = new;
        }
        if movement < config.tolerance {
            break;
        }
    }

    let inertia =
        points.iter().zip(&assignments).map(|(p, &a)| squared_distance(p, &centroids[a])).sum();
    Ok(KMeansResult { centroids, assignments, inertia, iterations })
}

fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| centroids.iter().map(|c| squared_distance(p, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points identical to some centroid: duplicate one.
            centroids.push(points[0].clone());
            continue;
        }
        let mut target = rng.random_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in dists.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
///
/// Higher is better; ≳0.5 indicates well-separated clusters. The grouping
/// step uses this to decide whether a pool genuinely contains multiple
/// server populations (accept split) or not (keep whole).
///
/// # Errors
///
/// - [`StatsError::DimensionMismatch`] when lengths differ.
/// - [`StatsError::InsufficientData`] when fewer than 2 points or all points
///   share one cluster.
pub fn silhouette_score(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64, StatsError> {
    if points.len() != assignments.len() {
        return Err(StatsError::DimensionMismatch { left: points.len(), right: assignments.len() });
    }
    if points.len() < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: points.len() });
    }
    let k = assignments.iter().max().map(|m| m + 1).unwrap_or(0);
    let cluster_count = {
        let mut seen = vec![false; k];
        for &a in assignments {
            seen[a] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    if cluster_count < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: cluster_count });
    }

    let n = points.len();
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let own = assignments[i];
        let mut intra_sum = 0.0;
        let mut intra_n = 0usize;
        let mut inter: Vec<(f64, usize)> = vec![(0.0, 0); k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = squared_distance(&points[i], &points[j]).sqrt();
            if assignments[j] == own {
                intra_sum += d;
                intra_n += 1;
            } else {
                inter[assignments[j]].0 += d;
                inter[assignments[j]].1 += 1;
            }
        }
        if intra_n == 0 {
            continue; // singleton cluster contributes 0 by convention; skip
        }
        let a = intra_sum / intra_n as f64;
        let b = inter
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(s, c)| s / *c as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if a.max(b) > 0.0 { (b - a) / a.max(b) } else { 0.0 };
        total += s;
        counted += 1;
    }
    if counted == 0 {
        return Err(StatsError::InsufficientData { needed: 2, got: 0 });
    }
    Ok(total / counted as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let jitter = (i as f64) * 0.01;
            pts.push(vec![2.0 + jitter, 5.0 - jitter]);
            pts.push(vec![10.0 - jitter, 20.0 + jitter]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, &KMeansConfig::new(2)).unwrap();
        // Even indices are blob 1, odd are blob 2.
        let c0 = r.assignments[0];
        for (i, &a) in r.assignments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, c0);
            } else {
                assert_ne!(a, c0);
            }
        }
        assert_eq!(r.cluster_sizes(), vec![20, 20]);
    }

    #[test]
    fn k_equals_one() {
        let pts = two_blobs();
        let r = kmeans(&pts, &KMeansConfig::new(1)).unwrap();
        assert!(r.assignments.iter().all(|&a| a == 0));
        assert!(r.inertia > 0.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let r = kmeans(&pts, &KMeansConfig::new(3)).unwrap();
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = two_blobs();
        let cfg = KMeansConfig { seed: 5, ..KMeansConfig::new(2) };
        let a = kmeans(&pts, &cfg).unwrap();
        let b = kmeans(&pts, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(kmeans(&[], &KMeansConfig::new(1)), Err(StatsError::EmptyInput)));
        let pts = vec![vec![1.0]];
        assert!(matches!(
            kmeans(&pts, &KMeansConfig::new(0)),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(matches!(
            kmeans(&pts, &KMeansConfig::new(2)),
            Err(StatsError::InvalidParameter(_))
        ));
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(matches!(
            kmeans(&ragged, &KMeansConfig::new(1)),
            Err(StatsError::DimensionMismatch { .. })
        ));
        let nan = vec![vec![f64::NAN]];
        assert!(matches!(kmeans(&nan, &KMeansConfig::new(1)), Err(StatsError::NonFinite)));
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, &KMeansConfig::new(2)).unwrap();
        let s = silhouette_score(&pts, &r.assignments).unwrap();
        assert!(s > 0.8, "well-separated blobs should score high, got {s}");
    }

    #[test]
    fn silhouette_low_for_overcut_blob() {
        // One uniform blob split into 2 clusters scores poorly.
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.01]).collect();
        let r = kmeans(&pts, &KMeansConfig::new(2)).unwrap();
        let s = silhouette_score(&pts, &r.assignments).unwrap();
        assert!(s < 0.7, "overcut blob should score lower, got {s}");
    }

    #[test]
    fn silhouette_requires_two_clusters() {
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            silhouette_score(&pts, &[0, 0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![vec![5.0, 5.0]; 10];
        let r = kmeans(&pts, &KMeansConfig::new(2)).unwrap();
        assert_eq!(r.assignments.len(), 10);
        assert!(r.inertia < 1e-18);
    }
}
