//! Fixed-bin histograms and empirical CDFs.
//!
//! The paper's fleet-wide utilisation study is reported as distributions:
//! Fig. 12 (CDF of per-server 95th-percentile CPU), Fig. 13 (distribution of
//! 120-second CPU samples), and Fig. 14 (distribution of daily server
//! availability). These types regenerate those series.

use crate::StatsError;

/// An equal-width histogram over a fixed `[lo, hi]` range.
///
/// Values below `lo` land in the first bin; values above `hi` in the last.
///
/// # Example
///
/// ```
/// use headroom_stats::histogram::Histogram;
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// let mut h = Histogram::new(0.0, 100.0, 10)?;
/// for v in [5.0, 15.0, 15.5, 97.0] {
///     h.add(v);
/// }
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[1], 2);
/// assert_eq!(h.counts()[9], 1);
/// assert_eq!(h.total(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] when `bins == 0`, `lo >= hi`, or the
    /// bounds are non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("histogram needs at least one bin"));
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::NonFinite);
        }
        if lo >= hi {
            return Err(StatsError::InvalidParameter("histogram range must have lo < hi"));
        }
        Ok(Histogram { lo, hi, counts: vec![0; bins], total: 0 })
    }

    /// Adds one observation (non-finite values are ignored).
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every value in the slice.
    pub fn add_all(&mut self, values: &[f64]) {
        for &v in values {
            self.add(v);
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Per-bin fraction of all observations (sums to 1 when non-empty).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Fraction of observations strictly greater than `value`.
    ///
    /// Bin granularity applies: the result is computed from whole bins whose
    /// lower edge is ≥ `value`.
    pub fn fraction_above(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut count = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let lower_edge = self.lo + width * i as f64;
            if lower_edge >= value {
                count += c;
            }
        }
        count as f64 / self.total as f64
    }

    /// `(bin_center, fraction)` series for plotting.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.fractions()
            .into_iter()
            .enumerate()
            .map(|(i, frac)| (self.bin_center(i), frac))
            .collect()
    }
}

/// Empirical cumulative distribution function over a sample.
///
/// # Example
///
/// ```
/// use headroom_stats::histogram::Ecdf;
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// let cdf = Ecdf::from_values(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
/// assert_eq!(cdf.fraction_at_or_below(4.0), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from unsorted samples.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`] on bad input.
    pub fn from_values(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("checked finite"));
        Ok(Ecdf { sorted })
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value at cumulative fraction `q ∈ [0,1]`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter("quantile must be within 0..=1"));
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        Ok(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction requires at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `(x, cumulative fraction)` series evaluated at `points` evenly spaced
    /// x positions across the sample range — the Fig. 12 plotting format.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if points <= 1 || hi <= lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_boundaries() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0); // first bin
        h.add(9.9999); // last bin
        h.add(10.0); // clamped into last bin
        h.add(-5.0); // clamped into first bin
        h.add(15.0); // clamped into last bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 3);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 100.0, 7).unwrap();
        h.add_all(&(0..1000).map(|i| (i % 100) as f64).collect::<Vec<_>>());
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_ignores_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn fraction_above_threshold() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        // 90 values at 10, 10 values at 50.
        for _ in 0..90 {
            h.add(10.0);
        }
        for _ in 0..10 {
            h.add(50.0);
        }
        assert!((h.fraction_above(40.0) - 0.1).abs() < 1e-12);
        assert!((h.fraction_above(60.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn bin_center_positions() {
        let h = Histogram::new(0.0, 10.0, 10).unwrap();
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_step_behaviour() {
        let cdf = Ecdf::from_values(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.fraction_at_or_below(0.9), 0.0);
        assert!((cdf.fraction_at_or_below(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_at_or_below(3.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_inverse() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let cdf = Ecdf::from_values(&values).unwrap();
        assert_eq!(cdf.quantile(0.5).unwrap(), 50.0);
        assert_eq!(cdf.quantile(1.0).unwrap(), 100.0);
        assert_eq!(cdf.quantile(0.0).unwrap(), 1.0);
        assert!(cdf.quantile(1.5).is_err());
    }

    #[test]
    fn ecdf_series_monotone() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 31) % 97) as f64).collect();
        let cdf = Ecdf::from_values(&values).unwrap();
        let series = cdf.series(50);
        assert_eq!(series.len(), 50);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_rejects_empty() {
        assert_eq!(Ecdf::from_values(&[]).unwrap_err(), StatsError::EmptyInput);
    }
}
