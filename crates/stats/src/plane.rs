//! Engine-owned state planes: many sliding windows, one allocation.
//!
//! The streaming planner keeps four small side buffers *per pool* —
//! aggregate ring, sorted totals window, drift sub-window, allocation
//! max-deque. Owned individually (a `VecDeque`/`Vec` per pool) each is a
//! separate heap object, so a fleet sweep pays a dependent cache/TLB miss
//! per pool per buffer per window: at 16k pools the planner spent ~2× the
//! 512-pool per-pool cost purely on pointer-chasing its own state.
//!
//! A *plane* is the struct-of-arrays counterpart: one flat allocation
//! holding every pool's buffer, indexed by `lane` (the pool's position in
//! the engine's sorted shard list). Two layouts are used:
//!
//! - **slot-major** ([`RingPlane`] + [`RingCursors`]): element `(slot,
//!   lane)` lives at `slot * lanes + lane`, so in the lockstep steady state
//!   (every pool pushes into the same ring slot each window) consecutive
//!   lanes hit consecutive addresses — the sweep *streams* the plane;
//! - **lane-major** ([`SortedPlane`], [`DequePlane`]): each lane owns the
//!   contiguous segment `[lane * cap, (lane + 1) * cap)`, the right shape
//!   for structures whose per-window work is a `memmove` within one lane
//!   (sorted insert/evict) or a head/tail walk (monotonic deque).
//!
//! The per-lane operations are exposed both as methods and as free
//! `*_seg_*` functions over raw `(segment, cursor)` pairs, so a caller that
//! partitions lanes across threads can drive disjoint lanes through the
//! exact same code path the single-threaded methods use — semantics (and
//! results) are bit-identical by construction to the per-pool structures
//! they replace ([`crate::sorted_window::SortedWindow`],
//! [`crate::monotonic::MonotonicMaxDeque`], a FIFO ring), which the unit
//! tests pin differentially.
//!
//! Lane count changes only when pools arrive: [`RingPlane::remap`] and
//! friends rebuild the planes under an old-lane → new-lane mapping (a
//! growth-window allocation; steady-state windows never reallocate).

use crate::percentile::percentile_of_sorted;

/// Shared ring-buffer geometry for a family of [`RingPlane`]s: per-lane
/// `start`/`len` cursors over a common capacity.
///
/// Several planes that advance in lockstep (e.g. the seven aggregate
/// counter planes) share one `RingCursors`, so the cursor arithmetic is
/// paid once per push, not once per plane.
///
/// Push protocol (see [`push_slot`]): when the lane is full, the evicted
/// entry occupies exactly the slot the new entry will overwrite — the
/// caller must *read* the evicted values before *writing* the new ones,
/// then [`advance`].
///
/// [`push_slot`]: RingCursors::push_slot
/// [`advance`]: RingCursors::advance
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingCursors {
    cap: u32,
    start: Vec<u32>,
    len: Vec<u32>,
}

impl RingCursors {
    /// Cursors for `lanes` empty rings of `cap` slots each.
    pub fn new(cap: usize, lanes: usize) -> Self {
        let cap = u32::try_from(cap.max(1)).expect("ring capacity fits u32");
        RingCursors { cap, start: vec![0; lanes], len: vec![0; lanes] }
    }

    /// Slots per lane.
    pub fn cap(&self) -> usize {
        self.cap as usize
    }

    /// Lanes tracked.
    pub fn lanes(&self) -> usize {
        self.len.len()
    }

    /// Entries currently held in `lane`.
    pub fn len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    /// True when `lane` holds nothing.
    pub fn is_empty(&self, lane: usize) -> bool {
        self.len[lane] == 0
    }

    /// The physical slot the next push into `lane` writes, and whether that
    /// write evicts (the lane is full and the slot still holds the oldest
    /// entry). Read evicted values from the slot *before* overwriting, then
    /// call [`advance`].
    ///
    /// [`advance`]: RingCursors::advance
    pub fn push_slot(&self, lane: usize) -> (usize, bool) {
        let (start, len) = (self.start[lane], self.len[lane]);
        if len == self.cap {
            (start as usize, true)
        } else {
            (((start + len) % self.cap) as usize, false)
        }
    }

    /// Commits the push [`push_slot`] prepared.
    ///
    /// [`push_slot`]: RingCursors::push_slot
    pub fn advance(&mut self, lane: usize) {
        if self.len[lane] == self.cap {
            self.start[lane] = (self.start[lane] + 1) % self.cap;
        } else {
            self.len[lane] += 1;
        }
    }

    /// The physical slot of the `i`-th oldest entry in `lane`.
    pub fn slot_of(&self, lane: usize, i: usize) -> usize {
        debug_assert!(i < self.len(lane));
        (self.start[lane] as usize + i) % self.cap as usize
    }

    /// Empties `lane`.
    pub fn clear_lane(&mut self, lane: usize) {
        self.start[lane] = 0;
        self.len[lane] = 0;
    }

    /// Marks `lane` as holding `len` entries starting at physical slot 0 —
    /// the restore hook: the caller has just written `len` entries into
    /// slots `0..len` of every plane sharing these cursors. Returns false
    /// (and leaves the lane empty) when `len` exceeds the capacity.
    pub fn restore_lane(&mut self, lane: usize, len: usize) -> bool {
        self.clear_lane(lane);
        if len > self.cap as usize {
            return false;
        }
        self.len[lane] = len as u32;
        true
    }

    /// Rebuilds the cursors under an old-lane → new-lane `mapping`; lanes
    /// of the new geometry that nothing maps to start empty.
    pub fn remap(&self, mapping: &[usize], new_lanes: usize) -> RingCursors {
        let mut out = RingCursors::new(self.cap as usize, new_lanes);
        for (old, &new) in mapping.iter().enumerate() {
            out.start[new] = self.start[old];
            out.len[new] = self.len[old];
        }
        out
    }

    /// Per-lane start slots (raw view hook).
    pub fn starts_mut(&mut self) -> &mut [u32] {
        &mut self.start
    }

    /// Per-lane lengths (raw view hook).
    pub fn lens_mut(&mut self) -> &mut [u32] {
        &mut self.len
    }
}

/// One slot-major `f64` plane: element `(slot, lane)` at `slot * lanes +
/// lane`. Cursor state lives in a (possibly shared) [`RingCursors`].
#[derive(Debug, Clone, PartialEq)]
pub struct RingPlane {
    /// Slots per lane — held explicitly (not derived from `data.len() /
    /// lanes`), so a plane created with zero lanes still remaps to its
    /// intended geometry when the first pools arrive.
    cap: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl RingPlane {
    /// A zeroed plane of `cap` slots × `lanes` lanes.
    pub fn new(cap: usize, lanes: usize) -> Self {
        let cap = cap.max(1);
        RingPlane { cap, lanes, data: vec![0.0; cap * lanes] }
    }

    /// Lanes per slot.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Reads element `(slot, lane)`.
    pub fn get(&self, slot: usize, lane: usize) -> f64 {
        self.data[slot * self.lanes + lane]
    }

    /// Writes element `(slot, lane)`.
    pub fn set(&mut self, slot: usize, lane: usize, v: f64) {
        self.data[slot * self.lanes + lane] = v;
    }

    /// Rebuilds the plane under an old-lane → new-lane `mapping` (all slots
    /// copied; stale slots beyond a lane's length are never read).
    pub fn remap(&self, mapping: &[usize], new_lanes: usize) -> RingPlane {
        let cap = self.cap;
        let mut out = RingPlane::new(cap, new_lanes);
        for slot in 0..cap {
            let (old_row, new_row) = (slot * self.lanes, slot * new_lanes);
            for (old, &new) in mapping.iter().enumerate() {
                out.data[new_row + new] = self.data[old_row + old];
            }
        }
        out
    }

    /// The backing storage (raw view hook).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Prepares and commits one ring push for every flagged lane of a
/// contiguous cursor range — the batched counterpart of
/// [`RingCursors::push_slot`] + [`RingCursors::advance`], for
/// plane-at-a-time pass kernels that update a whole lane range per window
/// instead of interleaving cursor math with other structures pool by pool.
///
/// All slices cover the same lane range (`starts[i]`/`lens[i]` are lane
/// `i`'s cursors). For each lane with `present[i]`, writes the physical
/// slot the push lands in to `slots[i]`, whether that slot still holds the
/// evicted oldest entry to `evicting[i]`, and advances the cursors. The
/// caller must read evicted cell values from `slots[i]` *before*
/// overwriting them — same protocol as `push_slot`, which this matches
/// bit-for-bit per lane. Lanes without `present[i]` are untouched (their
/// `slots`/`evicting` entries are left stale; callers gate on `present`).
pub fn ring_push_slots(
    cap: u32,
    starts: &mut [u32],
    lens: &mut [u32],
    present: &[bool],
    slots: &mut [u32],
    evicting: &mut [bool],
) {
    debug_assert!(
        starts.len() == present.len()
            && lens.len() == present.len()
            && slots.len() == present.len()
            && evicting.len() == present.len()
    );
    for i in 0..present.len() {
        if !present[i] {
            continue;
        }
        let (start, len) = (starts[i], lens[i]);
        if len == cap {
            slots[i] = start;
            evicting[i] = true;
            starts[i] = (start + 1) % cap;
        } else {
            slots[i] = (start + len) % cap;
            evicting[i] = false;
            lens[i] = len + 1;
        }
    }
}

/// Inserts `v` into the sorted prefix `seg[..*len]` (ascending, duplicates
/// kept). Non-finite values are ignored — exactly
/// [`crate::sorted_window::SortedWindow::insert`].
pub fn sorted_seg_insert(seg: &mut [f64], len: &mut u32, v: f64) {
    if !v.is_finite() {
        return;
    }
    let n = *len as usize;
    debug_assert!(n < seg.len(), "sorted lane overflow: window outgrew its plane");
    if n >= seg.len() {
        return;
    }
    let at = seg[..n].partition_point(|&x| x < v);
    seg.copy_within(at..n, at + 1);
    seg[at] = v;
    *len = (n + 1) as u32;
}

/// Removes one occurrence of `v` from the sorted prefix `seg[..*len]`.
/// Returns whether a value was removed — exactly
/// [`crate::sorted_window::SortedWindow::remove`].
pub fn sorted_seg_remove(seg: &mut [f64], len: &mut u32, v: f64) -> bool {
    if !v.is_finite() {
        return false;
    }
    let n = *len as usize;
    let at = seg[..n].partition_point(|&x| x < v);
    if at < n && seg[at] == v {
        seg.copy_within(at + 1..n, at);
        *len = (n - 1) as u32;
        true
    } else {
        false
    }
}

/// Replaces one occurrence of `old` with `new` in the sorted prefix:
/// exactly [`sorted_seg_remove`]`(old)` followed by
/// [`sorted_seg_insert`]`(new)`, fused so the elements between the two
/// positions move once instead of the whole tail moving twice — the
/// steady-state shape of a full sliding window, where every arrival also
/// evicts. Returns whether `old` was removed.
pub fn sorted_seg_replace(seg: &mut [f64], len: &mut u32, old: f64, new: f64) -> bool {
    if !new.is_finite() {
        return sorted_seg_remove(seg, len, old);
    }
    if !old.is_finite() {
        sorted_seg_insert(seg, len, new);
        return false;
    }
    let n = *len as usize;
    let at_r = seg[..n].partition_point(|&x| x < old);
    if !(at_r < n && seg[at_r] == old) {
        sorted_seg_insert(seg, len, new);
        return false;
    }
    let at_i = seg[..n].partition_point(|&x| x < new);
    if at_i <= at_r {
        seg.copy_within(at_i..at_r, at_i + 1);
        seg[at_i] = new;
    } else {
        // `old` sits below every element ≥ `new`, so its removal shifts
        // the insertion point down by one.
        seg.copy_within(at_r + 1..at_i, at_r);
        seg[at_i - 1] = new;
    }
    true
}

/// The `p`-th percentile of the sorted prefix `seg[..len]` — the same NIST
/// R-7 arithmetic as [`crate::sorted_window::SortedWindow::percentile`],
/// `None` on an empty prefix or `p` outside `0..=100`.
pub fn sorted_seg_percentile(seg: &[f64], len: u32, p: f64) -> Option<f64> {
    let n = len as usize;
    if n == 0 || !(0.0..=100.0).contains(&p) {
        return None;
    }
    Some(percentile_of_sorted(&seg[..n], p))
}

/// Lane-major sorted sliding windows: lane `l` owns the ascending prefix
/// `data[l * cap ..][..len[l]]`. Per-lane semantics are exactly
/// [`crate::sorted_window::SortedWindow`] with a capacity bound (the
/// planner's totals window never outgrows its aggregate ring).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedPlane {
    cap: usize,
    len: Vec<u32>,
    data: Vec<f64>,
}

impl SortedPlane {
    /// `lanes` empty windows of at most `cap` values each.
    pub fn new(cap: usize, lanes: usize) -> Self {
        let cap = cap.max(1);
        SortedPlane { cap, len: vec![0; lanes], data: vec![0.0; cap * lanes] }
    }

    /// Values per lane at most.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Values held in `lane`.
    pub fn len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    /// The held values of `lane`, ascending.
    pub fn as_slice(&self, lane: usize) -> &[f64] {
        &self.data[lane * self.cap..][..self.len[lane] as usize]
    }

    /// Adds one value to `lane` ([`sorted_seg_insert`]).
    pub fn insert(&mut self, lane: usize, v: f64) {
        let seg = &mut self.data[lane * self.cap..][..self.cap];
        sorted_seg_insert(seg, &mut self.len[lane], v);
    }

    /// Removes one occurrence of `v` from `lane` ([`sorted_seg_remove`]).
    pub fn remove(&mut self, lane: usize, v: f64) -> bool {
        let seg = &mut self.data[lane * self.cap..][..self.cap];
        sorted_seg_remove(seg, &mut self.len[lane], v)
    }

    /// Replaces `old` with `new` in `lane` ([`sorted_seg_replace`]).
    pub fn replace(&mut self, lane: usize, old: f64, new: f64) -> bool {
        let seg = &mut self.data[lane * self.cap..][..self.cap];
        sorted_seg_replace(seg, &mut self.len[lane], old, new)
    }

    /// The `p`-th percentile of `lane` ([`sorted_seg_percentile`]).
    pub fn percentile(&self, lane: usize, p: f64) -> Option<f64> {
        sorted_seg_percentile(&self.data[lane * self.cap..][..self.cap], self.len[lane], p)
    }

    /// Empties `lane`.
    pub fn clear_lane(&mut self, lane: usize) {
        self.len[lane] = 0;
    }

    /// Restores `lane` to exactly `values` (must be ascending, finite, and
    /// within capacity — returns false and leaves the lane empty
    /// otherwise). The validation mirrors
    /// [`crate::sorted_window::SortedWindow`]'s restore.
    pub fn restore_lane(&mut self, lane: usize, values: &[f64]) -> bool {
        use std::cmp::Ordering::{Equal, Less};
        self.clear_lane(lane);
        if values.len() > self.cap
            || values.iter().any(|v| !v.is_finite())
            || !values.windows(2).all(|p| matches!(p[0].partial_cmp(&p[1]), Some(Less | Equal)))
        {
            return false;
        }
        self.data[lane * self.cap..][..values.len()].copy_from_slice(values);
        self.len[lane] = values.len() as u32;
        true
    }

    /// Rebuilds the plane under an old-lane → new-lane `mapping`.
    pub fn remap(&self, mapping: &[usize], new_lanes: usize) -> SortedPlane {
        let mut out = SortedPlane::new(self.cap, new_lanes);
        for (old, &new) in mapping.iter().enumerate() {
            out.len[new] = self.len[old];
            out.data[new * self.cap..][..self.cap]
                .copy_from_slice(&self.data[old * self.cap..][..self.cap]);
        }
        out
    }

    /// The backing storage (raw view hook).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Per-lane lengths (raw view hook).
    pub fn lens_mut(&mut self) -> &mut [u32] {
        &mut self.len
    }
}

/// Feeds the value entering a lane's FIFO window into its monotonic
/// max-deque ring segment (`seg.len()` is the ring capacity) — exactly
/// [`crate::monotonic::MonotonicMaxDeque::push`]: strictly smaller tail
/// entries are discarded, equals kept.
pub fn deque_seg_push(seg: &mut [u64], head: &mut u32, len: &mut u32, v: u64) {
    let cap = seg.len() as u32;
    while *len > 0 && seg[((*head + *len - 1) % cap) as usize] < v {
        *len -= 1;
    }
    debug_assert!(*len < cap, "deque lane overflow: window outgrew its plane");
    if *len < cap {
        seg[((*head + *len) % cap) as usize] = v;
        *len += 1;
    }
}

/// Feeds the value leaving a lane's FIFO window — exactly
/// [`crate::monotonic::MonotonicMaxDeque::evict`]: pops the front iff it
/// equals `v`.
pub fn deque_seg_evict(seg: &mut [u64], head: &mut u32, len: &mut u32, v: u64) {
    let cap = seg.len() as u32;
    if *len > 0 && seg[*head as usize] == v {
        *head = (*head + 1) % cap;
        *len -= 1;
    }
}

/// The window maximum of a deque lane — its front entry.
pub fn deque_seg_max(seg: &[u64], head: u32, len: u32) -> Option<u64> {
    (len > 0).then(|| seg[head as usize])
}

/// Lane-major monotonic max-deques over `u64` values: lane `l` owns the
/// ring segment `data[l * cap .. (l + 1) * cap]` with its own `head`/`len`.
/// Per-lane semantics are exactly
/// [`crate::monotonic::MonotonicMaxDeque`] driven by a FIFO window of at
/// most `cap` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DequePlane {
    cap: usize,
    head: Vec<u32>,
    len: Vec<u32>,
    data: Vec<u64>,
}

impl DequePlane {
    /// `lanes` empty deques tracking windows of at most `cap` values.
    pub fn new(cap: usize, lanes: usize) -> Self {
        let cap = cap.max(1);
        DequePlane { cap, head: vec![0; lanes], len: vec![0; lanes], data: vec![0; cap * lanes] }
    }

    /// Values retained in `lane` (≤ the window length, often far fewer).
    pub fn len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    /// The `i`-th retained value of `lane`, front (maximum) first.
    pub fn get(&self, lane: usize, i: usize) -> u64 {
        debug_assert!(i < self.len(lane));
        self.data[lane * self.cap + (self.head[lane] as usize + i) % self.cap]
    }

    /// Feeds the value entering `lane`'s window ([`deque_seg_push`]).
    pub fn push(&mut self, lane: usize, v: u64) {
        let seg = &mut self.data[lane * self.cap..][..self.cap];
        deque_seg_push(seg, &mut self.head[lane], &mut self.len[lane], v);
    }

    /// Feeds the value leaving `lane`'s window ([`deque_seg_evict`]).
    pub fn evict(&mut self, lane: usize, v: u64) {
        let seg = &mut self.data[lane * self.cap..][..self.cap];
        deque_seg_evict(seg, &mut self.head[lane], &mut self.len[lane], v);
    }

    /// The maximum of `lane`'s window ([`deque_seg_max`]).
    pub fn max(&self, lane: usize) -> Option<u64> {
        deque_seg_max(&self.data[lane * self.cap..][..self.cap], self.head[lane], self.len[lane])
    }

    /// Empties `lane`.
    pub fn clear_lane(&mut self, lane: usize) {
        self.head[lane] = 0;
        self.len[lane] = 0;
    }

    /// Restores `lane` to exactly `values`, front first (must be
    /// non-increasing — the monotonic invariant — and within capacity;
    /// returns false and leaves the lane empty otherwise).
    pub fn restore_lane(&mut self, lane: usize, values: &[u64]) -> bool {
        self.clear_lane(lane);
        if values.len() > self.cap || values.windows(2).any(|p| p[1] > p[0]) {
            return false;
        }
        self.data[lane * self.cap..][..values.len()].copy_from_slice(values);
        self.len[lane] = values.len() as u32;
        true
    }

    /// Rebuilds the plane under an old-lane → new-lane `mapping`.
    pub fn remap(&self, mapping: &[usize], new_lanes: usize) -> DequePlane {
        let mut out = DequePlane::new(self.cap, new_lanes);
        for (old, &new) in mapping.iter().enumerate() {
            out.head[new] = self.head[old];
            out.len[new] = self.len[old];
            out.data[new * self.cap..][..self.cap]
                .copy_from_slice(&self.data[old * self.cap..][..self.cap]);
        }
        out
    }

    /// The backing storage (raw view hook).
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Per-lane heads (raw view hook).
    pub fn heads_mut(&mut self) -> &mut [u32] {
        &mut self.head
    }

    /// Per-lane lengths (raw view hook).
    pub fn lens_mut(&mut self) -> &mut [u32] {
        &mut self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monotonic::MonotonicMaxDeque;
    use crate::sorted_window::SortedWindow;
    use std::collections::VecDeque;

    fn lcg(x: &mut u64) -> f64 {
        *x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        (*x >> 11) as f64 / (1u64 << 53) as f64 * 1e4
    }

    #[test]
    fn ring_cursors_match_fifo_ring() {
        // Two lanes pushed at different rates, differentially against a
        // VecDeque-backed FIFO ring of the same capacity.
        let cap = 7;
        let mut cursors = RingCursors::new(cap, 2);
        let mut plane = RingPlane::new(cap, 2);
        let mut reference: [VecDeque<f64>; 2] = [VecDeque::new(), VecDeque::new()];
        let mut x = 9u64;
        for step in 0..200 {
            for (lane, fifo) in reference.iter_mut().enumerate() {
                if (step + lane) % (lane + 1) != 0 {
                    continue; // lanes advance on their own cadence
                }
                let v = lcg(&mut x);
                let (slot, evicting) = cursors.push_slot(lane);
                let evicted = evicting.then(|| plane.get(slot, lane));
                plane.set(slot, lane, v);
                cursors.advance(lane);

                let expect_evicted = if fifo.len() == cap { fifo.pop_front() } else { None };
                fifo.push_back(v);
                assert_eq!(evicted, expect_evicted, "lane {lane} step {step}");
                assert_eq!(cursors.len(lane), fifo.len());
                for (i, &want) in fifo.iter().enumerate() {
                    assert_eq!(plane.get(cursors.slot_of(lane, i), lane), want);
                }
            }
        }
        cursors.clear_lane(0);
        assert!(cursors.is_empty(0));
        assert_eq!(cursors.len(1), cap, "clearing one lane leaves the other");
    }

    #[test]
    fn ring_push_slots_matches_per_lane_protocol() {
        // The batched kernel against push_slot + advance, over lanes that
        // skip windows on their own cadence so fill levels diverge and some
        // lanes wrap while others are still filling.
        let cap = 5;
        let lanes = 6;
        let mut batched = RingCursors::new(cap, lanes);
        let mut reference = RingCursors::new(cap, lanes);
        let mut slots = vec![0u32; lanes];
        let mut evicting = vec![false; lanes];
        for step in 0..40usize {
            let present: Vec<bool> = (0..lanes).map(|l| (step + l) % (l + 1) == 0).collect();
            {
                let mut starts = std::mem::take(&mut batched.start);
                ring_push_slots(
                    cap as u32,
                    &mut starts,
                    batched.lens_mut(),
                    &present,
                    &mut slots,
                    &mut evicting,
                );
                batched.start = starts;
            }
            for (lane, &p) in present.iter().enumerate() {
                if !p {
                    continue;
                }
                let (slot, evict) = reference.push_slot(lane);
                reference.advance(lane);
                assert_eq!(slots[lane] as usize, slot, "lane {lane} step {step}");
                assert_eq!(evicting[lane], evict, "lane {lane} step {step}");
            }
            assert_eq!(batched, reference, "cursor state diverged at step {step}");
        }
    }

    #[test]
    fn sorted_plane_matches_sorted_window() {
        let cap = 33;
        let lanes = 3;
        let mut plane = SortedPlane::new(cap, lanes);
        let mut reference: Vec<SortedWindow> = (0..lanes).map(|_| SortedWindow::new()).collect();
        let mut windows: Vec<VecDeque<f64>> = vec![VecDeque::new(); lanes];
        let mut x = 3u64;
        for step in 0..600 {
            let lane = step % lanes;
            let v = lcg(&mut x);
            if windows[lane].len() == cap {
                let evicted = windows[lane].pop_front().unwrap();
                assert_eq!(plane.remove(lane, evicted), reference[lane].remove(evicted));
            }
            windows[lane].push_back(v);
            plane.insert(lane, v);
            reference[lane].insert(v);
            assert_eq!(plane.as_slice(lane), reference[lane].as_sorted_slice());
            for p in [0.0, 50.0, 99.0, 100.0] {
                assert_eq!(plane.percentile(lane, p), reference[lane].percentile(p).ok());
            }
        }
        assert_eq!(plane.percentile(0, 101.0), None);
        assert!(!plane.remove(1, f64::NAN), "non-finite remove is a no-op");
        let before = plane.len(2);
        plane.insert(2, f64::INFINITY);
        assert_eq!(plane.len(2), before, "non-finite insert is ignored");
    }

    #[test]
    fn sorted_replace_matches_remove_then_insert() {
        // The fused replace against the two-step reference, over values
        // drawn from a small set so duplicates (and missing removals) are
        // common, across fill levels.
        let cap = 16;
        let mut fused = SortedPlane::new(cap, 1);
        let mut twostep = SortedPlane::new(cap, 1);
        let mut x = 31u64;
        let draw = |x: &mut u64| (lcg(x) as u64 % 7) as f64;
        for step in 0..500usize {
            let new = draw(&mut x);
            // Steady-state occupancy wanders below capacity; a full lane
            // always replaces a present value (as the ring eviction
            // guarantees in production), a non-full lane sometimes grows
            // and sometimes replaces a possibly-absent value.
            let full = fused.len(0) == cap;
            if !full && step % 5 == 0 {
                fused.insert(0, new);
                twostep.insert(0, new);
                continue;
            }
            let old = if full {
                fused.as_slice(0)[step % cap] // present by construction
            } else {
                draw(&mut x) // duplicates common, may be absent
            };
            let a = fused.replace(0, old, new);
            let b = twostep.remove(0, old);
            twostep.insert(0, new);
            assert_eq!(a, b, "step {step}: removed flag diverged");
            assert_eq!(fused.as_slice(0), twostep.as_slice(0), "step {step}");
        }
        // Non-finite arms fall back to the single-op semantics.
        let len = fused.len(0);
        assert!(!fused.replace(0, f64::NAN, f64::INFINITY), "nothing removed, nothing inserted");
        assert_eq!(fused.len(0), len);
    }

    #[test]
    fn deque_plane_matches_monotonic_deque() {
        let cap = 23;
        let mut plane = DequePlane::new(cap, 2);
        let mut reference: [MonotonicMaxDeque<u64>; 2] =
            [MonotonicMaxDeque::new(), MonotonicMaxDeque::new()];
        let mut windows: [VecDeque<u64>; 2] = [VecDeque::new(), VecDeque::new()];
        for step in 0..500u64 {
            for lane in 0..2 {
                let v = (step * 37 + 11 * lane as u64) % 97;
                if windows[lane].len() == cap {
                    let evicted = windows[lane].pop_front().unwrap();
                    plane.evict(lane, evicted);
                    reference[lane].evict(evicted);
                }
                windows[lane].push_back(v);
                plane.push(lane, v);
                reference[lane].push(v);
                assert_eq!(plane.max(lane), reference[lane].max(), "lane {lane} step {step}");
                assert_eq!(plane.len(lane), reference[lane].len());
            }
        }
        plane.clear_lane(0);
        assert_eq!(plane.max(0), None);
        assert!(plane.max(1).is_some(), "clearing one lane leaves the other");
    }

    #[test]
    fn remap_preserves_lane_state_and_opens_new_lanes() {
        let cap = 5;
        let mut cursors = RingCursors::new(cap, 2);
        let mut ring = RingPlane::new(cap, 2);
        let mut sorted = SortedPlane::new(cap, 2);
        let mut deque = DequePlane::new(cap, 2);
        for i in 0..8u64 {
            // Wrap lane 1 past capacity so remap must carry a rotated ring.
            for lane in [1, usize::from(i % 2 == 0)] {
                let v = (i * 13 + lane as u64 * 7) % 29;
                let (slot, evicting) = cursors.push_slot(lane);
                if evicting {
                    let old = ring.get(slot, lane);
                    sorted.remove(lane, old);
                    deque.evict(lane, old as u64);
                }
                ring.set(slot, lane, v as f64);
                cursors.advance(lane);
                sorted.insert(lane, v as f64);
                deque.push(lane, v);
            }
        }
        let held: Vec<Vec<f64>> = (0..2)
            .map(|lane| {
                (0..cursors.len(lane)).map(|i| ring.get(cursors.slot_of(lane, i), lane)).collect()
            })
            .collect();

        // Old lane 0 → new lane 1, old lane 1 → new lane 3; lanes 0/2 fresh.
        let mapping = [1usize, 3];
        let cursors2 = cursors.remap(&mapping, 4);
        let ring2 = ring.remap(&mapping, 4);
        let sorted2 = sorted.remap(&mapping, 4);
        let deque2 = deque.remap(&mapping, 4);
        for (old, &new) in mapping.iter().enumerate() {
            assert_eq!(cursors2.len(new), cursors.len(old));
            let got: Vec<f64> =
                (0..cursors2.len(new)).map(|i| ring2.get(cursors2.slot_of(new, i), new)).collect();
            assert_eq!(got, held[old], "ring content survives remap");
            assert_eq!(sorted2.as_slice(new), sorted.as_slice(old));
            assert_eq!(deque2.max(new), deque.max(old));
        }
        for fresh in [0usize, 2] {
            assert!(cursors2.is_empty(fresh));
            assert_eq!(sorted2.len(fresh), 0);
            assert_eq!(deque2.max(fresh), None);
        }
    }

    #[test]
    fn restore_lane_validates() {
        let mut cursors = RingCursors::new(4, 1);
        assert!(cursors.restore_lane(0, 4));
        assert_eq!(cursors.len(0), 4);
        assert_eq!(cursors.slot_of(0, 0), 0, "restored lanes start at slot 0");
        assert!(!cursors.restore_lane(0, 5), "over-capacity length rejected");
        assert!(cursors.is_empty(0));

        let mut sorted = SortedPlane::new(4, 1);
        assert!(sorted.restore_lane(0, &[1.0, 2.0, 2.0, 7.5]));
        assert_eq!(sorted.percentile(0, 100.0), Some(7.5));
        assert!(!sorted.restore_lane(0, &[2.0, 1.0]), "descending rejected");
        assert!(!sorted.restore_lane(0, &[1.0, f64::NAN]), "non-finite rejected");
        assert!(!sorted.restore_lane(0, &[1.0; 5]), "over-capacity rejected");
        assert_eq!(sorted.len(0), 0);

        let mut deque = DequePlane::new(4, 1);
        assert!(deque.restore_lane(0, &[9, 9, 3]));
        assert_eq!(deque.max(0), Some(9));
        assert_eq!((0..3).map(|i| deque.get(0, i)).collect::<Vec<_>>(), vec![9, 9, 3]);
        assert!(!deque.restore_lane(0, &[3, 9]), "increasing run rejected");
        assert!(!deque.restore_lane(0, &[1; 5]), "over-capacity rejected");
        assert_eq!(deque.len(0), 0);
    }
}
