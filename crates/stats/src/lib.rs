//! Statistics substrate for the `headroom` capacity planner.
//!
//! The ICDCS'18 headroom methodology is deliberately *black-box*: it never
//! models the service internals, only the externally observable relationship
//! between workload, resource usage, and quality of service. That relationship
//! is recovered with a small set of classical statistical tools, all of which
//! are implemented here from scratch:
//!
//! - [`linreg`] — ordinary least-squares simple linear regression (workload →
//!   limiting-resource validation, §II-A1 of the paper);
//! - [`streaming`] — the same fit with O(1) insert/evict updates, for
//!   planners revising their model every measurement window;
//! - [`quadfit`] — the quadratic counterpart with O(1) insert/evict and
//!   shard merge;
//! - [`order_stats`], [`sorted_window`], [`monotonic`] — incremental order
//!   statistics (pointer-linked treap and cache-friendly sorted column, both
//!   bit-identical to sort-based percentiles) and O(1) sliding-window
//!   maxima, the structures behind the streaming planner's per-window
//!   sizing path;
//! - [`plane`] — the struct-of-arrays counterparts of those windows: one
//!   flat allocation holding *every* pool's ring/sorted-window/max-deque,
//!   indexed by lane, so a fleet-wide sweep streams its state instead of
//!   pointer-chasing one heap buffer per pool;
//! - [`combine`] — the canonical shard-and-combine trait those streaming
//!   accumulators implement;
//! - [`fit_array`] — fixed-size per-resource arrays of accumulators (the
//!   multi-resource fit vector), combining element-wise;
//! - [`persist`] — bit-exact binary checkpointing for the streaming
//!   accumulators, so a restarted planner resumes mid-stream;
//! - [`polyfit`] — least-squares polynomial fitting (the quadratic latency
//!   models of §II-B);
//! - [`ransac`] — RANSAC robust regression (the paper fits latency curves with
//!   RANSAC to survive deployment-induced outliers, §II-B2);
//! - [`dtree`] — a CART decision tree with k-fold cross-validation and ROC
//!   AUC, used to auto-group servers within pools (§II-A2);
//! - [`kmeans`] — k-means clustering for hardware-generation discovery
//!   (Fig. 3);
//! - [`percentile`], [`histogram`], [`quantile_stream`], [`summary`],
//!   [`correlation`] — descriptive statistics used throughout the evaluation.
//!
//! # Example
//!
//! ```
//! use headroom_stats::linreg::LinearFit;
//!
//! # fn main() -> Result<(), headroom_stats::StatsError> {
//! // CPU utilisation responds linearly to requests per second.
//! let rps = [100.0, 200.0, 300.0, 400.0];
//! let cpu = [4.2, 7.0, 9.8, 12.6];
//! let fit = LinearFit::fit(&rps, &cpu)?;
//! assert!((fit.slope - 0.028).abs() < 1e-9);
//! assert!(fit.r_squared > 0.999);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod correlation;
pub mod dtree;
pub mod error;
pub mod fit_array;
pub mod histogram;
pub mod kmeans;
pub mod linreg;
pub mod matrix;
pub mod monotonic;
pub mod order_stats;
pub mod percentile;
pub mod persist;
pub mod plane;
pub mod polyfit;
pub mod quadfit;
pub mod quantile_stream;
pub mod ransac;
pub mod sorted_window;
pub mod streaming;
pub mod summary;

pub use combine::Combine;
pub use error::StatsError;
pub use fit_array::FitArray;
pub use linreg::LinearFit;
pub use monotonic::MonotonicMaxDeque;
pub use order_stats::OrderStatsMultiset;
pub use persist::{Persist, PersistError, Reader, Writer};
pub use plane::{DequePlane, RingCursors, RingPlane, SortedPlane};
pub use polyfit::{Polynomial, Quadratic};
pub use quadfit::StreamingQuadFit;
pub use sorted_window::SortedWindow;
pub use streaming::StreamingLinReg;
pub use summary::Summary;
