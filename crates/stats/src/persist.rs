//! Bit-exact binary persistence for streaming-planner state.
//!
//! A planner that restarts must resume *exactly* where it stopped: the
//! restored accumulators have to reproduce every subsequent decision bit
//! for bit, or the kill-and-restore identity gate (`repro service`) cannot
//! hold. That rules out any text round-trip — `f64` values are stored as
//! their raw IEEE-754 bit patterns ([`f64::to_bits`]), never formatted —
//! and any platform-dependent width — `usize` travels as `u64`.
//!
//! The codec is deliberately tiny and hand-rolled (the workspace vendors no
//! serialization framework): a [`Writer`] appends little-endian fields to a
//! byte buffer, a [`Reader`] consumes them, and the [`Persist`] trait pairs
//! the two per type. Because most planner state types keep their fields
//! private (their invariants are real), each type implements [`Persist`]
//! in its own module, next to the invariants the encoding must respect;
//! this module provides the primitives and the generic container impls.
//!
//! # Example
//!
//! ```
//! use headroom_stats::persist::{Persist, Reader, Writer};
//! use headroom_stats::StreamingLinReg;
//!
//! let mut reg = StreamingLinReg::new();
//! reg.push(100.0, 4.2);
//! reg.push(200.0, 7.0);
//!
//! let mut w = Writer::new();
//! reg.persist(&mut w);
//! let bytes = w.into_bytes();
//!
//! let restored = StreamingLinReg::restore(&mut Reader::new(&bytes)).unwrap();
//! assert_eq!(restored, reg);
//! ```

use std::fmt;

/// Why a restore failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// The byte stream ended before the field it should contain.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A decoded value violates the target type's invariants.
    Invalid(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of state: needed {needed} bytes, {remaining} remain")
            }
            PersistError::Invalid(what) => write!(f, "invalid persisted state: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Append-only encoder over a growable byte buffer.
///
/// All integers are little-endian; floats are raw IEEE-754 bit patterns.
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (platform-independent width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern — the value restored
    /// is bit-identical, including signed zeros and NaN payloads.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Consuming decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::UnexpectedEof`] when the stream is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`PersistError::UnexpectedEof`] when the stream is exhausted.
    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::UnexpectedEof`] when the stream is exhausted.
    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Consumes a `usize` stored as `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::UnexpectedEof`] on exhaustion;
    /// [`PersistError::Invalid`] when the value exceeds this platform's
    /// `usize`.
    pub fn take_usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| PersistError::Invalid("usize value exceeds platform width"))
    }

    /// Consumes a `bool` stored as one byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::UnexpectedEof`] on exhaustion;
    /// [`PersistError::Invalid`] on a byte that is neither 0 nor 1.
    pub fn take_bool(&mut self) -> Result<bool, PersistError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Invalid("bool byte is neither 0 nor 1")),
        }
    }

    /// Consumes an `f64` stored as its raw bit pattern.
    ///
    /// # Errors
    ///
    /// [`PersistError::UnexpectedEof`] when the stream is exhausted.
    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }
}

/// Bit-exact binary round-trip for one type.
///
/// The contract: `restore(persist(x)) == x` *bit for bit* — a restored
/// value must behave identically to the original on every future input.
/// Implementations on types with private fields live in the type's own
/// module, next to the invariants they must preserve.
pub trait Persist: Sized {
    /// Appends this value's complete state to `w`.
    fn persist(&self, w: &mut Writer);

    /// Reconstructs a value from `r`.
    ///
    /// # Errors
    ///
    /// [`PersistError`] on a truncated stream or invariant-violating data.
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

impl Persist for u32 {
    fn persist(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.take_u32()
    }
}

impl Persist for u64 {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.take_u64()
    }
}

impl Persist for usize {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.take_usize()
    }
}

impl Persist for bool {
    fn persist(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.take_bool()
    }
}

impl Persist for f64 {
    fn persist(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.take_f64()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.persist(w);
            }
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            _ => Err(PersistError::Invalid("Option tag is neither 0 nor 1")),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.persist(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = r.take_usize()?;
        // Every element costs at least one byte, so a hostile length cannot
        // force an allocation larger than the stream backing it.
        if len > r.remaining() {
            return Err(PersistError::Invalid("sequence length exceeds remaining stream"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, w: &mut Writer) {
        self.0.persist(w);
        self.1.persist(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

/// FNV-1a 64-bit hash — the checkpoint container's corruption check.
///
/// Not cryptographic; it guards against truncation and bit rot, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(T::restore(&mut r).unwrap(), v);
        assert!(r.is_empty(), "restore consumed everything");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f64);
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 1e-308, f64::MAX] {
            let mut w = Writer::new();
            v.persist(&mut w);
            let restored = f64::restore(&mut Reader::new(w.bytes())).unwrap();
            assert_eq!(restored.to_bits(), v.to_bits(), "{v} lost bits");
        }
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Option::<f64>::None);
        roundtrip(Some(2.5f64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip((7usize, 3.25f64));
        roundtrip(vec![(1.0f64, 2.0f64), (3.0, 4.0)]);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = &w.bytes()[..5];
        let err = u64::restore(&mut Reader::new(bytes)).unwrap_err();
        assert_eq!(err, PersistError::UnexpectedEof { needed: 8, remaining: 5 });
    }

    #[test]
    fn invalid_tags_error() {
        let err = bool::restore(&mut Reader::new(&[7])).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)));
        let err = Option::<u32>::restore(&mut Reader::new(&[9])).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)));
    }

    #[test]
    fn hostile_vec_length_rejected() {
        let mut w = Writer::new();
        w.put_usize(usize::MAX / 2);
        let err = Vec::<u64>::restore(&mut Reader::new(w.bytes())).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn display_formats() {
        let eof = PersistError::UnexpectedEof { needed: 8, remaining: 2 };
        assert!(eof.to_string().contains("needed 8"));
        assert!(PersistError::Invalid("x").to_string().contains("x"));
    }
}
