//! Least-squares polynomial fitting via the normal equations.
//!
//! The paper models latency as a *second-order quadratic polynomial* of
//! per-server workload (Eq. 1, Figs. 9 and 11): the authors "started by
//! trying the simplest techniques first and found that quadratic polynomials
//! worked in this case and for 10s of other server pools".

use crate::matrix::Matrix;
use crate::StatsError;

/// A polynomial with coefficients in **ascending** power order:
/// `coeffs[0] + coeffs[1]·x + coeffs[2]·x² + …`.
///
/// # Example
///
/// ```
/// use headroom_stats::Polynomial;
///
/// // The paper's pool-B latency curve: y = 4.028e-5 x^2 - 0.031 x + 36.68
/// let p = Polynomial::new(vec![36.68, -0.031, 4.028e-5]);
/// // Paper: forecast 31.5 ms at 540 RPS/server.
/// assert!((p.eval(540.0) - 31.6).abs() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-power coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(!coeffs.is_empty(), "polynomial needs at least one coefficient");
        Polynomial { coeffs }
    }

    /// Ascending-power coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Polynomial degree (length of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative as a new polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() == 1 {
            return Polynomial::new(vec![0.0]);
        }
        let coeffs =
            self.coeffs.iter().enumerate().skip(1).map(|(i, &c)| c * i as f64).collect::<Vec<_>>();
        Polynomial::new(coeffs)
    }

    /// Fits a degree-`degree` polynomial to paired data by least squares.
    ///
    /// # Errors
    ///
    /// - Input validation errors as in [`crate::linreg::LinearFit::fit`].
    /// - [`StatsError::InsufficientData`] when `n < degree + 1`.
    /// - [`StatsError::Singular`] for degenerate designs (e.g. constant x).
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<PolyFit, StatsError> {
        crate::error::check_paired(xs, ys)?;
        let n = xs.len();
        let terms = degree + 1;
        if n < terms {
            return Err(StatsError::InsufficientData { needed: terms, got: n });
        }
        // Build the Vandermonde design matrix.
        let mut design = Matrix::zeros(n, terms);
        for (r, &x) in xs.iter().enumerate() {
            let mut pow = 1.0;
            for c in 0..terms {
                design.set(r, c, pow);
                pow *= x;
            }
        }
        let gram = design.transpose_times_self();
        let rhs = design.transpose_times_vec(ys)?;
        let coeffs = gram.solve(&rhs)?;
        let poly = Polynomial::new(coeffs);
        let r_squared = r_squared_of(&poly, xs, ys);
        Ok(PolyFit { poly, r_squared, n })
    }

    /// Solves `eval(x) = y` for a **quadratic** on the increasing branch,
    /// i.e. returns the largest real root of `a·x² + b·x + (c - y) = 0`.
    ///
    /// Capacity planning inverts the latency curve to ask "at what
    /// RPS/server does latency cross the SLO?".
    ///
    /// # Errors
    ///
    /// - [`StatsError::InvalidParameter`] when the polynomial is not
    ///   degree 2 or the target is unreachable (negative discriminant).
    pub fn solve_quadratic(&self, y: f64) -> Result<f64, StatsError> {
        if self.degree() != 2 {
            return Err(StatsError::InvalidParameter("solve_quadratic requires degree 2"));
        }
        Quadratic { coeffs: [self.coeffs[0], self.coeffs[1], self.coeffs[2]] }.solve(y)
    }
}

/// A degree-2 polynomial with inline coefficients — the allocation-free
/// counterpart of a quadratic [`Polynomial`] for per-pool hot paths (the
/// online planner inverts one latency curve per pool per replan; a
/// heap-backed coefficient vector there is a malloc per pool per window
/// at fleet scale).
///
/// Evaluation and root-solving follow the exact operation order of the
/// [`Polynomial`] equivalents, so the two representations are
/// bit-interchangeable: `Polynomial::solve_quadratic` delegates here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quadratic {
    /// Ascending-power coefficients `[c0, c1, c2]`.
    pub coeffs: [f64; 3],
}

impl Quadratic {
    /// Evaluates by Horner's rule (the identical fold to
    /// [`Polynomial::eval`] on a 3-coefficient polynomial).
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Solves `eval(x) = y` on the increasing branch, i.e. returns the
    /// largest real root of `c2·x² + c1·x + (c0 − y) = 0` — see
    /// [`Polynomial::solve_quadratic`], which delegates here.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InvalidParameter`] when the target is unreachable
    ///   (negative discriminant).
    /// - [`StatsError::Singular`] when both leading coefficients vanish.
    pub fn solve(&self, y: f64) -> Result<f64, StatsError> {
        let a = self.coeffs[2];
        let b = self.coeffs[1];
        let c = self.coeffs[0] - y;
        if a.abs() < 1e-18 {
            if b.abs() < 1e-18 {
                return Err(StatsError::Singular);
            }
            return Ok(-c / b);
        }
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return Err(StatsError::InvalidParameter("target not reachable by quadratic"));
        }
        let sqrt_disc = disc.sqrt();
        let r1 = (-b + sqrt_disc) / (2.0 * a);
        let r2 = (-b - sqrt_disc) / (2.0 * a);
        Ok(r1.max(r2))
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let mag = c.abs();
            match i {
                0 => write!(f, "{mag:.4}")?,
                1 => write!(f, "{mag:.4}*x")?,
                _ => write!(f, "{mag:.4e}*x^{i}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Result of a polynomial least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// The fitted polynomial.
    pub poly: Polynomial,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of observations used.
    pub n: usize,
}

impl PolyFit {
    /// Evaluates the fitted polynomial at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.poly.eval(x)
    }
}

/// R² of a polynomial against data (clamped at 0).
pub fn r_squared_of(poly: &Polynomial, xs: &[f64], ys: &[f64]) -> f64 {
    let n = ys.len();
    if n == 0 {
        return 0.0;
    }
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut ss_tot = 0.0;
    let mut ss_res = 0.0;
    for i in 0..n {
        let dy = ys[i] - mean_y;
        ss_tot += dy * dy;
        let resid = ys[i] - poly.eval(xs[i]);
        ss_res += resid * resid;
    }
    if ss_tot < 1e-12 {
        if ss_res < 1e-9 {
            1.0
        } else {
            0.0
        }
    } else {
        (1.0 - ss_res / ss_tot).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn fit_exact_quadratic() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x * x - 3.0 * x + 1.0).collect();
        let fit = Polynomial::fit(&xs, &ys, 2).unwrap();
        let c = fit.poly.coeffs();
        assert!(close(c[0], 1.0, 1e-6));
        assert!(close(c[1], -3.0, 1e-6));
        assert!(close(c[2], 2.0, 1e-6));
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn fit_degree_one_matches_linreg() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + 2.0).collect();
        let pf = Polynomial::fit(&xs, &ys, 1).unwrap();
        let lf = crate::LinearFit::fit(&xs, &ys).unwrap();
        assert!(close(pf.poly.coeffs()[1], lf.slope, 1e-9));
        assert!(close(pf.poly.coeffs()[0], lf.intercept, 1e-9));
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(matches!(
            Polynomial::fit(&[1.0, 2.0], &[1.0, 2.0], 2),
            Err(StatsError::InsufficientData { needed: 3, got: 2 })
        ));
    }

    #[test]
    fn constant_x_singular() {
        let xs = [3.0; 5];
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(matches!(Polynomial::fit(&xs, &ys, 2), Err(StatsError::Singular)));
    }

    #[test]
    fn horner_eval() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 6.0);
        assert_eq!(p.eval(2.0), 17.0);
    }

    #[test]
    fn derivative_of_quadratic() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[2.0, 6.0]);
        let dd = d.derivative();
        assert_eq!(dd.coeffs(), &[6.0]);
        let ddd = dd.derivative();
        assert_eq!(ddd.coeffs(), &[0.0]);
    }

    #[test]
    fn solve_quadratic_increasing_branch() {
        // Paper's pool-D latency curve: y = 4.66e-3 x² - 0.80 x + 86.50.
        let p = Polynomial::new(vec![86.50, -0.80, 4.66e-3]);
        // Find the RPS at which latency reaches 60 ms — must be the upper root.
        let x = p.solve_quadratic(60.0).unwrap();
        assert!(x > 85.0, "upper root expected, got {x}");
        assert!(close(p.eval(x), 60.0, 1e-9));
    }

    #[test]
    fn solve_quadratic_unreachable() {
        // Upward parabola with minimum 10 at x=0: y=5 unreachable.
        let p = Polynomial::new(vec![10.0, 0.0, 1.0]);
        assert!(matches!(p.solve_quadratic(5.0), Err(StatsError::InvalidParameter(_))));
    }

    #[test]
    fn solve_quadratic_wrong_degree() {
        let p = Polynomial::new(vec![1.0, 1.0]);
        assert!(matches!(p.solve_quadratic(5.0), Err(StatsError::InvalidParameter(_))));
    }

    #[test]
    fn paper_pool_b_latency_forecast() {
        // Synthesize from the published pool-B curve then check the forecast at 540 RPS.
        let curve = Polynomial::new(vec![36.68, -0.031, 4.028e-5]);
        let xs: Vec<f64> = (100..620).step_by(5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| curve.eval(x)).collect();
        let fit = Polynomial::fit(&xs, &ys, 2).unwrap();
        assert!(close(fit.predict(540.0), 31.6, 0.2), "paper forecast ~31.5 ms");
    }

    #[test]
    fn r_squared_constant_target() {
        let p = Polynomial::new(vec![5.0]);
        assert_eq!(r_squared_of(&p, &[1.0, 2.0], &[5.0, 5.0]), 1.0);
        let q = Polynomial::new(vec![4.0]);
        assert_eq!(r_squared_of(&q, &[1.0, 2.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn display_roundtrip_sanity() {
        let p = Polynomial::new(vec![36.68, -0.031, 4.028e-5]);
        let s = p.to_string();
        assert!(s.contains("x^2"), "{s}");
        assert!(s.contains("36.68"), "{s}");
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_coeffs_panic() {
        let _ = Polynomial::new(vec![]);
    }
}
