//! Error type shared by all statistical routines in this crate.

use std::error::Error;
use std::fmt;

/// Error produced by statistical routines.
///
/// Every fallible function in this crate returns `Result<_, StatsError>`.
/// The variants are deliberately coarse: callers in the planner react to
/// *whether* an estimate exists, not to the precise numerical failure mode.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slice was empty where at least one observation is required.
    EmptyInput,
    /// Paired inputs (e.g. `xs` and `ys`) had different lengths.
    DimensionMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// Fewer observations than the routine needs to produce an estimate.
    InsufficientData {
        /// Minimum number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// The design matrix was singular (e.g. all x values identical).
    Singular,
    /// A parameter was outside its valid domain (e.g. percentile not in 0..=100).
    InvalidParameter(&'static str),
    /// Input contained a NaN or infinite value.
    NonFinite,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input is empty"),
            StatsError::DimensionMismatch { left, right } => {
                write!(f, "paired inputs have mismatched lengths {left} and {right}")
            }
            StatsError::InsufficientData { needed, got } => {
                write!(f, "need at least {needed} observations, got {got}")
            }
            StatsError::Singular => write!(f, "design matrix is singular"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::NonFinite => write!(f, "input contains non-finite values"),
        }
    }
}

impl Error for StatsError {}

/// Validates that two paired slices have equal, non-zero length and finite values.
pub(crate) fn check_paired(xs: &[f64], ys: &[f64]) -> Result<(), StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::DimensionMismatch { left: xs.len(), right: ys.len() });
    }
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let cases: Vec<(StatsError, &str)> = vec![
            (StatsError::EmptyInput, "input is empty"),
            (
                StatsError::DimensionMismatch { left: 2, right: 3 },
                "paired inputs have mismatched lengths 2 and 3",
            ),
            (
                StatsError::InsufficientData { needed: 4, got: 1 },
                "need at least 4 observations, got 1",
            ),
            (StatsError::Singular, "design matrix is singular"),
            (StatsError::NonFinite, "input contains non-finite values"),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn check_paired_rejects_mismatch() {
        let err = check_paired(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, StatsError::DimensionMismatch { left: 1, right: 2 });
    }

    #[test]
    fn check_paired_rejects_empty() {
        assert_eq!(check_paired(&[], &[]).unwrap_err(), StatsError::EmptyInput);
    }

    #[test]
    fn check_paired_rejects_nan() {
        assert_eq!(check_paired(&[f64::NAN], &[1.0]).unwrap_err(), StatsError::NonFinite);
    }

    #[test]
    fn check_paired_accepts_valid() {
        assert!(check_paired(&[1.0, 2.0], &[3.0, 4.0]).is_ok());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
