//! Minimal dense-matrix support: just enough linear algebra to solve the
//! normal equations behind [`crate::polyfit`] and [`crate::linreg`].

use crate::StatsError;

/// A small, row-major dense matrix of `f64`.
///
/// This is not a general linear-algebra library; it supports exactly the
/// operations the regression code needs (construction, transpose-products,
/// and solving square systems by Gaussian elimination with partial pivoting).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, StatsError> {
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch { left: data.len(), right: rows * cols });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Computes `Aᵀ · A` (the Gram matrix of the design matrix).
    pub fn transpose_times_self(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut sum = 0.0;
                for r in 0..self.rows {
                    sum += self.get(r, i) * self.get(r, j);
                }
                out.set(i, j, sum);
                out.set(j, i, sum);
            }
        }
        out
    }

    /// Computes `Aᵀ · y` for a column vector `y`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `y.len() != rows`.
    pub fn transpose_times_vec(&self, y: &[f64]) -> Result<Vec<f64>, StatsError> {
        if y.len() != self.rows {
            return Err(StatsError::DimensionMismatch { left: y.len(), right: self.rows });
        }
        let mut out = vec![0.0; self.cols];
        for (c, item) in out.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (r, &yv) in y.iter().enumerate() {
                sum += self.get(r, c) * yv;
            }
            *item = sum;
        }
        Ok(out)
    }

    /// Solves the square system `self · x = b` by Gaussian elimination with
    /// partial pivoting. `self` is consumed conceptually (copied internally).
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if the matrix is not square or `b`
    ///   has the wrong length.
    /// - [`StatsError::Singular`] if a pivot is (numerically) zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch { left: self.rows, right: self.cols });
        }
        if b.len() != self.rows {
            return Err(StatsError::DimensionMismatch { left: b.len(), right: self.rows });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: find the largest |value| in this column at/below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(StatsError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for c in (col + 1)..n {
                sum -= a[col * n + c] * x[c];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  →  x = 1, y = 3
        let m = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let m = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(m.solve(&[1.0, 2.0]).unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(m.solve(&[1.0, 2.0]), Err(StatsError::DimensionMismatch { .. })));
    }

    #[test]
    fn wrong_rhs_len_rejected() {
        let m = Matrix::zeros(2, 2);
        assert!(matches!(m.solve(&[1.0]), Err(StatsError::DimensionMismatch { .. })));
    }

    #[test]
    fn gram_matrix_symmetric() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let g = a.transpose_times_self();
        assert_eq!(g.rows(), 2);
        assert_eq!(g.get(0, 1), g.get(1, 0));
        // Column 0 · Column 0 = 1 + 9 + 25 = 35
        assert_eq!(g.get(0, 0), 35.0);
        // Column 0 · Column 1 = 2 + 12 + 30 = 44
        assert_eq!(g.get(0, 1), 44.0);
    }

    #[test]
    fn transpose_times_vec_checks_len() {
        let a = Matrix::zeros(3, 2);
        assert!(a.transpose_times_vec(&[1.0, 2.0]).is_err());
        assert_eq!(a.transpose_times_vec(&[1.0, 2.0, 3.0]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn from_rows_validates_len() {
        assert!(Matrix::from_rows(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_dims_panic() {
        let _ = Matrix::zeros(0, 1);
    }
}
