//! RANSAC robust regression.
//!
//! The paper estimates its per-partition latency quadratics "using robust
//! regressions (RANSAC)" (§II-B2) because production observations contain
//! outliers from deployments, traffic shifts, and other operational noise
//! that plain least squares would absorb into the curve.

use crate::polyfit::{r_squared_of, Polynomial};
use crate::StatsError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for a RANSAC polynomial fit.
#[derive(Debug, Clone, PartialEq)]
pub struct RansacConfig {
    /// Number of random minimal-sample iterations.
    pub iterations: usize,
    /// A point is an inlier when `|y - ŷ| <= inlier_threshold`.
    pub inlier_threshold: f64,
    /// Minimum fraction of points that must be inliers for a model to be
    /// considered valid (e.g. `0.5`).
    pub min_inlier_fraction: f64,
    /// Seed for the deterministic sampler.
    pub seed: u64,
}

impl Default for RansacConfig {
    fn default() -> Self {
        RansacConfig { iterations: 200, inlier_threshold: 1.0, min_inlier_fraction: 0.5, seed: 7 }
    }
}

/// Result of a RANSAC fit: the consensus model refit on all inliers.
#[derive(Debug, Clone, PartialEq)]
pub struct RansacFit {
    /// Polynomial refit by least squares on the inlier set.
    pub poly: Polynomial,
    /// Indices of inlier observations in the input slices.
    pub inliers: Vec<usize>,
    /// R² of the refit model measured on the inlier set.
    pub r_squared: f64,
    /// Fraction of all observations classified as inliers.
    pub inlier_fraction: f64,
}

/// Fits a degree-`degree` polynomial robustly with RANSAC.
///
/// Repeatedly samples `degree + 1` points, fits an exact polynomial through
/// them, counts inliers within [`RansacConfig::inlier_threshold`], keeps the
/// largest consensus set, then refits on that set by least squares.
///
/// # Errors
///
/// - Input validation errors as in [`Polynomial::fit`].
/// - [`StatsError::InsufficientData`] when `n < degree + 1`.
/// - [`StatsError::Singular`] when no iteration produced a valid consensus
///   set of at least `min_inlier_fraction` of the data.
///
/// # Example
///
/// ```
/// use headroom_stats::ransac::{ransac_polyfit, RansacConfig};
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// // A clean line with two gross outliers.
/// let mut xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
/// let mut ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// ys[5] = 500.0;
/// ys[20] = -300.0;
/// let fit = ransac_polyfit(&xs, &ys, 1, &RansacConfig::default())?;
/// assert!((fit.poly.coeffs()[1] - 2.0).abs() < 1e-6);
/// assert_eq!(fit.inliers.len(), 38);
/// # Ok(())
/// # }
/// ```
pub fn ransac_polyfit(
    xs: &[f64],
    ys: &[f64],
    degree: usize,
    config: &RansacConfig,
) -> Result<RansacFit, StatsError> {
    crate::error::check_paired(xs, ys)?;
    let n = xs.len();
    let sample_size = degree + 1;
    if n < sample_size {
        return Err(StatsError::InsufficientData { needed: sample_size, got: n });
    }
    if !(0.0..=1.0).contains(&config.min_inlier_fraction) {
        return Err(StatsError::InvalidParameter("min_inlier_fraction must be within 0..=1"));
    }
    if config.inlier_threshold <= 0.0 {
        return Err(StatsError::InvalidParameter("inlier_threshold must be positive"));
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best_inliers: Vec<usize> = Vec::new();

    // Sample more points than the minimum and fit them by least squares:
    // exact minimal-sample fits are hopelessly noise-sensitive for the
    // low-curvature latency quadratics this crate exists for.
    let draw = sample_size.max(8).min(n);
    let mut sample: Vec<usize> = Vec::with_capacity(draw);
    for _ in 0..config.iterations.max(1) {
        sample.clear();
        let mut attempts = 0usize;
        while sample.len() < draw && attempts < draw * 20 {
            let candidate = rng.random_range(0..n);
            if !sample.contains(&candidate) {
                sample.push(candidate);
            }
            attempts += 1;
        }
        if sample.len() < draw {
            continue;
        }
        let sx: Vec<f64> = sample.iter().map(|&i| xs[i]).collect();
        let sy: Vec<f64> = sample.iter().map(|&i| ys[i]).collect();
        let candidate = match Polynomial::fit(&sx, &sy, degree) {
            Ok(f) => f.poly,
            Err(_) => continue, // degenerate sample (duplicate x), try again
        };
        let inliers: Vec<usize> = (0..n)
            .filter(|&i| (ys[i] - candidate.eval(xs[i])).abs() <= config.inlier_threshold)
            .collect();
        if inliers.len() > best_inliers.len() {
            best_inliers = inliers;
        }
    }

    let min_inliers = ((n as f64) * config.min_inlier_fraction).ceil() as usize;
    if best_inliers.len() < min_inliers.max(sample_size) {
        return Err(StatsError::Singular);
    }

    let ix: Vec<f64> = best_inliers.iter().map(|&i| xs[i]).collect();
    let iy: Vec<f64> = best_inliers.iter().map(|&i| ys[i]).collect();
    let refit = Polynomial::fit(&ix, &iy, degree)?;
    let r_squared = r_squared_of(&refit.poly, &ix, &iy);
    let inlier_fraction = best_inliers.len() as f64 / n as f64;
    Ok(RansacFit { poly: refit.poly, inliers: best_inliers, r_squared, inlier_fraction })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with_outliers(n: usize, outliers: &[usize]) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + 3.0).collect();
        for &i in outliers {
            ys[i] += 1000.0;
        }
        (xs, ys)
    }

    #[test]
    fn recovers_line_under_outliers() {
        let (xs, ys) = line_with_outliers(100, &[3, 17, 42, 88]);
        let fit = ransac_polyfit(&xs, &ys, 1, &RansacConfig::default()).unwrap();
        assert!((fit.poly.coeffs()[1] - 0.5).abs() < 1e-9);
        assert!((fit.poly.coeffs()[0] - 3.0).abs() < 1e-9);
        assert_eq!(fit.inliers.len(), 96);
        assert!((fit.inlier_fraction - 0.96).abs() < 1e-12);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn recovers_quadratic_under_outliers() {
        let xs: Vec<f64> = (0..120).map(|i| i as f64 * 5.0).collect();
        let mut ys: Vec<f64> = xs.iter().map(|&x| 4.0e-5 * x * x - 0.03 * x + 36.0).collect();
        for i in [10, 30, 77] {
            ys[i] += 400.0;
        }
        let cfg = RansacConfig { inlier_threshold: 0.5, ..RansacConfig::default() };
        let fit = ransac_polyfit(&xs, &ys, 2, &cfg).unwrap();
        assert!((fit.poly.coeffs()[2] - 4.0e-5).abs() < 1e-8);
        assert_eq!(fit.inliers.len(), 117);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (xs, ys) = line_with_outliers(60, &[5, 10]);
        let cfg = RansacConfig { seed: 99, ..RansacConfig::default() };
        let a = ransac_polyfit(&xs, &ys, 1, &cfg).unwrap();
        let b = ransac_polyfit(&xs, &ys, 1, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_outliers_fails() {
        // Pure noise spread too wide for any consensus with a tight threshold.
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..50).map(|i| ((i * 7919) % 997) as f64 * 10.0).collect();
        let cfg = RansacConfig {
            inlier_threshold: 1e-6,
            min_inlier_fraction: 0.5,
            ..RansacConfig::default()
        };
        assert!(matches!(ransac_polyfit(&xs, &ys, 1, &cfg), Err(StatsError::Singular)));
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(matches!(
            ransac_polyfit(&[1.0], &[1.0], 1, &RansacConfig::default()),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let (xs, ys) = line_with_outliers(10, &[]);
        let bad_frac = RansacConfig { min_inlier_fraction: 1.5, ..RansacConfig::default() };
        assert!(matches!(
            ransac_polyfit(&xs, &ys, 1, &bad_frac),
            Err(StatsError::InvalidParameter(_))
        ));
        let bad_thresh = RansacConfig { inlier_threshold: 0.0, ..RansacConfig::default() };
        assert!(matches!(
            ransac_polyfit(&xs, &ys, 1, &bad_thresh),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn clean_data_keeps_everything() {
        let (xs, ys) = line_with_outliers(40, &[]);
        let fit = ransac_polyfit(&xs, &ys, 1, &RansacConfig::default()).unwrap();
        assert_eq!(fit.inliers.len(), 40);
        assert_eq!(fit.inlier_fraction, 1.0);
    }
}
