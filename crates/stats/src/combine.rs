//! The canonical shard-and-combine API.
//!
//! The parallel sweep engine partitions a fleet's pools across worker
//! shards; fleet-level statistics are then assembled by *combining* the
//! shards' accumulators. Every estimator that participates implements
//! [`Combine`], with one semantic contract: `a.combine(&b)` leaves `a`
//! equivalent to an accumulator that observed `a`'s stream followed by
//! `b`'s stream. Combining must be exact (not an approximation), so
//! sharded and sequential runs agree to floating-point identity of the
//! underlying sums.
//!
//! Implementations:
//!
//! - [`StreamingLinReg`] — Chan et al.'s pairwise moment merge;
//! - [`StreamingQuadFit`] — power sums re-based across conditioning shifts;
//! - [`OrderStatsMultiset`] — element-wise re-insertion (O(m log n), exact
//!   by construction since the multiset is value-based).

use crate::order_stats::OrderStatsMultiset;
use crate::quadfit::StreamingQuadFit;
use crate::streaming::StreamingLinReg;

/// Fold another accumulator of the same kind into this one.
///
/// See the module docs for the exactness contract.
pub trait Combine {
    /// Absorbs `other`'s accumulated observations into `self`.
    fn combine(&mut self, other: &Self);
}

impl Combine for StreamingLinReg {
    fn combine(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Combine for StreamingQuadFit {
    fn combine(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Combine for OrderStatsMultiset {
    fn combine(&mut self, other: &Self) {
        for (value, count) in other.entries() {
            for _ in 0..count {
                self.insert(value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linreg_combine_is_merge() {
        let mut a = StreamingLinReg::new();
        let mut b = StreamingLinReg::new();
        let mut whole = StreamingLinReg::new();
        for i in 0..50 {
            let (x, y) = (i as f64, 2.0 * i as f64 + 1.0);
            whole.push(x, y);
            if i < 25 {
                a.push(x, y)
            } else {
                b.push(x, y)
            }
        }
        a.combine(&b);
        assert_eq!(a.len(), whole.len());
        let (fa, fw) = (a.fit().unwrap(), whole.fit().unwrap());
        assert!((fa.slope - fw.slope).abs() < 1e-10);
    }

    #[test]
    fn multiset_combine_re_inserts() {
        let mut a = OrderStatsMultiset::new();
        let mut b = OrderStatsMultiset::new();
        for v in [1.0, 2.0, 2.0] {
            a.insert(v);
        }
        for v in [2.0, 0.5] {
            b.insert(v);
        }
        a.combine(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.entries(), vec![(0.5, 1), (1.0, 1), (2.0, 3)]);
    }

    #[test]
    fn quadfit_combine_is_merge() {
        let mut a = StreamingQuadFit::new();
        let mut b = StreamingQuadFit::new();
        for i in 0..30 {
            let x = 10.0 + i as f64;
            if i < 15 {
                a.push(x, x * x)
            } else {
                b.push(x, x * x)
            }
        }
        a.combine(&b);
        assert_eq!(a.len(), 30);
        let (poly, _) = a.fit().unwrap();
        assert!((poly.coeffs()[2] - 1.0).abs() < 1e-8);
    }
}
