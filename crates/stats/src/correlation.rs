//! Pearson correlation.
//!
//! Used in two places by the planner: (1) the metric-validation loop checks
//! that a candidate workload metric correlates tightly with the limiting
//! resource (§II-A1), and (2) the RSM pre-screening identifies "where
//! negative correlation exists between the number of servers processing
//! traffic and the CPU utilization after controlling for total datacenter
//! load" (§II-B2).

use crate::error::check_paired;
use crate::StatsError;

/// Pearson correlation coefficient `r ∈ [-1, 1]`.
///
/// # Errors
///
/// - Input validation errors (mismatched lengths, empty, non-finite).
/// - [`StatsError::InsufficientData`] when fewer than 2 points.
/// - [`StatsError::Singular`] when either series is constant.
///
/// # Example
///
/// ```
/// use headroom_stats::correlation::pearson;
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0])?;
/// assert!((r - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    check_paired(xs, ys)?;
    let n = xs.len();
    if n < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: n });
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx < 1e-12 || syy < 1e-12 {
        return Err(StatsError::Singular);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Partial correlation of `x` and `y` controlling for `z`.
///
/// Implements the first-order partial correlation formula
/// `r_xy.z = (r_xy - r_xz·r_yz) / sqrt((1-r_xz²)(1-r_yz²))`.
///
/// The RSM pre-screen needs the server-count ↔ CPU relationship *after
/// controlling for total datacenter load* — workload is the confounder.
///
/// # Errors
///
/// Propagates [`pearson`] errors; returns [`StatsError::Singular`] when
/// either control correlation is ±1.
pub fn partial_correlation(xs: &[f64], ys: &[f64], zs: &[f64]) -> Result<f64, StatsError> {
    let r_xy = pearson(xs, ys)?;
    let r_xz = pearson(xs, zs)?;
    let r_yz = pearson(ys, zs)?;
    let denom = ((1.0 - r_xz * r_xz) * (1.0 - r_yz * r_yz)).sqrt();
    if denom < 1e-9 {
        return Err(StatsError::Singular);
    }
    Ok(((r_xy - r_xz * r_yz) / denom).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let r = pearson(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_near_zero() {
        // Symmetric V-shape: zero linear correlation.
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let ys = [4.0, 1.0, 0.0, 1.0, 4.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn constant_series_singular() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]).unwrap_err(), StatsError::Singular);
        assert_eq!(pearson(&[2.0, 3.0], &[1.0, 1.0]).unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn partial_removes_confounder() {
        // x and y are both driven by z; after controlling for z the
        // residual correlation should be much weaker than the raw one.
        let zs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let xs: Vec<f64> = zs.iter().enumerate().map(|(i, z)| z + ((i * 13) % 7) as f64).collect();
        let ys: Vec<f64> = zs.iter().enumerate().map(|(i, z)| z + ((i * 29) % 11) as f64).collect();
        let raw = pearson(&xs, &ys).unwrap();
        let partial = partial_correlation(&xs, &ys, &zs).unwrap();
        assert!(raw > 0.99, "confounded correlation should look strong: {raw}");
        assert!(partial.abs() < 0.35, "partial correlation should collapse: {partial}");
    }

    #[test]
    fn partial_detects_negative_control_effect() {
        // CPU rises with load z, falls with server count x (the RSM screen).
        let zs: Vec<f64> = (0..100).map(|i| 100.0 + (i % 17) as f64 * 10.0).collect();
        let xs: Vec<f64> = (0..100).map(|i| 20.0 + (i % 5) as f64).collect();
        let ys: Vec<f64> = zs.iter().zip(&xs).map(|(&z, &x)| z / x).collect();
        let partial = partial_correlation(&xs, &ys, &zs).unwrap();
        assert!(partial < -0.8, "expected strong negative partial corr, got {partial}");
    }

    #[test]
    fn mismatched_input_rejected() {
        assert!(matches!(pearson(&[1.0], &[1.0, 2.0]), Err(StatsError::DimensionMismatch { .. })));
    }
}
