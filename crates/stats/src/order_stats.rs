//! Incremental order statistics: an indexable multiset with O(log n)
//! insert, remove, and rank selection.
//!
//! The streaming planner re-derives each pool's p99 windowed peak every
//! replan. Collecting the window into a `Vec` and sorting is
//! O(W log W) per pool per window — the dominant cost of
//! `OnlinePlanner::assess` at paper scale. [`OrderStatsMultiset`] keeps the
//! window's values in a treap ordered by value and indexed by subtree
//! count, so the sliding window maintains itself with one O(log W) insert
//! and one O(log W) remove per window, and any percentile is two O(log W)
//! rank selections.
//!
//! The percentile definition is exactly [`crate::percentile::percentile`]'s
//! (NIST R-7, linear interpolation), computed with the same arithmetic, so
//! replacing a sort-based percentile with this structure is bit-identical —
//! not merely close. Property tests pin the agreement under random
//! insert/evict sequences.
//!
//! # Example
//!
//! ```
//! use headroom_stats::order_stats::OrderStatsMultiset;
//! use headroom_stats::percentile::percentile;
//!
//! let mut set = OrderStatsMultiset::new();
//! let window: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
//! for &v in &window {
//!     set.insert(v);
//! }
//! assert_eq!(set.percentile(99.0).unwrap(), percentile(&window, 99.0).unwrap());
//! ```

use crate::StatsError;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    value: f64,
    /// Multiplicity of `value`.
    count: usize,
    /// Total multiplicity of the subtree rooted here.
    size: usize,
    /// Heap priority (deterministic pseudo-random).
    prio: u64,
    left: usize,
    right: usize,
}

/// An order-statistics multiset over finite `f64` values.
///
/// Backed by an arena-allocated treap keyed by value, with duplicate values
/// collapsed into per-node multiplicities and subtree sizes maintained for
/// rank queries. Priorities come from a deterministic SplitMix64 stream, so
/// two multisets fed the same insert/remove sequence have identical shape —
/// structure never depends on wall clock, addresses, or thread schedule.
///
/// Non-finite values are ignored on [`insert`] (mirroring
/// [`crate::streaming::StreamingLinReg`]'s treatment of corrupt telemetry)
/// and never present, so [`remove`] of a non-finite value is a no-op.
///
/// [`insert`]: OrderStatsMultiset::insert
/// [`remove`]: OrderStatsMultiset::remove
#[derive(Debug, Clone)]
pub struct OrderStatsMultiset {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    prio_state: u64,
    /// Reusable root-to-node search path, so the hot-path insert/remove pair
    /// a sliding window performs every step does not allocate.
    scratch: Vec<usize>,
}

impl Default for OrderStatsMultiset {
    fn default() -> Self {
        OrderStatsMultiset::new()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl OrderStatsMultiset {
    /// An empty multiset.
    pub fn new() -> Self {
        OrderStatsMultiset {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            prio_state: 0,
            scratch: Vec::new(),
        }
    }

    /// An empty multiset with room for `capacity` distinct values.
    pub fn with_capacity(capacity: usize) -> Self {
        OrderStatsMultiset { nodes: Vec::with_capacity(capacity), ..OrderStatsMultiset::new() }
    }

    /// Total number of values held, counting multiplicity.
    pub fn len(&self) -> usize {
        self.size(self.root)
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Number of *distinct* values held.
    pub fn distinct(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn size(&self, t: usize) -> usize {
        if t == NIL {
            0
        } else {
            self.nodes[t].size
        }
    }

    fn pull(&mut self, t: usize) {
        let (l, r) = (self.nodes[t].left, self.nodes[t].right);
        self.nodes[t].size = self.nodes[t].count + self.size(l) + self.size(r);
    }

    fn alloc(&mut self, value: f64) -> usize {
        let prio = splitmix64(&mut self.prio_state);
        let node = Node { value, count: 1, size: 1, prio, left: NIL, right: NIL };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Splits `t` into (values `< v`, values `>= v`).
    fn split_lt(&mut self, t: usize, v: f64) -> (usize, usize) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t].value < v {
            let (a, b) = self.split_lt(self.nodes[t].right, v);
            self.nodes[t].right = a;
            self.pull(t);
            (t, b)
        } else {
            let (a, b) = self.split_lt(self.nodes[t].left, v);
            self.nodes[t].left = b;
            self.pull(t);
            (a, t)
        }
    }

    /// Merges two treaps where every value in `a` is `<=` every value in `b`.
    fn merge_treaps(&mut self, a: usize, b: usize) -> usize {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a].prio >= self.nodes[b].prio {
            let r = self.merge_treaps(self.nodes[a].right, b);
            self.nodes[a].right = r;
            self.pull(a);
            a
        } else {
            let l = self.merge_treaps(a, self.nodes[b].left);
            self.nodes[b].left = l;
            self.pull(b);
            b
        }
    }

    /// Walks from the root to the node holding `v`, pushing every visited
    /// index (including the match) onto `path`. Returns whether `v` exists.
    fn find_path(&self, v: f64, path: &mut Vec<usize>) -> bool {
        let mut t = self.root;
        while t != NIL {
            path.push(t);
            let tv = self.nodes[t].value;
            if v == tv {
                return true;
            }
            t = if v < tv { self.nodes[t].left } else { self.nodes[t].right };
        }
        false
    }

    /// Adds one value in O(log n) expected. Non-finite values are ignored.
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut path = std::mem::take(&mut self.scratch);
        path.clear();
        let found = self.find_path(v, &mut path);
        if found {
            // Existing value: bump its multiplicity and every ancestor size.
            for &i in &path {
                self.nodes[i].size += 1;
            }
            let leaf = *path.last().expect("found implies non-empty path");
            self.nodes[leaf].count += 1;
            self.scratch = path;
            return;
        }
        self.scratch = path;
        let (lt, ge) = self.split_lt(self.root, v);
        let node = self.alloc(v);
        let left = self.merge_treaps(lt, node);
        self.root = self.merge_treaps(left, ge);
    }

    /// Removes one occurrence of `v` in O(log n) expected. Returns whether a
    /// value was removed (false when `v` is absent or non-finite).
    pub fn remove(&mut self, v: f64) -> bool {
        if !v.is_finite() {
            return false;
        }
        let mut path = std::mem::take(&mut self.scratch);
        path.clear();
        if !self.find_path(v, &mut path) {
            self.scratch = path;
            return false;
        }
        let target = *path.last().expect("found implies non-empty path");
        if self.nodes[target].count > 1 {
            self.nodes[target].count -= 1;
            for &i in &path {
                self.nodes[i].size -= 1;
            }
            self.scratch = path;
            return true;
        }
        // Last occurrence: splice the node out and fix ancestors bottom-up.
        let replacement = self.merge_treaps(self.nodes[target].left, self.nodes[target].right);
        path.pop();
        match path.last() {
            None => self.root = replacement,
            Some(&parent) => {
                if self.nodes[parent].left == target {
                    self.nodes[parent].left = replacement;
                } else {
                    self.nodes[parent].right = replacement;
                }
            }
        }
        for &i in path.iter().rev() {
            self.pull(i);
        }
        self.free.push(target);
        self.scratch = path;
        true
    }

    /// The `k`-th smallest value (0-based, counting multiplicity), in
    /// O(log n) expected. `None` when `k >= len()`.
    pub fn select(&self, mut k: usize) -> Option<f64> {
        if k >= self.len() {
            return None;
        }
        let mut t = self.root;
        loop {
            let node = &self.nodes[t];
            let left_size = self.size(node.left);
            if k < left_size {
                t = node.left;
            } else if k < left_size + node.count {
                return Some(node.value);
            } else {
                k -= left_size + node.count;
                t = node.right;
            }
        }
    }

    /// The smallest value held.
    pub fn min(&self) -> Option<f64> {
        self.select(0)
    }

    /// The largest value held.
    pub fn max(&self) -> Option<f64> {
        self.len().checked_sub(1).and_then(|k| self.select(k))
    }

    /// The `p`-th percentile (0..=100) of the held values, using exactly the
    /// linear-interpolation definition (and arithmetic) of
    /// [`crate::percentile::percentile`] — the results are bit-identical to
    /// sorting the values and interpolating.
    ///
    /// # Errors
    ///
    /// - [`StatsError::EmptyInput`] when the multiset is empty.
    /// - [`StatsError::InvalidParameter`] when `p` is outside `0..=100`.
    pub fn percentile(&self, p: f64) -> Result<f64, StatsError> {
        if self.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !(0.0..=100.0).contains(&p) {
            return Err(StatsError::InvalidParameter("percentile must be within 0..=100"));
        }
        let n = self.len();
        if n == 1 {
            return Ok(self.select(0).expect("non-empty"));
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let lo_v = self.select(lo).expect("rank within len");
        if lo == hi {
            Ok(lo_v)
        } else {
            let hi_v = self.select(hi).expect("rank within len");
            let frac = rank - lo as f64;
            Ok(lo_v * (1.0 - frac) + hi_v * frac)
        }
    }

    /// In-order `(value, multiplicity)` pairs, ascending by value.
    pub fn entries(&self) -> Vec<(f64, usize)> {
        let mut out = Vec::with_capacity(self.distinct());
        // Explicit stack: entries() may walk deeper than assess-path calls
        // and must not rely on recursion.
        let mut stack = Vec::new();
        let mut t = self.root;
        while t != NIL || !stack.is_empty() {
            while t != NIL {
                stack.push(t);
                t = self.nodes[t].left;
            }
            let i = stack.pop().expect("loop invariant");
            out.push((self.nodes[i].value, self.nodes[i].count));
            t = self.nodes[i].right;
        }
        out
    }

    /// Drops every value, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        // prio_state is deliberately left running: clearing is a planner
        // drift reset, and structure determinism only requires the priority
        // stream to be a pure function of the operation history.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::percentile;

    #[test]
    fn insert_select_ordering() {
        let mut s = OrderStatsMultiset::new();
        for v in [5.0, 1.0, 3.0, 3.0, 2.0] {
            s.insert(v);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.distinct(), 4);
        let picked: Vec<f64> = (0..5).map(|k| s.select(k).unwrap()).collect();
        assert_eq!(picked, vec![1.0, 2.0, 3.0, 3.0, 5.0]);
        assert_eq!(s.select(5), None);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn remove_handles_multiplicity() {
        let mut s = OrderStatsMultiset::new();
        for v in [2.0, 2.0, 2.0, 7.0] {
            s.insert(v);
        }
        assert!(s.remove(2.0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.entries(), vec![(2.0, 2), (7.0, 1)]);
        assert!(s.remove(2.0));
        assert!(s.remove(2.0));
        assert!(!s.remove(2.0), "exhausted value is absent");
        assert!(s.remove(7.0));
        assert!(s.is_empty());
        assert_eq!(s.select(0), None);
    }

    #[test]
    fn percentile_matches_sort_based_bitwise() {
        let mut s = OrderStatsMultiset::new();
        let mut window: Vec<f64> = Vec::new();
        // Sliding window of 257 over a pseudo-random stream, checked at
        // several percentile ranks every step.
        let mut x = 1u64;
        for i in 0..1200usize {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let v = (x >> 11) as f64 / (1u64 << 53) as f64 * 1e4;
            s.insert(v);
            window.push(v);
            if window.len() > 257 {
                let evicted = window.remove(0);
                assert!(s.remove(evicted));
            }
            if i % 97 == 0 {
                for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
                    let expect = percentile(&window, p).unwrap();
                    let got = s.percentile(p).unwrap();
                    assert!(
                        got == expect,
                        "p{p} mismatch at step {i}: {got} vs {expect} (bit-identity required)"
                    );
                }
            }
        }
    }

    #[test]
    fn non_finite_ignored() {
        let mut s = OrderStatsMultiset::new();
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        assert!(s.is_empty());
        s.insert(1.0);
        assert!(!s.remove(f64::NAN));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn percentile_errors() {
        let s = OrderStatsMultiset::new();
        assert_eq!(s.percentile(50.0).unwrap_err(), StatsError::EmptyInput);
        let mut s = OrderStatsMultiset::new();
        s.insert(1.0);
        assert!(matches!(s.percentile(101.0).unwrap_err(), StatsError::InvalidParameter(_)));
        assert_eq!(s.percentile(50.0).unwrap(), 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut s = OrderStatsMultiset::new();
        for i in 0..100 {
            s.insert(i as f64);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.insert(4.0);
        assert_eq!(s.percentile(100.0).unwrap(), 4.0);
    }

    #[test]
    fn deterministic_shape_across_instances() {
        // Two multisets fed the same operation history must agree exactly —
        // including internal shape, which the entries order exposes.
        let ops: Vec<f64> = (0..300).map(|i| ((i * 53) % 89) as f64).collect();
        let mut a = OrderStatsMultiset::new();
        let mut b = OrderStatsMultiset::new();
        for &v in &ops {
            a.insert(v);
            b.insert(v);
        }
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.percentile(99.0).unwrap(), b.percentile(99.0).unwrap());
    }
}
