//! Streaming quantile estimation (the P² algorithm).
//!
//! The paper's trace set is 30 PB over 90 days — percentiles of such streams
//! cannot be computed by sorting. The P² algorithm (Jain & Chlamtac, 1985)
//! maintains a five-marker parabolic approximation of a single quantile in
//! O(1) space, which is how the fleet-scale experiments (Figs. 12–13)
//! summarise billions of 120-second windows.

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::StatsError;

/// Streaming estimator for a single quantile using the P² algorithm.
///
/// # Example
///
/// ```
/// use headroom_stats::quantile_stream::P2Quantile;
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// let mut q = P2Quantile::new(0.95)?;
/// for i in 0..10_000 {
///     q.observe((i % 100) as f64);
/// }
/// let est = q.estimate().unwrap();
/// assert!((est - 94.0).abs() < 2.0, "p95 of 0..100 ≈ 94-95, got {est}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations (before the markers initialise).
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p` (e.g. `0.95`).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] unless `0 < p < 1`.
    pub fn new(p: f64) -> Result<Self, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidParameter("quantile must be strictly within 0..1"));
        }
        Ok(P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        })
    }

    /// Quantile being estimated.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation (non-finite values are ignored).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(value);
            if self.warmup.len() == 5 {
                self.warmup.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for i in 0..5 {
                    self.heights[i] = self.warmup[i];
                }
            }
            return;
        }

        // Find the cell k containing the new observation; update extremes.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if value >= self.heights[i] && value < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d_sign = d.signum();
                let candidate = self.parabolic(i, d_sign);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d_sign)
                    };
                self.positions[i] += d_sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate, or `None` before any observation.
    ///
    /// For fewer than 5 observations the exact sample quantile is returned.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.warmup.len() < 5 {
            let mut sorted = self.warmup.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            return Some(crate::percentile::percentile_of_sorted(&sorted, self.p * 100.0));
        }
        Some(self.heights[2])
    }
}

impl Persist for P2Quantile {
    fn persist(&self, w: &mut Writer) {
        w.put_f64(self.p);
        for a in [&self.heights, &self.positions, &self.desired, &self.increments] {
            for v in a {
                w.put_f64(*v);
            }
        }
        w.put_usize(self.count);
        self.warmup.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let p = r.take_f64()?;
        if !(p > 0.0 && p < 1.0) {
            return Err(PersistError::Invalid("P2Quantile p outside (0, 1)"));
        }
        let mut arrays = [[0.0f64; 5]; 4];
        for a in &mut arrays {
            for v in a.iter_mut() {
                *v = r.take_f64()?;
            }
        }
        let [heights, positions, desired, increments] = arrays;
        let count = r.take_usize()?;
        let warmup = Vec::restore(r)?;
        if warmup.len() > 5 {
            return Err(PersistError::Invalid("P2Quantile warmup holds more than 5 values"));
        }
        Ok(P2Quantile { p, heights, positions, desired, increments, count, warmup })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn rejects_invalid_quantile() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(-0.5).is_err());
        assert!(P2Quantile::new(0.5).is_ok());
    }

    #[test]
    fn empty_has_no_estimate() {
        let q = P2Quantile::new(0.5).unwrap();
        assert_eq!(q.estimate(), None);
    }

    #[test]
    fn small_sample_exact() {
        let mut q = P2Quantile::new(0.5).unwrap();
        q.observe(1.0);
        q.observe(3.0);
        q.observe(2.0);
        assert_eq!(q.estimate().unwrap(), 2.0);
    }

    #[test]
    fn median_of_uniform() {
        let mut q = P2Quantile::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            q.observe(rng.random_range(0.0..100.0));
        }
        let est = q.estimate().unwrap();
        assert!((est - 50.0).abs() < 1.5, "median of U(0,100) ≈ 50, got {est}");
    }

    #[test]
    fn p95_of_uniform() {
        let mut q = P2Quantile::new(0.95).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100_000 {
            q.observe(rng.random_range(0.0..100.0));
        }
        let est = q.estimate().unwrap();
        assert!((est - 95.0).abs() < 1.5, "p95 of U(0,100) ≈ 95, got {est}");
    }

    #[test]
    fn p99_of_exponential_like() {
        // Deterministic heavy-tail-ish stream.
        let mut q = P2Quantile::new(0.99).unwrap();
        let exact: Vec<f64> =
            (0..50_000).map(|i| -((1.0 - (i as f64 + 0.5) / 50_000.0).ln())).collect();
        // Shuffle deterministically so arrival order is not sorted.
        let mut shuffled = exact.clone();
        let mut rng = StdRng::seed_from_u64(3);
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        for v in &shuffled {
            q.observe(*v);
        }
        let mut sorted = exact;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let truth = crate::percentile::percentile_of_sorted(&sorted, 99.0);
        let est = q.estimate().unwrap();
        assert!((est - truth).abs() / truth < 0.08, "p99 {est} vs true {truth}");
    }

    #[test]
    fn ignores_non_finite() {
        let mut q = P2Quantile::new(0.5).unwrap();
        q.observe(f64::NAN);
        q.observe(f64::INFINITY);
        assert_eq!(q.count(), 0);
        assert_eq!(q.estimate(), None);
    }

    #[test]
    fn count_tracks_observations() {
        let mut q = P2Quantile::new(0.9).unwrap();
        for i in 0..42 {
            q.observe(i as f64);
        }
        assert_eq!(q.count(), 42);
        assert_eq!(q.quantile(), 0.9);
    }
}
