//! CART decision tree for binary classification, with k-fold cross-validation
//! and ROC AUC.
//!
//! §II-A2 of the paper: "we trained a decision tree with 5 fold cross
//! validation with manually labeled pools using a minimum leaf size of 2000
//! machines. The tree contained 34 splits, achieving an R² = 0.746. The area
//! under curve (AUC) for the Yes and No prediction probability is 0.9804."
//! The tree decides, per pool, whether servers exhibit the tightly-bound
//! workload→CPU response required for black-box capacity planning.

use crate::StatsError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Training configuration for [`DecisionTree::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum observations in each child of a split. The paper uses 2000
    /// machines; scaled datasets pass smaller values.
    pub min_leaf_size: usize,
    /// Minimum Gini impurity decrease for a split to be kept.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 12, min_leaf_size: 8, min_gain: 1e-7 }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { probability: f64, n: usize },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A trained CART binary classifier.
///
/// # Example
///
/// ```
/// use headroom_stats::dtree::{DecisionTree, TreeConfig};
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// // Label is true when the first feature exceeds 10.
/// let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.2]).collect();
/// let labels: Vec<bool> = features.iter().map(|f| f[0] > 10.0).collect();
/// let cfg = TreeConfig { min_leaf_size: 2, ..TreeConfig::default() };
/// let tree = DecisionTree::train(&features, &labels, &cfg)?;
/// assert!(tree.predict(&[15.0]));
/// assert!(!tree.predict(&[2.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Trains a tree on `features` (n rows × d columns) and boolean `labels`.
    ///
    /// # Errors
    ///
    /// - [`StatsError::EmptyInput`] for no rows.
    /// - [`StatsError::DimensionMismatch`] for ragged rows or label mismatch.
    /// - [`StatsError::NonFinite`] for NaN/inf feature values.
    pub fn train(
        features: &[Vec<f64>],
        labels: &[bool],
        config: &TreeConfig,
    ) -> Result<Self, StatsError> {
        if features.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if features.len() != labels.len() {
            return Err(StatsError::DimensionMismatch {
                left: features.len(),
                right: labels.len(),
            });
        }
        let d = features[0].len();
        if d == 0 {
            return Err(StatsError::InvalidParameter("features must have at least one column"));
        }
        for row in features {
            if row.len() != d {
                return Err(StatsError::DimensionMismatch { left: row.len(), right: d });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(StatsError::NonFinite);
            }
        }
        let indices: Vec<usize> = (0..features.len()).collect();
        let root = build_node(features, labels, &indices, config, 0);
        Ok(DecisionTree { root, n_features: d })
    }

    /// Probability that the label is `true` for the given feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature dimensionality mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { probability, .. } => return *probability,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Hard classification at the 0.5 threshold.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Number of internal split nodes (the paper's tree has 34).
    pub fn split_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }

    /// Number of feature columns the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

fn build_node(
    features: &[Vec<f64>],
    labels: &[bool],
    indices: &[usize],
    config: &TreeConfig,
    depth: usize,
) -> Node {
    let n = indices.len();
    let pos = indices.iter().filter(|&&i| labels[i]).count();
    let probability = if n == 0 { 0.5 } else { pos as f64 / n as f64 };
    let leaf = Node::Leaf { probability, n };

    if depth >= config.max_depth || pos == 0 || pos == n || n < 2 * config.min_leaf_size {
        return leaf;
    }

    let parent_impurity = gini(pos, n);
    let d = features[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

    // Scratch: (value, label) pairs sorted per feature.
    let mut pairs: Vec<(f64, bool)> = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // `feat` indexes the inner axis of `features[i][feat]`
    for feat in 0..d {
        pairs.clear();
        pairs.extend(indices.iter().map(|&i| (features[i][feat], labels[i])));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("features checked finite"));

        let mut left_n = 0usize;
        let mut left_pos = 0usize;
        for w in 0..(n - 1) {
            left_n += 1;
            if pairs[w].1 {
                left_pos += 1;
            }
            // Only split between distinct feature values.
            if pairs[w].0 == pairs[w + 1].0 {
                continue;
            }
            let right_n = n - left_n;
            if left_n < config.min_leaf_size || right_n < config.min_leaf_size {
                continue;
            }
            let right_pos = pos - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / n as f64;
            let gain = parent_impurity - weighted;
            if gain > config.min_gain && best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                let threshold = (pairs[w].0 + pairs[w + 1].0) / 2.0;
                best = Some((feat, threshold, gain));
            }
        }
    }

    match best {
        None => leaf,
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| features[i][feature] <= threshold);
            let left = build_node(features, labels, &left_idx, config, depth + 1);
            let right = build_node(features, labels, &right_idx, config, depth + 1);
            Node::Split { feature, threshold, left: Box::new(left), right: Box::new(right) }
        }
    }
}

/// Area under the ROC curve for probabilistic scores against boolean labels.
///
/// Computed with the rank-based Mann–Whitney formulation, handling ties by
/// midrank. Returns a value in `[0, 1]`; 0.5 is chance.
///
/// # Errors
///
/// - [`StatsError::DimensionMismatch`] when lengths differ.
/// - [`StatsError::InsufficientData`] unless both classes are present.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> Result<f64, StatsError> {
    if scores.len() != labels.len() {
        return Err(StatsError::DimensionMismatch { left: scores.len(), right: labels.len() });
    }
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    // Midrank assignment.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks.iter().zip(labels).filter(|(_, &l)| l).map(|(&r, _)| r).sum();
    let u = rank_sum_pos - (pos as f64 * (pos as f64 + 1.0)) / 2.0;
    Ok(u / (pos as f64 * neg as f64))
}

/// Cross-validation report for a decision-tree configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvReport {
    /// Mean held-out accuracy at the 0.5 threshold.
    pub accuracy: f64,
    /// R² of the held-out predicted probabilities against the 0/1 labels —
    /// the metric the paper reports as "R² = 0.746".
    pub r_squared: f64,
    /// Mean held-out ROC AUC (paper: 0.9804).
    pub auc: f64,
    /// Mean split count across fold models (paper: 34 splits).
    pub mean_splits: f64,
    /// Number of folds evaluated.
    pub folds: usize,
}

/// Runs stratified-free k-fold cross-validation of a decision tree.
///
/// Rows are shuffled deterministically by `seed`, divided into `folds`
/// contiguous parts; each part is held out once.
///
/// # Errors
///
/// - Training errors from [`DecisionTree::train`].
/// - [`StatsError::InvalidParameter`] when `folds < 2` or `folds > n`.
/// - [`StatsError::InsufficientData`] when a fold assembly fails to contain
///   both classes in training data.
pub fn cross_validate(
    features: &[Vec<f64>],
    labels: &[bool],
    config: &TreeConfig,
    folds: usize,
    seed: u64,
) -> Result<CvReport, StatsError> {
    if features.len() != labels.len() {
        return Err(StatsError::DimensionMismatch { left: features.len(), right: labels.len() });
    }
    let n = features.len();
    if folds < 2 || folds > n {
        return Err(StatsError::InvalidParameter("folds must satisfy 2 <= folds <= n"));
    }

    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }

    let mut all_scores = Vec::with_capacity(n);
    let mut all_labels = Vec::with_capacity(n);
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut splits_sum = 0.0;

    for fold in 0..folds {
        let lo = fold * n / folds;
        let hi = (fold + 1) * n / folds;
        let test: &[usize] = &order[lo..hi];
        if test.is_empty() {
            continue;
        }
        let train: Vec<usize> = order[..lo].iter().chain(order[hi..].iter()).copied().collect();
        let train_x: Vec<Vec<f64>> = train.iter().map(|&i| features[i].clone()).collect();
        let train_y: Vec<bool> = train.iter().map(|&i| labels[i]).collect();
        let tree = DecisionTree::train(&train_x, &train_y, config)?;
        splits_sum += tree.split_count() as f64;
        for &i in test {
            let p = tree.predict_proba(&features[i]);
            all_scores.push(p);
            all_labels.push(labels[i]);
            if (p >= 0.5) == labels[i] {
                correct += 1;
            }
            total += 1;
        }
    }

    let accuracy = correct as f64 / total as f64;
    let auc = roc_auc(&all_scores, &all_labels)?;

    // R² of probabilities vs 0/1 labels.
    let ys: Vec<f64> = all_labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = ys.iter().zip(&all_scores).map(|(y, p)| (y - p) * (y - p)).sum();
    let r_squared = if ss_tot > 0.0 { (1.0 - ss_res / ss_tot).max(0.0) } else { 0.0 };

    Ok(CvReport { accuracy, r_squared, auc, mean_splits: splits_sum / folds as f64, folds })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Two informative features, one noise feature.
        let features: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 29) as f64;
                let b = ((i * 7) % 31) as f64;
                let noise = ((i * 13) % 17) as f64;
                vec![a, b, noise]
            })
            .collect();
        let labels: Vec<bool> = features.iter().map(|f| f[0] > 14.0 || f[1] > 22.0).collect();
        (features, labels)
    }

    #[test]
    fn learns_axis_aligned_rule() {
        let (x, y) = threshold_dataset(400);
        let cfg = TreeConfig { min_leaf_size: 4, ..TreeConfig::default() };
        let tree = DecisionTree::train(&x, &y, &cfg).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.97);
        assert!(tree.split_count() >= 2);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![true, true, true];
        let tree =
            DecisionTree::train(&x, &y, &TreeConfig { min_leaf_size: 1, ..TreeConfig::default() })
                .unwrap();
        assert_eq!(tree.split_count(), 0);
        assert_eq!(tree.predict_proba(&[9.0]), 1.0);
    }

    #[test]
    fn min_leaf_size_enforced() {
        let (x, y) = threshold_dataset(100);
        let big_leaf = TreeConfig { min_leaf_size: 60, ..TreeConfig::default() };
        let tree = DecisionTree::train(&x, &y, &big_leaf).unwrap();
        // No split can produce two children of ≥ 60 from 100 rows.
        assert_eq!(tree.split_count(), 0);
    }

    #[test]
    fn max_depth_zero_is_single_leaf() {
        let (x, y) = threshold_dataset(50);
        let cfg = TreeConfig { max_depth: 0, min_leaf_size: 1, min_gain: 0.0 };
        let tree = DecisionTree::train(&x, &y, &cfg).unwrap();
        assert_eq!(tree.split_count(), 0);
        let base_rate = y.iter().filter(|&&l| l).count() as f64 / y.len() as f64;
        assert!((tree.predict_proba(&[0.0, 0.0, 0.0]) - base_rate).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            DecisionTree::train(&[], &[], &TreeConfig::default()),
            Err(StatsError::EmptyInput)
        ));
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            DecisionTree::train(&x, &[true], &TreeConfig::default()),
            Err(StatsError::DimensionMismatch { .. })
        ));
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(matches!(
            DecisionTree::train(&ragged, &[true, false], &TreeConfig::default()),
            Err(StatsError::DimensionMismatch { .. })
        ));
        let nan = vec![vec![f64::NAN], vec![1.0]];
        assert!(matches!(
            DecisionTree::train(&nan, &[true, false], &TreeConfig::default()),
            Err(StatsError::NonFinite)
        ));
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn predict_wrong_dims_panics() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let tree = DecisionTree::train(
            &x,
            &[true, false],
            &TreeConfig { min_leaf_size: 1, ..TreeConfig::default() },
        )
        .unwrap();
        let _ = tree.predict(&[1.0]);
    }

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels).unwrap(), 1.0);
    }

    #[test]
    fn auc_random_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_is_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels).unwrap(), 0.0);
    }

    #[test]
    fn auc_requires_both_classes() {
        assert!(matches!(
            roc_auc(&[0.1, 0.9], &[true, true]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn cross_validation_on_learnable_problem() {
        let (x, y) = threshold_dataset(600);
        let cfg = TreeConfig { min_leaf_size: 6, ..TreeConfig::default() };
        let report = cross_validate(&x, &y, &cfg, 5, 42).unwrap();
        assert_eq!(report.folds, 5);
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert!(report.auc > 0.95, "auc {}", report.auc);
        assert!(report.r_squared > 0.5, "r2 {}", report.r_squared);
        assert!(report.mean_splits >= 1.0);
    }

    #[test]
    fn cross_validation_rejects_bad_folds() {
        let (x, y) = threshold_dataset(20);
        assert!(matches!(
            cross_validate(&x, &y, &TreeConfig::default(), 1, 0),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(matches!(
            cross_validate(&x, &y, &TreeConfig::default(), 21, 0),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn cross_validation_deterministic() {
        let (x, y) = threshold_dataset(200);
        let cfg = TreeConfig { min_leaf_size: 4, ..TreeConfig::default() };
        let a = cross_validate(&x, &y, &cfg, 4, 9).unwrap();
        let b = cross_validate(&x, &y, &cfg, 4, 9).unwrap();
        assert_eq!(a, b);
    }
}
