//! Contiguous sliding-window order statistics.
//!
//! [`SortedWindow`] keeps a sliding window's values in one sorted `Vec<f64>`
//! — a single contiguous column. Insert and remove are a binary search plus
//! a `memmove`, and any percentile is plain indexing into the sorted slice.
//!
//! This is the cache-friendly counterpart of
//! [`crate::order_stats::OrderStatsMultiset`]: the treap's insert/remove/
//! select are O(log n) *operations* but each walks ~log n pointer-linked
//! nodes, so at fleet scale (thousands of planner shards, each with its own
//! treap arena) every window costs ~log n dependent cache misses per pool.
//! The sorted column is O(W) moved bytes instead — but the moves are one
//! hardware-prefetched streaming `memmove` over memory that stays dense, so
//! for planning-scale windows (hundreds to a few thousand values) it is both
//! faster in absolute terms and, crucially, stays *linear per pool* as the
//! fleet grows past cache capacity. Profiled on the 4096/16384-pool sweep
//! grids, swapping the planner's windowed-totals treap for this structure
//! removed the superlinear per-pool cost entirely.
//!
//! The percentile definition is exactly
//! [`crate::percentile::percentile_of_sorted`] (NIST R-7, linear
//! interpolation) over the exact held multiset, so results are
//! *bit-identical* to the treap and to sorting the window — not merely
//! close. Property tests pin all three against each other.
//!
//! Non-finite values are ignored on [`insert`] (mirroring
//! [`crate::streaming::StreamingLinReg`]'s treatment of corrupt telemetry)
//! and never present, so [`remove`] of a non-finite value is a no-op.
//!
//! [`insert`]: SortedWindow::insert
//! [`remove`]: SortedWindow::remove
//!
//! # Example
//!
//! ```
//! use headroom_stats::percentile::percentile;
//! use headroom_stats::sorted_window::SortedWindow;
//!
//! let mut w = SortedWindow::new();
//! let window: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
//! for &v in &window {
//!     w.insert(v);
//! }
//! assert_eq!(w.percentile(99.0).unwrap(), percentile(&window, 99.0).unwrap());
//! ```

use crate::percentile::percentile_of_sorted;
use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::StatsError;

/// A sliding-window multiset over finite `f64` values, stored as one sorted
/// contiguous column.
///
/// See the module docs for the treap trade-off. The structure is fully
/// deterministic — contents depend only on the insert/remove history — and
/// steady-state insert/remove pairs allocate nothing once the backing `Vec`
/// has warmed to the window size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SortedWindow {
    /// Held values, ascending. Duplicates are stored explicitly (windowed
    /// totals repeat rarely; explicit storage keeps eviction trivial).
    values: Vec<f64>,
}

impl SortedWindow {
    /// An empty window.
    pub fn new() -> Self {
        SortedWindow::default()
    }

    /// An empty window with room for `capacity` values.
    pub fn with_capacity(capacity: usize) -> Self {
        SortedWindow { values: Vec::with_capacity(capacity) }
    }

    /// Number of values held, counting multiplicity.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The held values, ascending — a plain sorted column.
    pub fn as_sorted_slice(&self) -> &[f64] {
        &self.values
    }

    /// Adds one value in O(W). Non-finite values are ignored.
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        // partition_point is a branchless binary search; the insertion point
        // after the last `< v` entry keeps equal values grouped.
        let at = self.values.partition_point(|&x| x < v);
        self.values.insert(at, v);
    }

    /// Removes one occurrence of `v` in O(W). Returns whether a value was
    /// removed (false when `v` is absent or non-finite).
    pub fn remove(&mut self, v: f64) -> bool {
        if !v.is_finite() {
            return false;
        }
        let at = self.values.partition_point(|&x| x < v);
        if self.values.get(at) == Some(&v) {
            self.values.remove(at);
            true
        } else {
            false
        }
    }

    /// The smallest value held.
    pub fn min(&self) -> Option<f64> {
        self.values.first().copied()
    }

    /// The largest value held.
    pub fn max(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// The `p`-th percentile (0..=100) of the held values — plain indexing
    /// into the sorted column, using exactly the linear-interpolation
    /// definition (and arithmetic) of [`crate::percentile::percentile`], so
    /// results are bit-identical to sorting the values and interpolating
    /// (and to [`crate::order_stats::OrderStatsMultiset::percentile`]).
    ///
    /// # Errors
    ///
    /// - [`StatsError::EmptyInput`] when the window is empty.
    /// - [`StatsError::InvalidParameter`] when `p` is outside `0..=100`.
    pub fn percentile(&self, p: f64) -> Result<f64, StatsError> {
        if self.values.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !(0.0..=100.0).contains(&p) {
            return Err(StatsError::InvalidParameter("percentile must be within 0..=100"));
        }
        Ok(percentile_of_sorted(&self.values, p))
    }

    /// Drops every value, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl Persist for SortedWindow {
    fn persist(&self, w: &mut Writer) {
        self.values.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        use std::cmp::Ordering::{Equal, Less};
        let values: Vec<f64> = Vec::restore(r)?;
        // partial_cmp: NaN is incomparable and must be rejected too — the
        // window only ever stores finite values in ascending order.
        let ascending = |p: &[f64]| matches!(p[0].partial_cmp(&p[1]), Some(Less | Equal));
        if !values.windows(2).all(ascending) {
            return Err(PersistError::Invalid("SortedWindow values not ascending"));
        }
        Ok(SortedWindow { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order_stats::OrderStatsMultiset;
    use crate::percentile::percentile;

    #[test]
    fn insert_keeps_sorted_with_duplicates() {
        let mut w = SortedWindow::new();
        for v in [5.0, 1.0, 3.0, 3.0, 2.0] {
            w.insert(v);
        }
        assert_eq!(w.len(), 5);
        assert_eq!(w.as_sorted_slice(), &[1.0, 2.0, 3.0, 3.0, 5.0]);
        assert_eq!(w.min(), Some(1.0));
        assert_eq!(w.max(), Some(5.0));
    }

    #[test]
    fn remove_handles_multiplicity() {
        let mut w = SortedWindow::new();
        for v in [2.0, 2.0, 2.0, 7.0] {
            w.insert(v);
        }
        assert!(w.remove(2.0));
        assert_eq!(w.as_sorted_slice(), &[2.0, 2.0, 7.0]);
        assert!(w.remove(2.0));
        assert!(w.remove(2.0));
        assert!(!w.remove(2.0), "exhausted value is absent");
        assert!(w.remove(7.0));
        assert!(w.is_empty());
    }

    #[test]
    fn percentile_matches_sort_and_treap_bitwise() {
        // Sliding window of 257 over a pseudo-random stream, checked at
        // several ranks every step against both reference implementations.
        let mut w = SortedWindow::new();
        let mut treap = OrderStatsMultiset::new();
        let mut window: Vec<f64> = Vec::new();
        let mut x = 1u64;
        for i in 0..1200usize {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let v = (x >> 11) as f64 / (1u64 << 53) as f64 * 1e4;
            w.insert(v);
            treap.insert(v);
            window.push(v);
            if window.len() > 257 {
                let evicted = window.remove(0);
                assert!(w.remove(evicted));
                assert!(treap.remove(evicted));
            }
            if i % 97 == 0 {
                for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
                    let expect = percentile(&window, p).unwrap();
                    let got = w.percentile(p).unwrap();
                    assert!(got == expect, "p{p} vs sort at step {i}: {got} vs {expect}");
                    assert!(
                        got == treap.percentile(p).unwrap(),
                        "p{p} vs treap diverged at step {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_finite_ignored() {
        let mut w = SortedWindow::new();
        w.insert(f64::NAN);
        w.insert(f64::INFINITY);
        assert!(w.is_empty());
        w.insert(1.0);
        assert!(!w.remove(f64::NAN));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn percentile_errors() {
        let w = SortedWindow::new();
        assert_eq!(w.percentile(50.0).unwrap_err(), StatsError::EmptyInput);
        let mut w = SortedWindow::new();
        w.insert(1.0);
        assert!(matches!(w.percentile(101.0).unwrap_err(), StatsError::InvalidParameter(_)));
        assert_eq!(w.percentile(50.0).unwrap(), 1.0);
    }

    #[test]
    fn clear_resets_and_keeps_capacity() {
        let mut w = SortedWindow::with_capacity(64);
        for i in 0..100 {
            w.insert(i as f64);
        }
        let cap = w.values.capacity();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.values.capacity(), cap, "clearing keeps the warmed buffer");
        w.insert(4.0);
        assert_eq!(w.percentile(100.0).unwrap(), 4.0);
    }

    #[test]
    fn steady_state_insert_remove_does_not_grow() {
        // A warmed window's insert/remove pair must reuse the buffer — the
        // planner's zero-allocation steady state leans on this.
        let mut w = SortedWindow::new();
        for i in 0..48 {
            w.insert(i as f64);
        }
        let cap = w.values.capacity();
        for i in 48..10_000u64 {
            w.insert(i as f64);
            assert!(w.remove((i - 48) as f64));
        }
        assert_eq!(w.values.capacity(), cap, "steady state reallocated");
        assert_eq!(w.len(), 48);
    }
}
