//! Ordinary least-squares simple linear regression.
//!
//! The paper's metric-validation step (§II-A1) asserts that a *correct*
//! per-workload metric shows a tight linear correlation between workload
//! units and the limiting resource: "CPU increasing linearly with request
//! volume". Every linear fit reported in the paper (e.g. Fig. 8's
//! `y = 0.028·RPS + 1.37, R² = 0.984`) is a plain OLS fit like this one.

use crate::error::check_paired;
use crate::StatsError;

/// The result of fitting `y ≈ slope · x + intercept` by least squares.
///
/// # Example
///
/// ```
/// use headroom_stats::LinearFit;
///
/// # fn main() -> Result<(), headroom_stats::StatsError> {
/// let fit = LinearFit::fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0])?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// assert_eq!(fit.predict(10.0), 21.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² in `[0, 1]` (clamped at 0 for
    /// pathological fits).
    pub r_squared: f64,
    /// Number of observations used.
    pub n: usize,
}

impl LinearFit {
    /// Fits a line to paired observations.
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] / [`StatsError::EmptyInput`] /
    ///   [`StatsError::NonFinite`] for malformed inputs.
    /// - [`StatsError::InsufficientData`] when fewer than 2 points.
    /// - [`StatsError::Singular`] when all x values are identical.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, StatsError> {
        check_paired(xs, ys)?;
        LinearFit::fit_core(xs.iter().copied().zip(ys.iter().copied()), xs.len())
    }

    /// Fits a line directly to a `(x, y)` pair slice — the shape
    /// `MetricStore::pool_paired_observations` returns — without the two
    /// intermediate `collect()`s that splitting into parallel `xs`/`ys`
    /// vectors costs. Both entry points run the same accumulation core over
    /// the same value sequence, so the results are bit-identical by
    /// construction.
    ///
    /// # Errors
    ///
    /// - [`StatsError::EmptyInput`] / [`StatsError::NonFinite`] for
    ///   malformed inputs.
    /// - [`StatsError::InsufficientData`] when fewer than 2 points.
    /// - [`StatsError::Singular`] when all x values are identical.
    pub fn fit_paired(pairs: &[(f64, f64)]) -> Result<Self, StatsError> {
        if pairs.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if pairs.iter().any(|&(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        LinearFit::fit_core(pairs.iter().copied(), pairs.len())
    }

    /// The shared OLS core: both [`fit`] and [`fit_paired`] feed it the
    /// same `(x, y)` sequence, differing only in validation shape.
    ///
    /// [`fit`]: LinearFit::fit
    /// [`fit_paired`]: LinearFit::fit_paired
    fn fit_core<I>(pairs: I, n: usize) -> Result<Self, StatsError>
    where
        I: Iterator<Item = (f64, f64)> + Clone,
    {
        if n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: n });
        }
        let nf = n as f64;
        let mean_x = pairs.clone().map(|(x, _)| x).sum::<f64>() / nf;
        let mean_y = pairs.clone().map(|(_, y)| y).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (x, y) in pairs.clone() {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx < 1e-12 {
            return Err(StatsError::Singular);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        // R² = 1 - SS_res / SS_tot. A constant y (syy == 0) is perfectly
        // explained by the fitted (flat) line.
        let r_squared = if syy < 1e-12 {
            1.0
        } else {
            let mut ss_res = 0.0;
            for (x, y) in pairs {
                let resid = y - (slope * x + intercept);
                ss_res += resid * resid;
            }
            (1.0 - ss_res / syy).max(0.0)
        };
        Ok(LinearFit { slope, intercept, r_squared, n })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Inverts the line: the `x` at which the fit reaches `y`.
    ///
    /// Used to answer "at what RPS does CPU hit the ceiling?".
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Singular`] when the slope is (near) zero.
    pub fn solve_for_x(&self, y: f64) -> Result<f64, StatsError> {
        if self.slope.abs() < 1e-12 {
            return Err(StatsError::Singular);
        }
        Ok((y - self.intercept) / self.slope)
    }

    /// Residuals `y_i - ŷ_i` for the given data.
    ///
    /// # Errors
    ///
    /// Propagates the same input validation errors as [`LinearFit::fit`].
    pub fn residuals(&self, xs: &[f64], ys: &[f64]) -> Result<Vec<f64>, StatsError> {
        check_paired(xs, ys)?;
        Ok(xs.iter().zip(ys).map(|(&x, &y)| y - self.predict(x)).collect())
    }
}

impl std::fmt::Display for LinearFit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "y = {:.4}*x + {:.3}  (R^2 = {:.3}, N = {})",
            self.slope, self.intercept, self.r_squared, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.99 && fit.r_squared < 1.0);
    }

    #[test]
    fn fit_paired_is_bit_identical_to_fit() {
        let pairs: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let x = 100.0 + ((i * 37) % 61) as f64 * 3.7;
                (x, 0.028 * x + 1.37 + ((i * 13) % 7) as f64 * 0.09)
            })
            .collect();
        let xs: Vec<f64> = pairs.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = pairs.iter().map(|&(_, y)| y).collect();
        let split = LinearFit::fit(&xs, &ys).unwrap();
        let paired = LinearFit::fit_paired(&pairs).unwrap();
        assert_eq!(split, paired, "same accumulation order ⇒ same bits");
    }

    #[test]
    fn fit_paired_validates_like_fit() {
        assert_eq!(LinearFit::fit_paired(&[]).unwrap_err(), StatsError::EmptyInput);
        assert_eq!(
            LinearFit::fit_paired(&[(1.0, 1.0)]).unwrap_err(),
            StatsError::InsufficientData { needed: 2, got: 1 }
        );
        assert_eq!(
            LinearFit::fit_paired(&[(f64::NAN, 1.0), (1.0, 2.0)]).unwrap_err(),
            StatsError::NonFinite
        );
        assert_eq!(
            LinearFit::fit_paired(&[(2.0, 1.0), (2.0, 3.0)]).unwrap_err(),
            StatsError::Singular
        );
    }

    #[test]
    fn constant_x_is_singular() {
        assert_eq!(
            LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            StatsError::Singular
        );
    }

    #[test]
    fn constant_y_r2_is_one() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn one_point_insufficient() {
        assert_eq!(
            LinearFit::fit(&[1.0], &[1.0]).unwrap_err(),
            StatsError::InsufficientData { needed: 2, got: 1 }
        );
    }

    #[test]
    fn solve_for_x_inverts_predict() {
        let fit = LinearFit::fit(&[0.0, 100.0], &[1.37, 4.17]).unwrap();
        let x = fit.solve_for_x(fit.predict(540.0)).unwrap();
        assert!((x - 540.0).abs() < 1e-9);
    }

    #[test]
    fn solve_for_x_flat_line_errors() {
        let fit = LinearFit { slope: 0.0, intercept: 5.0, r_squared: 1.0, n: 2 };
        assert_eq!(fit.solve_for_x(7.0).unwrap_err(), StatsError::Singular);
    }

    #[test]
    fn residuals_sum_near_zero() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + 3.0 + (x * 0.7).sin()).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        let r = fit.residuals(&xs, &ys).unwrap();
        let sum: f64 = r.iter().sum();
        assert!(sum.abs() < 1e-9, "OLS residuals must sum to ~0, got {sum}");
    }

    #[test]
    fn paper_pool_b_shape() {
        // Synthesise points from the paper's pool-B fit and recover it.
        let xs: Vec<f64> = (50..700).step_by(10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.028 * x + 1.37).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 0.028).abs() < 1e-9);
        assert!((fit.intercept - 1.37).abs() < 1e-9);
        // Paper: predicted 16.5% CPU at 540 RPS/server.
        assert!((fit.predict(540.0) - 16.49).abs() < 0.1);
    }

    #[test]
    fn display_format() {
        let fit = LinearFit { slope: 0.028, intercept: 1.37, r_squared: 0.984, n: 1221 };
        let s = fit.to_string();
        assert!(s.contains("0.0280"));
        assert!(s.contains("N = 1221"));
    }
}
