//! Property-based tests for the statistics substrate invariants.

use headroom_stats::histogram::{Ecdf, Histogram};
use headroom_stats::kmeans::{kmeans, KMeansConfig};
use headroom_stats::percentile::{percentile, PercentileProfile};
use headroom_stats::polyfit::Polynomial;
use headroom_stats::quantile_stream::P2Quantile;
use headroom_stats::{LinearFit, MonotonicMaxDeque, OrderStatsMultiset, StreamingQuadFit, Summary};
use proptest::prelude::*;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, min_len..200)
}

proptest! {
    #[test]
    fn summary_mean_within_min_max(values in finite_vec(1)) {
        let s = Summary::from_slice(&values).unwrap();
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.sample_variance() >= 0.0);
    }

    #[test]
    fn summary_merge_matches_sequential(
        a in finite_vec(1),
        b in finite_vec(1),
    ) {
        let mut merged = Summary::from_slice(&a).unwrap();
        merged.merge(&Summary::from_slice(&b).unwrap());
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let seq = Summary::from_slice(&all).unwrap();
        prop_assert_eq!(merged.count(), seq.count());
        prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6 * (1.0 + seq.mean().abs()));
    }

    #[test]
    fn percentile_is_monotone_in_p(values in finite_vec(1), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&values, lo).unwrap();
        let b = percentile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn percentile_within_range(values in finite_vec(1), p in 0.0f64..100.0) {
        let v = percentile(&values, p).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn profile_features_sorted(values in finite_vec(2)) {
        let p = PercentileProfile::from_values(&values).unwrap();
        let f = p.as_features();
        for w in f.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn linreg_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 3usize..50,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    #[test]
    fn linreg_r2_in_unit_interval(xs in finite_vec(3), noise in finite_vec(3)) {
        let n = xs.len().min(noise.len());
        let xs = &xs[..n];
        let ys: Vec<f64> = xs.iter().zip(&noise[..n]).map(|(x, e)| x + e * 0.001).collect();
        if let Ok(fit) = LinearFit::fit(xs, &ys) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r_squared));
        }
    }

    #[test]
    fn polyfit_r2_in_unit_interval(values in finite_vec(4)) {
        let xs: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        if let Ok(fit) = Polynomial::fit(&xs, &values, 2) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r_squared));
        }
    }

    #[test]
    fn polyfit_interpolates_three_points(
        y0 in -100.0f64..100.0,
        y1 in -100.0f64..100.0,
        y2 in -100.0f64..100.0,
    ) {
        let xs = [0.0, 1.0, 2.0];
        let ys = [y0, y1, y2];
        let fit = Polynomial::fit(&xs, &ys, 2).unwrap();
        for i in 0..3 {
            prop_assert!((fit.predict(xs[i]) - ys[i]).abs() < 1e-5 * (1.0 + ys[i].abs()));
        }
    }

    #[test]
    fn histogram_total_matches_adds(values in finite_vec(1)) {
        let mut h = Histogram::new(-1e6, 1e6, 32).unwrap();
        h.add_all(&values);
        prop_assert_eq!(h.total(), values.len() as u64);
        let s: f64 = h.fractions().iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ecdf_bounds(values in finite_vec(1), probe in -1e6f64..1e6) {
        let cdf = Ecdf::from_values(&values).unwrap();
        let f = cdf.fraction_at_or_below(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(cdf.fraction_at_or_below(max), 1.0);
    }

    #[test]
    fn p2_estimate_within_observed_range(values in finite_vec(1), q in 0.01f64..0.99) {
        let mut est = P2Quantile::new(q).unwrap();
        for &v in &values {
            est.observe(v);
        }
        let e = est.estimate().unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e >= min - 1e-9 && e <= max + 1e-9);
    }

    #[test]
    fn kmeans_assignments_valid(
        raw in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 4..40),
        k in 1usize..4,
    ) {
        let points: Vec<Vec<f64>> = raw.iter().map(|&(a, b)| vec![a, b]).collect();
        prop_assume!(k <= points.len());
        let r = kmeans(&points, &KMeansConfig::new(k)).unwrap();
        prop_assert_eq!(r.assignments.len(), points.len());
        for &a in &r.assignments {
            prop_assert!(a < k);
        }
        prop_assert!(r.inertia >= 0.0);
    }
}

proptest! {
    /// Under any random insert/evict sequence, the order-statistics multiset
    /// reproduces the sort-based percentile to 1e-12 (it is in fact
    /// bit-identical; the tolerance is the satellite acceptance bound).
    #[test]
    fn order_stats_matches_sort_based_percentile(
        values in prop::collection::vec(0.0f64..1e5, 2..250),
        window in 2usize..60,
        p in 0.0f64..100.0,
    ) {
        let mut set = OrderStatsMultiset::new();
        let mut live: Vec<f64> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            set.insert(v);
            live.push(v);
            if live.len() > window {
                let evicted = live.remove(0);
                prop_assert!(set.remove(evicted));
            }
            if i % 7 == 0 {
                let expect = percentile(&live, p).unwrap();
                let got = set.percentile(p).unwrap();
                prop_assert!(
                    (got - expect).abs() <= 1e-12 * (1.0 + expect.abs()),
                    "p{} after {} ops: {} vs {}", p, i, got, expect
                );
                // p99 specifically is the planner's peak query.
                let p99 = set.percentile(99.0).unwrap();
                let p99_sorted = percentile(&live, 99.0).unwrap();
                prop_assert!(p99 == p99_sorted, "p99 {} vs {}", p99, p99_sorted);
            }
        }
        prop_assert_eq!(set.len(), live.len());
    }

    /// The monotonic deque agrees with a full scan max at every step of a
    /// sliding window.
    #[test]
    fn monotonic_deque_matches_scan_max(
        values in prop::collection::vec(0usize..1000, 2..200),
        window in 1usize..40,
    ) {
        let mut deque = MonotonicMaxDeque::new();
        let mut live: Vec<usize> = Vec::new();
        for &v in &values {
            deque.push(v);
            live.push(v);
            if live.len() > window {
                let evicted = live.remove(0);
                deque.evict(evicted);
            }
            prop_assert_eq!(deque.max(), live.iter().copied().max());
        }
    }

    /// Splitting a stream at any point and merging the two quadratic
    /// accumulators reproduces the single-stream sums (within rounding).
    #[test]
    fn quadfit_merge_matches_single_stream(
        pairs in prop::collection::vec((10.0f64..2_000.0, -100.0f64..100.0), 6..150),
        split_at in 1usize..100,
    ) {
        let split = split_at.min(pairs.len() - 1);
        let mut whole = StreamingQuadFit::new();
        let mut left = StreamingQuadFit::new();
        let mut right = StreamingQuadFit::new();
        for (i, &(x, y)) in pairs.iter().enumerate() {
            whole.push(x, y);
            if i < split { left.push(x, y) } else { right.push(x, y) }
        }
        left.merge(&right);
        prop_assert_eq!(left.len(), whole.len());
        match (left.fit(), whole.fit()) {
            (Ok((pm, rm)), Ok((ps, rs))) => {
                for (m, s) in pm.coeffs().iter().zip(ps.coeffs()) {
                    prop_assert!(
                        (m - s).abs() <= 1e-5 * (1.0 + s.abs()),
                        "coeff {} vs {}", m, s
                    );
                }
                prop_assert!((rm - rs).abs() <= 1e-5);
            }
            (Err(_), Err(_)) => {}
            (m, s) => prop_assert!(false, "verdicts differ: {:?} vs {:?}", m, s),
        }
    }
}
