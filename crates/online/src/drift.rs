//! Response-profile drift detection.
//!
//! A streaming planner's fitted curves embody an assumption: the pool's
//! workload→resource response is stationary. A release that changes CPU per
//! request, or a hardware swap, silently invalidates every window observed
//! before the change — averaging across the change-point produces a fit
//! describing *neither* regime. [`DriftDetector`] watches a short recent
//! sub-window and fires when its response disagrees with the established
//! long-window fit, so the planner can discard the stale history.
//!
//! Two signals are checked:
//!
//! - **level**: mean response in the short window vs the long fit's
//!   prediction at the short window's mean workload — catches shifts even
//!   when the short window spans little workload range (e.g. overnight);
//! - **slope**: the short window's own fitted slope vs the long fit's —
//!   checked only when the short window has enough workload spread for its
//!   slope to be trustworthy, so flat overnight traffic cannot false-fire.

use headroom_stats::persist::{Persist, PersistError, Reader, Writer};
use headroom_stats::{LinearFit, StreamingLinReg};

/// Drift-detector tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Windows in the recent sub-window (default 90 ≈ 3 hours).
    pub short_window: usize,
    /// Minimum observations the *reference* fit must rest on before drift
    /// is evaluated (default 240 ≈ 8 hours).
    pub min_reference: usize,
    /// Relative slope disagreement that fires (default 0.35).
    pub slope_tolerance: f64,
    /// Relative level disagreement that fires (default 0.20).
    pub level_tolerance: f64,
    /// stddev(x)/|mean(x)| in the short window must reach this fraction
    /// before its fitted slope is trusted (default 0.15) — flat overnight
    /// traffic stays well below it, a diurnal sweep well above.
    pub min_spread_fraction: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            short_window: 90,
            min_reference: 240,
            slope_tolerance: 0.35,
            level_tolerance: 0.20,
            min_spread_fraction: 0.15,
        }
    }
}

/// Which signal disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Mean response shifted away from the reference prediction.
    Level,
    /// The response slope itself changed.
    Slope,
}

/// A detected change-point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// Which signal fired.
    pub kind: DriftKind,
    /// Value observed in the recent sub-window.
    pub observed: f64,
    /// Value the reference fit expected.
    pub expected: f64,
}

impl DriftEvent {
    /// |observed − expected| / |expected|.
    pub fn relative_deviation(&self) -> f64 {
        if self.expected == 0.0 {
            return if self.observed == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (self.observed - self.expected).abs() / self.expected.abs()
    }
}

/// Streaming change-point detector over an (x, y) response relationship.
///
/// The detector holds only the short sub-window's *accumulator* — the ring
/// of raw (x, y) pairs that backs it lives with the caller (in the planner,
/// the drift sub-window plane of [`crate::store::ShardStore`]). Feed every
/// observation with [`observe`], handing over whichever pair the caller's
/// ring evicted to make room; compare against the established fit with
/// [`check`]. The long-window reference is whatever fit the caller
/// maintains (typically a [`StreamingLinReg`] over the full sliding
/// window).
///
/// [`observe`]: DriftDetector::observe
/// [`check`]: DriftDetector::check
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDetector {
    config: DriftConfig,
    /// Saturating ring-fill counter: pushes seen before the caller's ring
    /// first wrapped. Counts *every* push — including non-finite pairs the
    /// accumulator ignores — exactly as the old in-detector ring's
    /// `is_full()` did, so corrupt telemetry cannot stall the fill gate.
    filled: usize,
    short: StreamingLinReg,
}

impl DriftDetector {
    /// A detector with the given tuning.
    pub fn new(config: DriftConfig) -> Self {
        DriftDetector { config, filled: 0, short: StreamingLinReg::new() }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Feeds one observation into the recent sub-window.
    ///
    /// `evicted` is the pair the caller's ring (of capacity
    /// `short_window.max(2)`) displaced to admit this one — `None` while
    /// the ring is still filling.
    pub fn observe(&mut self, x: f64, y: f64, evicted: Option<(f64, f64)>) {
        if let Some((ox, oy)) = evicted {
            self.short.remove(ox, oy);
        } else {
            self.filled += 1;
        }
        self.short.push(x, y);
    }

    /// Evaluates the recent sub-window against `reference` (a fit over
    /// `reference_n` observations). Returns the drift event, if any.
    ///
    /// The short window must be full and the reference seasoned
    /// (`min_reference`); otherwise no verdict is reached.
    pub fn check(&self, reference: &LinearFit, reference_n: usize) -> Option<DriftEvent> {
        if self.filled < self.config.short_window.max(2) || reference_n < self.config.min_reference
        {
            return None;
        }
        // Level: mean observed response vs the reference's prediction at the
        // same mean workload.
        let expected = reference.predict(self.short.mean_x());
        let observed = self.short.mean_y();
        if expected.abs() > 1e-9 {
            let dev = (observed - expected).abs() / expected.abs();
            if dev > self.config.level_tolerance {
                return Some(DriftEvent { kind: DriftKind::Level, observed, expected });
            }
        }
        // Slope: only with enough workload spread to estimate one. Flat
        // overnight traffic has stddev(x) ≪ mean(x): its fitted slope is
        // noise amplified, so it is not compared.
        if let Ok(short_fit) = self.short.fit() {
            let spread_floor = self.config.min_spread_fraction * self.short.mean_x().abs();
            let spread_ok = self.short.variance_x().sqrt() >= spread_floor;
            if spread_ok && reference.slope.abs() > 1e-9 {
                let dev = (short_fit.slope - reference.slope).abs() / reference.slope.abs();
                if dev > self.config.slope_tolerance {
                    return Some(DriftEvent {
                        kind: DriftKind::Slope,
                        observed: short_fit.slope,
                        expected: reference.slope,
                    });
                }
            }
        }
        None
    }

    /// Resets the recent sub-window (after the caller handled a drift; the
    /// caller clears its backing ring in the same breath).
    pub fn reset(&mut self) {
        self.short.clear();
        self.filled = 0;
    }
}

impl Persist for DriftConfig {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.short_window);
        w.put_usize(self.min_reference);
        w.put_f64(self.slope_tolerance);
        w.put_f64(self.level_tolerance);
        w.put_f64(self.min_spread_fraction);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(DriftConfig {
            short_window: r.take_usize()?,
            min_reference: r.take_usize()?,
            slope_tolerance: r.take_f64()?,
            level_tolerance: r.take_f64()?,
            min_spread_fraction: r.take_f64()?,
        })
    }
}

impl Persist for DriftDetector {
    fn persist(&self, w: &mut Writer) {
        self.config.persist(w);
        w.put_usize(self.filled);
        self.short.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(DriftDetector {
            config: DriftConfig::restore(r)?,
            filled: r.take_usize()?,
            short: StreamingLinReg::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::collections::VecDeque;

    use super::*;

    fn reference() -> LinearFit {
        LinearFit { slope: 0.028, intercept: 1.37, r_squared: 0.98, n: 720 }
    }

    /// Plays the caller's role: keeps the backing ring the detector's
    /// accumulator now expects evictions from (in production this ring is a
    /// store plane lane).
    fn feed(
        det: &mut DriftDetector,
        ring: &mut VecDeque<(f64, f64)>,
        slope: f64,
        intercept: f64,
        jitter: f64,
        n: usize,
    ) {
        let cap = det.config().short_window.max(2);
        for i in 0..n {
            let x = 200.0 + (i % 60) as f64 * 5.0;
            let noise = (((i * 31) % 13) as f64 - 6.0) * jitter;
            let y = slope * x + intercept + noise;
            let evicted = if ring.len() == cap { ring.pop_front() } else { None };
            ring.push_back((x, y));
            det.observe(x, y, evicted);
        }
    }

    #[test]
    fn stationary_noise_does_not_fire() {
        let mut det = DriftDetector::new(DriftConfig::default());
        let mut ring = VecDeque::new();
        feed(&mut det, &mut ring, 0.028, 1.37, 0.02, 400);
        assert_eq!(det.check(&reference(), 720), None);
    }

    #[test]
    fn level_shift_fires() {
        let mut det = DriftDetector::new(DriftConfig::default());
        let mut ring = VecDeque::new();
        // A release doubles per-request CPU: the level jumps well past 20%.
        feed(&mut det, &mut ring, 0.056, 1.37, 0.02, 120);
        let event = det.check(&reference(), 720).expect("drift detected");
        assert_eq!(event.kind, DriftKind::Level);
        assert!(event.relative_deviation() > 0.2);
    }

    #[test]
    fn slope_change_with_compensating_intercept_fires() {
        let mut det = DriftDetector::new(DriftConfig::default());
        let mut ring = VecDeque::new();
        // Slope rises 60% but the intercept drops so the *mean* level stays
        // put — only the slope check can catch this.
        let slope = 0.028 * 1.6;
        let mean_x = 200.0 + 29.5 * 5.0; // matches feed()'s x pattern
        let intercept = (0.028 * mean_x + 1.37) - slope * mean_x;
        feed(&mut det, &mut ring, slope, intercept, 0.02, 120);
        let event = det.check(&reference(), 720).expect("drift detected");
        assert_eq!(event.kind, DriftKind::Slope);
    }

    #[test]
    fn no_verdict_before_windows_fill() {
        let mut det = DriftDetector::new(DriftConfig::default());
        let mut ring = VecDeque::new();
        feed(&mut det, &mut ring, 0.1, 0.0, 0.0, 30); // far off, but window not full
        assert_eq!(det.check(&reference(), 720), None);
        // Full window but unseasoned reference.
        feed(&mut det, &mut ring, 0.1, 0.0, 0.0, 90);
        assert_eq!(det.check(&reference(), 10), None);
    }

    #[test]
    fn reset_clears_the_window() {
        let mut det = DriftDetector::new(DriftConfig::default());
        let mut ring = VecDeque::new();
        feed(&mut det, &mut ring, 0.056, 1.37, 0.0, 120);
        assert!(det.check(&reference(), 720).is_some());
        det.reset();
        ring.clear(); // the caller clears its ring alongside reset()
        assert_eq!(det.check(&reference(), 720), None);
    }
}
