//! The slot-major shard-state store.
//!
//! [`crate::shard::PoolShard`] used to own four small heap side buffers —
//! the aggregate ring, the sorted totals window, the drift sub-window, and
//! the allocation max-deque. At fleet scale that layout is the bottleneck:
//! a steady-state sweep touches 3–4 scattered heap objects per pool per
//! window, and BENCH_sweep.json showed the 16384-pool per-pool cost at ~2×
//! the 512-pool figure from those dependent cache/TLB misses alone.
//!
//! [`ShardStore`] hoists all four buffers into engine-owned planes
//! ([`headroom_stats::plane`]): the aggregate ring and drift sub-window as
//! slot-major [`RingPlane`]s (all pools' slot-k entries contiguous — the
//! lockstep steady state streams them), the totals window and allocation
//! deque as lane-major segments. A pool's *lane* is its position in the
//! engine's pool-sorted shard list; pool arrivals rebuild the planes under
//! an old→new lane mapping ([`ShardStore::remap`]), and steady-state
//! windows never allocate.
//!
//! Shards reach their lane through the [`ShardLane`] trait, which has two
//! backends:
//!
//! - [`LaneView`] — a raw, lane-disjoint view into the shared store. The
//!   sweep engine hands each worker chunk a contiguous lane range of the
//!   same [`StoreView`]; thread-affinity falls out of the chunk geometry
//!   (a pool's planes are always touched by the worker that owns its
//!   chunk). This is the only `unsafe` in the crate, scoped to the `view`
//!   module and justified the same way `headroom_exec`'s chunk hand-off
//!   is: chunk lane ranges are pairwise disjoint and the dispatch outlives
//!   the borrow.
//! - [`OwnedLane`] — the original per-pool heap buffers, kept as the
//!   *reference* backend: property tests drive both backends through the
//!   identical generic shard code and assert bit-identical results.
//!
//! Both backends implement the exact semantics of the structures they
//! replaced (FIFO ring, [`headroom_stats::SortedWindow`],
//! [`headroom_stats::MonotonicMaxDeque`]), so swapping the storage layout
//! changes no planner output — the engine's bit-identity contract over
//! threads, exec modes, and checkpoint round-trips is preserved.

use headroom_stats::persist::{PersistError, Reader, Writer};
use headroom_stats::plane::{DequePlane, RingCursors, RingPlane, SortedPlane};
use headroom_stats::{MonotonicMaxDeque, SortedWindow};
use headroom_telemetry::time::WindowIndex;

use crate::planner::PoolWindowAggregate;
use crate::ring::RingWindow;

/// One pool's window-state buffers, however they are stored.
///
/// [`crate::shard::PoolShard`] is generic over this trait: the production
/// path passes a [`LaneView`] into the shared [`ShardStore`], tests can
/// pass an [`OwnedLane`]. Implementations must agree bit-for-bit — the
/// store proptests pin them against each other.
pub trait ShardLane {
    /// Aggregate windows currently held.
    fn agg_len(&self) -> usize;

    /// Pushes one window aggregate into the ring, returning the evicted
    /// aggregate when the ring was full. The evicted value's `window` field
    /// is not meaningful (the plane backend does not store it); callers
    /// only read the counter fields.
    fn agg_push(&mut self, agg: &PoolWindowAggregate) -> Option<PoolWindowAggregate>;

    /// Adds one value to the sorted totals window (non-finite ignored).
    fn totals_insert(&mut self, v: f64);

    /// Removes one occurrence of `v` from the totals window.
    fn totals_remove(&mut self, v: f64) -> bool;

    /// Replaces `old` with `new` in the totals window: exactly
    /// [`totals_remove`]`(old)` then [`totals_insert`]`(new)`, which
    /// backends fuse into one pass over the sorted segment — the
    /// steady-state shape, where every arriving window also evicts one.
    ///
    /// [`totals_remove`]: ShardLane::totals_remove
    /// [`totals_insert`]: ShardLane::totals_insert
    fn totals_replace(&mut self, old: f64, new: f64) -> bool {
        let removed = self.totals_remove(old);
        self.totals_insert(new);
        removed
    }

    /// The `p`-th percentile of the totals window, `None` when empty or
    /// `p` is outside `0..=100`.
    fn totals_percentile(&self, p: f64) -> Option<f64>;

    /// Feeds the allocation entering the window into the max-deque.
    fn alloc_push(&mut self, servers: usize);

    /// Feeds the allocation leaving the window.
    fn alloc_evict(&mut self, servers: usize);

    /// The maximum allocation over the window.
    fn alloc_max(&self) -> Option<usize>;

    /// Pushes one (x, y) pair into the drift sub-window ring, returning the
    /// evicted pair when it was full.
    fn drift_push(&mut self, x: f64, y: f64) -> Option<(f64, f64)>;

    /// Empties every buffer (the drift-reset path).
    fn clear(&mut self);
}

/// Aggregate counters stored per (slot, lane) cell of the fused aggregate
/// plane. `window` is deliberately not stored: an evicted aggregate's window
/// index is never read, so the plane store drops it (and checkpoints shrink
/// by one u64 per held window).
const AGG_FIELDS: usize = 7;

/// (x, y) pair width of the fused drift plane.
const DRIFT_FIELDS: usize = 2;

/// Expands an old-lane → new-lane mapping to the sub-lane mapping of a
/// plane that packs `fields` values per lane.
fn expand_mapping(mapping: &[usize], fields: usize) -> Vec<usize> {
    mapping.iter().flat_map(|&new| (0..fields).map(move |k| new * fields + k)).collect()
}

/// The engine-owned slot-major store backing every pool's side buffers.
///
/// Lane `l` is the pool at position `l` of the engine's pool-sorted shard
/// list. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct ShardStore {
    window_cap: usize,
    drift_cap: usize,
    /// Shared cursors for the fused aggregate plane (one set per lane; the
    /// cursor arithmetic is paid once per push).
    agg: RingCursors,
    /// One [`RingPlane`] with [`AGG_FIELDS`] sub-lanes per pool lane, so a
    /// pool's seven counters for one slot — rps_per_server, cpu_pct,
    /// latency_p95_ms, disk_queue, memory_pages_per_sec, network_mbps,
    /// active_servers (as f64) — sit in 56 contiguous bytes. Seven separate
    /// planes cost seven cache lines and seven prefetch streams per pool
    /// per window; the fused layout costs one of each.
    agg_plane: RingPlane,
    totals: SortedPlane,
    alloc: DequePlane,
    drift: RingCursors,
    /// Fused (x, y) drift plane, [`DRIFT_FIELDS`] sub-lanes per pool lane.
    drift_plane: RingPlane,
}

impl ShardStore {
    /// An empty store (no lanes yet) for rings of `window_cap` aggregates
    /// and drift sub-windows of `drift_cap` pairs.
    pub fn new(window_cap: usize, drift_cap: usize) -> Self {
        ShardStore::with_lanes(window_cap, drift_cap, 0)
    }

    /// A store with `lanes` empty lanes.
    pub fn with_lanes(window_cap: usize, drift_cap: usize, lanes: usize) -> Self {
        let window_cap = window_cap.max(1);
        let drift_cap = drift_cap.max(2);
        ShardStore {
            window_cap,
            drift_cap,
            agg: RingCursors::new(window_cap, lanes),
            agg_plane: RingPlane::new(window_cap, lanes * AGG_FIELDS),
            totals: SortedPlane::new(window_cap, lanes),
            alloc: DequePlane::new(window_cap, lanes),
            drift: RingCursors::new(drift_cap, lanes),
            drift_plane: RingPlane::new(drift_cap, lanes * DRIFT_FIELDS),
        }
    }

    /// Lanes currently held.
    pub fn lanes(&self) -> usize {
        self.agg.lanes()
    }

    /// Aggregate-ring capacity per lane.
    pub fn window_cap(&self) -> usize {
        self.window_cap
    }

    /// Rebuilds every plane under an old-lane → new-lane `mapping`
    /// (`mapping[old] = new`, strictly increasing); lanes nothing maps to
    /// start empty. Called on pool arrival — the one path that allocates.
    pub fn remap(&mut self, mapping: &[usize], new_lanes: usize) {
        self.agg = self.agg.remap(mapping, new_lanes);
        self.agg_plane =
            self.agg_plane.remap(&expand_mapping(mapping, AGG_FIELDS), new_lanes * AGG_FIELDS);
        self.totals = self.totals.remap(mapping, new_lanes);
        self.alloc = self.alloc.remap(mapping, new_lanes);
        self.drift = self.drift.remap(mapping, new_lanes);
        self.drift_plane = self
            .drift_plane
            .remap(&expand_mapping(mapping, DRIFT_FIELDS), new_lanes * DRIFT_FIELDS);
    }

    /// Serializes one lane's buffers in canonical logical order (rings
    /// oldest→newest with the physical start normalized away), so the bytes
    /// are a pure function of logical state — the checkpoint determinism
    /// contract.
    pub fn persist_lane(&self, lane: usize, w: &mut Writer) {
        let n = self.agg.len(lane);
        w.put_u32(n as u32);
        for i in 0..n {
            let slot = self.agg.slot_of(lane, i);
            for k in 0..AGG_FIELDS {
                w.put_f64(self.agg_plane.get(slot, lane * AGG_FIELDS + k));
            }
        }
        let t = self.totals.len(lane);
        w.put_u32(t as u32);
        for &v in self.totals.as_slice(lane) {
            w.put_f64(v);
        }
        let a = self.alloc.len(lane);
        w.put_u32(a as u32);
        for i in 0..a {
            w.put_u64(self.alloc.get(lane, i));
        }
        let d = self.drift.len(lane);
        w.put_u32(d as u32);
        for i in 0..d {
            let slot = self.drift.slot_of(lane, i);
            w.put_f64(self.drift_plane.get(slot, lane * DRIFT_FIELDS));
            w.put_f64(self.drift_plane.get(slot, lane * DRIFT_FIELDS + 1));
        }
    }

    /// Restores one lane from [`persist_lane`] bytes, validating every
    /// structural invariant (lengths within capacity, totals ascending and
    /// finite, deque non-increasing) before accepting.
    ///
    /// [`persist_lane`]: ShardStore::persist_lane
    pub fn restore_lane(&mut self, lane: usize, r: &mut Reader<'_>) -> Result<(), PersistError> {
        let n = r.take_u32()? as usize;
        if n > self.window_cap {
            return Err(PersistError::Invalid("aggregate ring length exceeds capacity"));
        }
        for i in 0..n {
            for k in 0..AGG_FIELDS {
                self.agg_plane.set(i, lane * AGG_FIELDS + k, r.take_f64()?);
            }
        }
        if !self.agg.restore_lane(lane, n) {
            return Err(PersistError::Invalid("aggregate ring length exceeds capacity"));
        }

        let t = r.take_u32()? as usize;
        if t > self.window_cap {
            return Err(PersistError::Invalid("totals window length exceeds capacity"));
        }
        let mut totals = Vec::with_capacity(t);
        for _ in 0..t {
            totals.push(r.take_f64()?);
        }
        if !self.totals.restore_lane(lane, &totals) {
            return Err(PersistError::Invalid("totals window values not finite ascending"));
        }

        let a = r.take_u32()? as usize;
        if a > self.window_cap {
            return Err(PersistError::Invalid("allocation deque length exceeds capacity"));
        }
        let mut alloc = Vec::with_capacity(a);
        for _ in 0..a {
            alloc.push(r.take_u64()?);
        }
        if !self.alloc.restore_lane(lane, &alloc) {
            return Err(PersistError::Invalid("allocation deque not non-increasing"));
        }

        let d = r.take_u32()? as usize;
        if d > self.drift_cap {
            return Err(PersistError::Invalid("drift sub-window length exceeds capacity"));
        }
        for i in 0..d {
            self.drift_plane.set(i, lane * DRIFT_FIELDS, r.take_f64()?);
            self.drift_plane.set(i, lane * DRIFT_FIELDS + 1, r.take_f64()?);
        }
        if !self.drift.restore_lane(lane, d) {
            return Err(PersistError::Invalid("drift sub-window length exceeds capacity"));
        }
        Ok(())
    }

    /// A raw lane-addressed view over every plane. See [`StoreView`] for
    /// the aliasing contract.
    pub fn view(&mut self) -> StoreView {
        StoreView::new(self)
    }
}

/// The original per-pool heap buffers as a [`ShardLane`] backend.
///
/// This is the *reference* implementation the plane store is pinned
/// against: the store proptests drive a sequential engine of `OwnedLane`s
/// and a parallel [`StoreView`] engine through identical inputs and assert
/// bit-identical outputs. It is not used on the production path.
#[derive(Debug, Clone)]
pub struct OwnedLane {
    window: RingWindow<PoolWindowAggregate>,
    totals: SortedWindow,
    alloc: MonotonicMaxDeque<usize>,
    drift: RingWindow<(f64, f64)>,
}

impl OwnedLane {
    /// Empty buffers with the same capacities a [`ShardStore`] lane has.
    pub fn new(window_cap: usize, drift_cap: usize) -> Self {
        OwnedLane {
            window: RingWindow::new(window_cap.max(1)),
            totals: SortedWindow::with_capacity(window_cap),
            alloc: MonotonicMaxDeque::new(),
            drift: RingWindow::new(drift_cap.max(2)),
        }
    }
}

impl ShardLane for OwnedLane {
    fn agg_len(&self) -> usize {
        self.window.len()
    }

    fn agg_push(&mut self, agg: &PoolWindowAggregate) -> Option<PoolWindowAggregate> {
        self.window.push(*agg)
    }

    fn totals_insert(&mut self, v: f64) {
        self.totals.insert(v);
    }

    fn totals_remove(&mut self, v: f64) -> bool {
        self.totals.remove(v)
    }

    fn totals_percentile(&self, p: f64) -> Option<f64> {
        self.totals.percentile(p).ok()
    }

    fn alloc_push(&mut self, servers: usize) {
        self.alloc.push(servers);
    }

    fn alloc_evict(&mut self, servers: usize) {
        self.alloc.evict(servers);
    }

    fn alloc_max(&self) -> Option<usize> {
        self.alloc.max()
    }

    fn drift_push(&mut self, x: f64, y: f64) -> Option<(f64, f64)> {
        self.drift.push((x, y))
    }

    fn clear(&mut self) {
        self.window.clear();
        self.totals.clear();
        self.alloc.clear();
        self.drift.clear();
    }
}

/// Reusable per-chunk scratch for the pass-structured window: the inputs
/// and evictions one pass produces and a later pass consumes, packed as
/// dense flag + value arrays indexed by lane *within the pass range*.
///
/// Owned by the sweep engine's per-chunk output slot and resized once to
/// the pass-tile width — steady-state windows reuse the storage and
/// allocate nothing (the counting-allocator gate covers this path).
#[derive(Debug, Clone, Default)]
pub struct PassScratch {
    /// Lanes of the range that have an input this window.
    present: Vec<bool>,
    /// The arriving aggregate per present lane.
    aggs: Vec<PoolWindowAggregate>,
    /// Physical ring slot each present lane's aggregate push writes.
    slots: Vec<u32>,
    /// Whether that push evicted the lane's oldest aggregate.
    evicting: Vec<bool>,
    /// The evicted aggregate per evicting lane (`window` not meaningful,
    /// as with [`ShardLane::agg_push`]).
    evicted: Vec<PoolWindowAggregate>,
    /// Drift-ring analogues of `slots`/`evicting`/`evicted`.
    drift_slots: Vec<u32>,
    drift_evicting: Vec<bool>,
    drift_evicted: Vec<(f64, f64)>,
    /// Streamed-tile kernel outputs: one pool's metric columns, evaluated
    /// by the sim-kernel pass and consumed by the aggregate pass while
    /// still cache-resident — the whole point of the streamed pipeline.
    /// Sized to the largest pool seen (never shrunk), untouched by
    /// [`PassScratch::reset`].
    kernel_cpu: Vec<f64>,
    kernel_lat_avg: Vec<f64>,
    kernel_lat_p95: Vec<f64>,
    kernel_disk: Vec<f64>,
    kernel_pages: Vec<f64>,
    kernel_net: Vec<f64>,
}

/// An all-zero aggregate used to back scratch slots whose flag is unset.
const ZERO_AGG: PoolWindowAggregate = PoolWindowAggregate {
    window: WindowIndex(0),
    rps_per_server: 0.0,
    cpu_pct: 0.0,
    latency_p95_ms: 0.0,
    disk_queue: 0.0,
    memory_pages_per_sec: 0.0,
    network_mbps: 0.0,
    active_servers: 0,
};

impl PassScratch {
    /// Empties the scratch and sizes every array for a range of `lanes`.
    /// Allocation-free once capacity is established.
    pub fn reset(&mut self, lanes: usize) {
        self.present.clear();
        self.present.resize(lanes, false);
        self.aggs.resize(lanes, ZERO_AGG);
        self.slots.resize(lanes, 0);
        self.evicting.clear();
        self.evicting.resize(lanes, false);
        self.evicted.resize(lanes, ZERO_AGG);
        self.drift_slots.resize(lanes, 0);
        self.drift_evicting.clear();
        self.drift_evicting.resize(lanes, false);
        self.drift_evicted.resize(lanes, (0.0, 0.0));
    }

    /// Lanes covered by the current range.
    pub fn lanes(&self) -> usize {
        self.present.len()
    }

    /// Records range lane `i`'s arriving aggregate (pass 0).
    pub fn set_input(&mut self, i: usize, agg: PoolWindowAggregate) {
        self.present[i] = true;
        self.aggs[i] = agg;
    }

    /// Range lane `i`'s arriving aggregate, if it has one this window.
    pub fn input(&self, i: usize) -> Option<&PoolWindowAggregate> {
        self.present[i].then(|| &self.aggs[i])
    }

    /// The aggregate lane `i`'s ring push evicted, if any (pass 1 output).
    pub fn evicted(&self, i: usize) -> Option<&PoolWindowAggregate> {
        self.evicting[i].then(|| &self.evicted[i])
    }

    /// The pair lane `i`'s drift push evicted, if any (pass 4 output).
    pub fn drift_evicted(&self, i: usize) -> Option<(f64, f64)> {
        self.drift_evicting[i].then(|| self.drift_evicted[i])
    }

    /// The streamed-tile kernel output buffers, each sized to `len` lanes
    /// (one pool's slice), in `(cpu, latency_avg, latency_p95, disk_queue,
    /// memory_pages_per_sec, network_mbps)` order. Contents are
    /// uninitialised leftovers — the kernel pass writes every lane.
    /// Allocation-free once the largest pool has established capacity.
    #[allow(clippy::type_complexity)]
    pub fn kernel_columns(
        &mut self,
        len: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        self.kernel_cpu.resize(len.max(self.kernel_cpu.len()), 0.0);
        self.kernel_lat_avg.resize(len.max(self.kernel_lat_avg.len()), 0.0);
        self.kernel_lat_p95.resize(len.max(self.kernel_lat_p95.len()), 0.0);
        self.kernel_disk.resize(len.max(self.kernel_disk.len()), 0.0);
        self.kernel_pages.resize(len.max(self.kernel_pages.len()), 0.0);
        self.kernel_net.resize(len.max(self.kernel_net.len()), 0.0);
        (
            &mut self.kernel_cpu[..len],
            &mut self.kernel_lat_avg[..len],
            &mut self.kernel_lat_p95[..len],
            &mut self.kernel_disk[..len],
            &mut self.kernel_pages[..len],
            &mut self.kernel_net[..len],
        )
    }
}

pub use view::{LaneView, StoreView};

/// The one `unsafe` corner of the crate: raw, `Copy`, `Send + Sync`
/// pointers into a [`ShardStore`], so worker chunks can drive disjoint
/// lane ranges of the shared planes without splitting borrows per plane.
#[allow(unsafe_code)]
mod view {
    use super::*;

    /// Raw pointers into every plane of one [`ShardStore`].
    ///
    /// # Safety contract
    ///
    /// This follows the same discipline as `headroom_exec`'s chunk
    /// hand-off (its `SendPtr`): the view is created from `&mut ShardStore`
    /// immediately before a sweep's fan-out and used only inside it.
    /// Soundness rests on three invariants the sweep engine upholds:
    ///
    /// - **disjoint lanes**: chunk `i` touches exactly the lanes
    ///   `[i * chunk_len, min((i + 1) * chunk_len, lanes))` — the same
    ///   pairwise-disjoint geometry `headroom_exec::chunk_len` gives the
    ///   shard slices, so no two threads ever touch the same lane;
    /// - **no concurrent safe access**: the engine does not read or write
    ///   the store through its safe API while any view is live;
    /// - **stable storage**: the planes are not resized between view
    ///   creation and last use (remap happens strictly before the fan-out).
    #[derive(Debug, Clone, Copy)]
    pub struct StoreView {
        lanes: usize,
        window_cap: usize,
        drift_cap: usize,
        agg_start: *mut u32,
        agg_len: *mut u32,
        agg: *mut f64,
        totals_len: *mut u32,
        totals: *mut f64,
        alloc_head: *mut u32,
        alloc_len: *mut u32,
        alloc: *mut u64,
        drift_start: *mut u32,
        drift_len: *mut u32,
        drift: *mut f64,
    }

    // SAFETY: the view is a bag of raw pointers; all dereferences happen
    // through LaneView under the lane-disjointness contract above, which
    // makes cross-thread use race-free.
    unsafe impl Send for StoreView {}
    // SAFETY: as above — `&StoreView` only hands out lane-scoped access.
    unsafe impl Sync for StoreView {}

    impl StoreView {
        pub(super) fn new(store: &mut ShardStore) -> StoreView {
            StoreView {
                lanes: store.lanes(),
                window_cap: store.window_cap,
                drift_cap: store.drift_cap,
                agg_start: store.agg.starts_mut().as_mut_ptr(),
                agg_len: store.agg.lens_mut().as_mut_ptr(),
                agg: store.agg_plane.data_mut().as_mut_ptr(),
                totals_len: store.totals.lens_mut().as_mut_ptr(),
                totals: store.totals.data_mut().as_mut_ptr(),
                alloc_head: store.alloc.heads_mut().as_mut_ptr(),
                alloc_len: store.alloc.lens_mut().as_mut_ptr(),
                alloc: store.alloc.data_mut().as_mut_ptr(),
                drift_start: store.drift.starts_mut().as_mut_ptr(),
                drift_len: store.drift.lens_mut().as_mut_ptr(),
                drift: store.drift_plane.data_mut().as_mut_ptr(),
            }
        }

        /// The [`ShardLane`] for one lane. The caller must uphold the
        /// lane-disjointness contract: at most one live `LaneView` per lane
        /// across all threads.
        pub fn lane(&self, lane: usize) -> LaneView {
            debug_assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
            LaneView { v: *self, lane }
        }

        /// Pass 1 of the pass-structured window: one aggregate-ring push
        /// per present lane of `[first_lane, first_lane + scratch.lanes())`,
        /// evicted aggregates recorded in the scratch. Per-lane semantics
        /// are exactly [`ShardLane::agg_push`]; the batched shape runs the
        /// cursor kernel over the range's contiguous cursor slices and then
        /// streams the cell exchange (in the lockstep steady state every
        /// present lane writes the same slot row, so consecutive lanes hit
        /// consecutive cells).
        ///
        /// The caller must own the lane range exclusively, exactly as with
        /// [`StoreView::lane`].
        pub fn pass_agg_push(&self, first_lane: usize, scratch: &mut PassScratch) {
            let n = scratch.lanes();
            debug_assert!(first_lane + n <= self.lanes, "pass range exceeds store lanes");
            let lanes = self.lanes;
            // SAFETY: lane-disjointness puts the range's cursor words and
            // every touched (slot, lane) cell under this caller's exclusive
            // ownership; evicted cells are read before being overwritten.
            unsafe {
                let starts = std::slice::from_raw_parts_mut(self.agg_start.add(first_lane), n);
                let lens = std::slice::from_raw_parts_mut(self.agg_len.add(first_lane), n);
                headroom_stats::plane::ring_push_slots(
                    self.window_cap as u32,
                    starts,
                    lens,
                    &scratch.present,
                    &mut scratch.slots,
                    &mut scratch.evicting,
                );
                for i in 0..n {
                    if !scratch.present[i] {
                        continue;
                    }
                    let lane = first_lane + i;
                    let cell =
                        self.agg.add((scratch.slots[i] as usize * lanes + lane) * AGG_FIELDS);
                    if scratch.evicting[i] {
                        scratch.evicted[i] = PoolWindowAggregate {
                            window: WindowIndex(0),
                            rps_per_server: *cell,
                            cpu_pct: *cell.add(1),
                            latency_p95_ms: *cell.add(2),
                            disk_queue: *cell.add(3),
                            memory_pages_per_sec: *cell.add(4),
                            network_mbps: *cell.add(5),
                            active_servers: *cell.add(6) as usize,
                        };
                    }
                    let a = &scratch.aggs[i];
                    *cell = a.rps_per_server;
                    *cell.add(1) = a.cpu_pct;
                    *cell.add(2) = a.latency_p95_ms;
                    *cell.add(3) = a.disk_queue;
                    *cell.add(4) = a.memory_pages_per_sec;
                    *cell.add(5) = a.network_mbps;
                    *cell.add(6) = a.active_servers as f64;
                }
            }
        }

        /// Pass 2: totals replace/insert across every present lane's sorted
        /// segment — [`ShardLane::totals_replace`] when pass 1 evicted,
        /// [`ShardLane::totals_insert`] otherwise, per lane. One streaming
        /// walk over the lane-major totals plane.
        pub fn pass_totals(&self, first_lane: usize, scratch: &PassScratch) {
            for i in 0..scratch.lanes() {
                if !scratch.present[i] {
                    continue;
                }
                let lane = first_lane + i;
                // SAFETY: lane-disjoint segment access, as
                // `LaneView::totals_seg`.
                unsafe {
                    let seg = std::slice::from_raw_parts_mut(
                        self.totals.add(lane * self.window_cap),
                        self.window_cap,
                    );
                    let len = &mut *self.totals_len.add(lane);
                    let new = scratch.aggs[i].total_rps();
                    if scratch.evicting[i] {
                        headroom_stats::plane::sorted_seg_replace(
                            seg,
                            len,
                            scratch.evicted[i].total_rps(),
                            new,
                        );
                    } else {
                        headroom_stats::plane::sorted_seg_insert(seg, len, new);
                    }
                }
            }
        }

        /// Pass 3: allocation deque evict (when pass 1 evicted) then push,
        /// per present lane — the same evict-before-push order the fused
        /// observe issues. One streaming walk over the deque plane.
        pub fn pass_alloc(&self, first_lane: usize, scratch: &PassScratch) {
            for i in 0..scratch.lanes() {
                if !scratch.present[i] {
                    continue;
                }
                let lane = first_lane + i;
                // SAFETY: lane-disjoint segment access, as
                // `LaneView::alloc_seg`.
                unsafe {
                    let seg = std::slice::from_raw_parts_mut(
                        self.alloc.add(lane * self.window_cap),
                        self.window_cap,
                    );
                    let head = &mut *self.alloc_head.add(lane);
                    let len = &mut *self.alloc_len.add(lane);
                    if scratch.evicting[i] {
                        headroom_stats::plane::deque_seg_evict(
                            seg,
                            head,
                            len,
                            scratch.evicted[i].active_servers as u64,
                        );
                    }
                    headroom_stats::plane::deque_seg_push(
                        seg,
                        head,
                        len,
                        scratch.aggs[i].active_servers as u64,
                    );
                }
            }
        }

        /// Pass 4: drift sub-window push per present lane, evicted pairs
        /// recorded in the scratch — [`ShardLane::drift_push`] batched the
        /// same way [`StoreView::pass_agg_push`] batches the aggregate
        /// ring.
        pub fn pass_drift_push(&self, first_lane: usize, scratch: &mut PassScratch) {
            let n = scratch.lanes();
            debug_assert!(first_lane + n <= self.lanes, "pass range exceeds store lanes");
            let lanes = self.lanes;
            // SAFETY: as pass_agg_push, over the drift cursors and plane.
            unsafe {
                let starts = std::slice::from_raw_parts_mut(self.drift_start.add(first_lane), n);
                let lens = std::slice::from_raw_parts_mut(self.drift_len.add(first_lane), n);
                headroom_stats::plane::ring_push_slots(
                    self.drift_cap as u32,
                    starts,
                    lens,
                    &scratch.present,
                    &mut scratch.drift_slots,
                    &mut scratch.drift_evicting,
                );
                for i in 0..n {
                    if !scratch.present[i] {
                        continue;
                    }
                    let lane = first_lane + i;
                    let cell = self
                        .drift
                        .add((scratch.drift_slots[i] as usize * lanes + lane) * DRIFT_FIELDS);
                    if scratch.drift_evicting[i] {
                        scratch.drift_evicted[i] = (*cell, *cell.add(1));
                    }
                    *cell = scratch.aggs[i].rps_per_server;
                    *cell.add(1) = scratch.aggs[i].cpu_pct;
                }
            }
        }
    }

    /// One lane of a [`StoreView`] — the production [`ShardLane`] backend.
    /// All plane kernels run through the same `headroom_stats::plane`
    /// segment functions the safe methods use.
    #[derive(Debug)]
    pub struct LaneView {
        v: StoreView,
        lane: usize,
    }

    impl LaneView {
        /// The lane's contiguous totals segment plus its length cursor.
        ///
        /// SAFETY (callers): lane-disjointness makes this the only live
        /// reference to either.
        unsafe fn totals_seg(&mut self) -> (&mut [f64], &mut u32) {
            // SAFETY: per the view contract the lane segment
            // [lane*cap, (lane+1)*cap) and the lane's cursor are accessed
            // by exactly this LaneView.
            unsafe {
                let seg = std::slice::from_raw_parts_mut(
                    self.v.totals.add(self.lane * self.v.window_cap),
                    self.v.window_cap,
                );
                (seg, &mut *self.v.totals_len.add(self.lane))
            }
        }

        /// The lane's contiguous deque segment plus its cursors.
        ///
        /// SAFETY (callers): lane-disjointness, as [`Self::totals_seg`].
        unsafe fn alloc_seg(&mut self) -> (&mut [u64], &mut u32, &mut u32) {
            // SAFETY: as totals_seg.
            unsafe {
                let seg = std::slice::from_raw_parts_mut(
                    self.v.alloc.add(self.lane * self.v.window_cap),
                    self.v.window_cap,
                );
                (seg, &mut *self.v.alloc_head.add(self.lane), &mut *self.v.alloc_len.add(self.lane))
            }
        }
    }

    impl ShardLane for LaneView {
        fn agg_len(&self) -> usize {
            // SAFETY: lane-disjoint read of this lane's cursor.
            unsafe { *self.v.agg_len.add(self.lane) as usize }
        }

        fn agg_push(&mut self, agg: &PoolWindowAggregate) -> Option<PoolWindowAggregate> {
            let lanes = self.v.lanes;
            let cap = self.v.window_cap as u32;
            // SAFETY: all accesses are to this lane's cursor entries and to
            // plane elements (slot, lane) — disjoint across lanes. The
            // evicted slot equals the write slot when full, so the reads
            // happen before the writes.
            unsafe {
                let start = &mut *self.v.agg_start.add(self.lane);
                let len = &mut *self.v.agg_len.add(self.lane);
                let (slot, evicting) = if *len == cap {
                    (*start as usize, true)
                } else {
                    (((*start + *len) % cap) as usize, false)
                };
                let cell = self.v.agg.add((slot * lanes + self.lane) * AGG_FIELDS);
                let evicted = evicting.then(|| PoolWindowAggregate {
                    window: WindowIndex(0),
                    rps_per_server: *cell,
                    cpu_pct: *cell.add(1),
                    latency_p95_ms: *cell.add(2),
                    disk_queue: *cell.add(3),
                    memory_pages_per_sec: *cell.add(4),
                    network_mbps: *cell.add(5),
                    active_servers: *cell.add(6) as usize,
                });
                *cell = agg.rps_per_server;
                *cell.add(1) = agg.cpu_pct;
                *cell.add(2) = agg.latency_p95_ms;
                *cell.add(3) = agg.disk_queue;
                *cell.add(4) = agg.memory_pages_per_sec;
                *cell.add(5) = agg.network_mbps;
                *cell.add(6) = agg.active_servers as f64;
                if evicting {
                    *start = (*start + 1) % cap;
                } else {
                    *len += 1;
                }
                evicted
            }
        }

        fn totals_insert(&mut self, v: f64) {
            // SAFETY: lane-disjoint segment access.
            let (seg, len) = unsafe { self.totals_seg() };
            headroom_stats::plane::sorted_seg_insert(seg, len, v);
        }

        fn totals_remove(&mut self, v: f64) -> bool {
            // SAFETY: lane-disjoint segment access.
            let (seg, len) = unsafe { self.totals_seg() };
            headroom_stats::plane::sorted_seg_remove(seg, len, v)
        }

        fn totals_replace(&mut self, old: f64, new: f64) -> bool {
            // SAFETY: lane-disjoint segment access.
            let (seg, len) = unsafe { self.totals_seg() };
            headroom_stats::plane::sorted_seg_replace(seg, len, old, new)
        }

        fn totals_percentile(&self, p: f64) -> Option<f64> {
            // SAFETY: lane-disjoint shared read of this lane's segment.
            unsafe {
                let len = *self.v.totals_len.add(self.lane);
                let seg = std::slice::from_raw_parts(
                    self.v.totals.add(self.lane * self.v.window_cap),
                    self.v.window_cap,
                );
                headroom_stats::plane::sorted_seg_percentile(seg, len, p)
            }
        }

        fn alloc_push(&mut self, servers: usize) {
            // SAFETY: lane-disjoint segment access.
            let (seg, head, len) = unsafe { self.alloc_seg() };
            headroom_stats::plane::deque_seg_push(seg, head, len, servers as u64);
        }

        fn alloc_evict(&mut self, servers: usize) {
            // SAFETY: lane-disjoint segment access.
            let (seg, head, len) = unsafe { self.alloc_seg() };
            headroom_stats::plane::deque_seg_evict(seg, head, len, servers as u64);
        }

        fn alloc_max(&self) -> Option<usize> {
            // SAFETY: lane-disjoint shared read of this lane's segment.
            unsafe {
                let head = *self.v.alloc_head.add(self.lane);
                let len = *self.v.alloc_len.add(self.lane);
                let seg = std::slice::from_raw_parts(
                    self.v.alloc.add(self.lane * self.v.window_cap),
                    self.v.window_cap,
                );
                headroom_stats::plane::deque_seg_max(seg, head, len).map(|v| v as usize)
            }
        }

        fn drift_push(&mut self, x: f64, y: f64) -> Option<(f64, f64)> {
            let lanes = self.v.lanes;
            let cap = self.v.drift_cap as u32;
            // SAFETY: as agg_push, over the drift cursors and planes.
            unsafe {
                let start = &mut *self.v.drift_start.add(self.lane);
                let len = &mut *self.v.drift_len.add(self.lane);
                let (slot, evicting) = if *len == cap {
                    (*start as usize, true)
                } else {
                    (((*start + *len) % cap) as usize, false)
                };
                let cell = self.v.drift.add((slot * lanes + self.lane) * DRIFT_FIELDS);
                let evicted = evicting.then(|| (*cell, *cell.add(1)));
                *cell = x;
                *cell.add(1) = y;
                if evicting {
                    *start = (*start + 1) % cap;
                } else {
                    *len += 1;
                }
                evicted
            }
        }

        fn clear(&mut self) {
            // SAFETY: lane-disjoint cursor writes; plane data beyond a
            // lane's length is never read, so cursors are all that clears.
            unsafe {
                *self.v.agg_start.add(self.lane) = 0;
                *self.v.agg_len.add(self.lane) = 0;
                *self.v.totals_len.add(self.lane) = 0;
                *self.v.alloc_head.add(self.lane) = 0;
                *self.v.alloc_len.add(self.lane) = 0;
                *self.v.drift_start.add(self.lane) = 0;
                *self.v.drift_len.add(self.lane) = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_stats::persist::{Reader, Writer};

    fn agg(w: u64, rps: f64, servers: usize) -> PoolWindowAggregate {
        PoolWindowAggregate {
            window: WindowIndex(w),
            rps_per_server: rps,
            cpu_pct: 0.028 * rps + 1.37,
            latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
            disk_queue: 1.0,
            memory_pages_per_sec: 4000.0,
            network_mbps: 0.32 * rps,
            active_servers: servers,
        }
    }

    /// Drives one lane of each backend through the exact op sequence
    /// `PoolShard::observe` issues and asserts every returned value agrees.
    fn drive_both(lane: &mut impl ShardLane, reference: &mut OwnedLane, windows: u64) {
        for w in 0..windows {
            let a = agg(w, 200.0 + (w % 37) as f64 * 9.0, 4 + (w % 3) as usize);
            let ev_a = lane.agg_push(&a);
            let ev_b = reference.agg_push(&a);
            // Compare everything but the window index, which the plane
            // backend does not store.
            assert_eq!(ev_a.map(|e| e.rps_per_server), ev_b.map(|e| e.rps_per_server));
            assert_eq!(ev_a.map(|e| e.active_servers), ev_b.map(|e| e.active_servers));
            if let (Some(ea), Some(eb)) = (ev_a, ev_b) {
                assert_eq!(
                    lane.totals_remove(ea.total_rps()),
                    reference.totals_remove(eb.total_rps())
                );
                lane.alloc_evict(ea.active_servers);
                reference.alloc_evict(eb.active_servers);
            }
            lane.totals_insert(a.total_rps());
            reference.totals_insert(a.total_rps());
            lane.alloc_push(a.active_servers);
            reference.alloc_push(a.active_servers);
            assert_eq!(
                lane.drift_push(a.rps_per_server, a.cpu_pct),
                reference.drift_push(a.rps_per_server, a.cpu_pct)
            );
            assert_eq!(lane.agg_len(), reference.agg_len());
            assert_eq!(lane.alloc_max(), reference.alloc_max());
            for p in [50.0, 99.0] {
                assert_eq!(lane.totals_percentile(p), reference.totals_percentile(p));
            }
        }
    }

    #[test]
    fn lane_view_matches_owned_lane() {
        let mut store = ShardStore::with_lanes(12, 5, 3);
        let view = store.view();
        for l in 0..3 {
            let mut lane = view.lane(l);
            let mut reference = OwnedLane::new(12, 5);
            drive_both(&mut lane, &mut reference, 40 + l as u64 * 7);
        }
    }

    #[test]
    fn clear_resets_one_lane_only() {
        let mut store = ShardStore::with_lanes(8, 4, 2);
        let view = store.view();
        for l in 0..2 {
            let mut lane = view.lane(l);
            let mut reference = OwnedLane::new(8, 4);
            drive_both(&mut lane, &mut reference, 20);
        }
        view.lane(0).clear();
        assert_eq!(view.lane(0).agg_len(), 0);
        assert_eq!(view.lane(0).alloc_max(), None);
        assert_eq!(view.lane(0).totals_percentile(50.0), None);
        assert_eq!(view.lane(1).agg_len(), 8, "clearing lane 0 leaves lane 1");
        // A cleared lane accepts a fresh stream identically to a fresh one.
        let mut reference = OwnedLane::new(8, 4);
        drive_both(&mut view.lane(0), &mut reference, 25);
    }

    #[test]
    fn pass_kernels_match_per_lane_ops() {
        // The plane-at-a-time passes against the per-lane ShardLane calls
        // (issued in the fused observe order), over lanes that skip windows
        // on their own cadence so fill levels and evictions diverge.
        let lanes = 5;
        let mut by_passes = ShardStore::with_lanes(6, 3, lanes);
        let mut by_lane = ShardStore::with_lanes(6, 3, lanes);
        let mut scratch = PassScratch::default();
        for w in 0..40u64 {
            let pv = by_passes.view();
            let lv = by_lane.view();
            scratch.reset(lanes);
            for l in 0..lanes {
                if !(w as usize + l).is_multiple_of(l + 1) {
                    continue; // lanes observe on their own cadence
                }
                scratch.set_input(l, agg(w, 180.0 + (w % 23) as f64 * 7.0 + l as f64, 3 + l % 4));
            }
            pv.pass_agg_push(0, &mut scratch);
            pv.pass_totals(0, &scratch);
            pv.pass_alloc(0, &scratch);
            pv.pass_drift_push(0, &mut scratch);
            for l in 0..lanes {
                let Some(&a) = scratch.input(l) else { continue };
                let mut lane = lv.lane(l);
                let evicted = lane.agg_push(&a);
                if let Some(e) = &evicted {
                    lane.totals_replace(e.total_rps(), a.total_rps());
                    lane.alloc_evict(e.active_servers);
                } else {
                    lane.totals_insert(a.total_rps());
                }
                lane.alloc_push(a.active_servers);
                let pair = lane.drift_push(a.rps_per_server, a.cpu_pct);
                assert_eq!(
                    scratch.evicted(l).map(|e| (e.rps_per_server, e.active_servers)),
                    evicted.as_ref().map(|e| (e.rps_per_server, e.active_servers)),
                    "lane {l} window {w}: evicted aggregate diverged"
                );
                assert_eq!(
                    scratch.drift_evicted(l),
                    pair,
                    "lane {l} window {w}: evicted drift pair diverged"
                );
            }
            // A mid-run clear (the drift-reset path) must leave both sides
            // identical too.
            if w == 25 {
                by_passes.view().lane(2).clear();
                by_lane.view().lane(2).clear();
            }
        }
        for l in 0..lanes {
            let (mut wa, mut wb) = (Writer::new(), Writer::new());
            by_passes.persist_lane(l, &mut wa);
            by_lane.persist_lane(l, &mut wb);
            assert_eq!(wa.into_bytes(), wb.into_bytes(), "lane {l} state diverged");
        }
    }

    #[test]
    fn persist_lane_roundtrips_and_normalizes() {
        // Drive a lane far enough to rotate both rings, so the physical
        // start is nonzero; the persisted form must normalize it away.
        let mut store = ShardStore::with_lanes(6, 3, 2);
        {
            let view = store.view();
            let mut lane = view.lane(1);
            let mut reference = OwnedLane::new(6, 3);
            drive_both(&mut lane, &mut reference, 23);
        }
        let mut w = Writer::new();
        store.persist_lane(1, &mut w);
        let bytes = w.into_bytes();

        let mut restored = ShardStore::with_lanes(6, 3, 2);
        let mut r = Reader::new(&bytes);
        restored.restore_lane(1, &mut r).expect("clean lane restores");
        assert!(r.is_empty());

        // The restored lane re-serializes to the same bytes (normalized
        // physical layout) and behaves identically under further pushes.
        let mut w2 = Writer::new();
        restored.persist_lane(1, &mut w2);
        assert_eq!(bytes, w2.into_bytes(), "persisted form is canonical");
        let (va, vb) = (store.view(), restored.view());
        let (mut a, mut b) = (va.lane(1), vb.lane(1));
        for w in 0..9u64 {
            let x = agg(w, 311.0 + w as f64, 5);
            let (ea, eb) = (a.agg_push(&x), b.agg_push(&x));
            assert_eq!(ea.map(|e| e.rps_per_server), eb.map(|e| e.rps_per_server));
            assert_eq!(a.drift_push(1.0 + w as f64, 2.0), b.drift_push(1.0 + w as f64, 2.0));
        }
        assert_eq!(a.alloc_max(), b.alloc_max());
    }

    #[test]
    fn restore_lane_rejects_corrupt_payloads() {
        let mut store = ShardStore::with_lanes(4, 2, 1);
        let corrupt = |bytes: &[u8]| {
            let mut fresh = ShardStore::with_lanes(4, 2, 1);
            let mut r = Reader::new(bytes);
            fresh.restore_lane(0, &mut r).unwrap_err()
        };
        // Over-capacity aggregate ring.
        let mut w = Writer::new();
        w.put_u32(5);
        corrupt(&w.into_bytes());
        // Descending totals.
        let mut w = Writer::new();
        w.put_u32(0);
        w.put_u32(2);
        w.put_f64(2.0);
        w.put_f64(1.0);
        corrupt(&w.into_bytes());
        // Increasing alloc deque violates the monotonic invariant.
        let mut w = Writer::new();
        w.put_u32(0);
        w.put_u32(0);
        w.put_u32(2);
        w.put_u64(1);
        w.put_u64(9);
        corrupt(&w.into_bytes());
        // Over-capacity drift sub-window.
        let mut w = Writer::new();
        w.put_u32(0);
        w.put_u32(0);
        w.put_u32(0);
        w.put_u32(3);
        corrupt(&w.into_bytes());
        // And a clean empty lane restores fine.
        let mut w = Writer::new();
        for _ in 0..4 {
            w.put_u32(0);
        }
        let clean = w.into_bytes();
        let mut r = Reader::new(&clean);
        store.restore_lane(0, &mut r).expect("empty lane restores");
    }

    #[test]
    fn remap_carries_lane_state() {
        let mut store = ShardStore::with_lanes(6, 3, 2);
        {
            let view = store.view();
            for l in 0..2 {
                let mut lane = view.lane(l);
                let mut reference = OwnedLane::new(6, 3);
                drive_both(&mut lane, &mut reference, 15 + l as u64);
            }
        }
        let before: Vec<Vec<u8>> = (0..2)
            .map(|lane| {
                let mut w = Writer::new();
                store.persist_lane(lane, &mut w);
                w.into_bytes()
            })
            .collect();

        // Two pools arrive, interleaving: old lanes 0, 1 → new lanes 1, 2.
        store.remap(&[1, 2], 4);
        assert_eq!(store.lanes(), 4);
        for (old, new) in [(0usize, 1usize), (1, 2)] {
            let mut after = Writer::new();
            store.persist_lane(new, &mut after);
            assert_eq!(
                before[old],
                after.into_bytes(),
                "lane {old} state survives remap to lane {new}"
            );
        }
        for fresh in [0usize, 3] {
            assert_eq!(store.view().lane(fresh).agg_len(), 0);
        }
    }
}
