//! The per-pool planner state machine.
//!
//! [`PoolShard`] is the unit of the shard-and-merge planner core: it owns
//! the *scalar* planner state of one pool — one response fit per resource
//! plus the latency quadratic, the streaming latency quantile, drift
//! detection, exhaustion projection, and the recommendation hysteresis
//! state. The pool's *windowed* state (aggregate ring, sorted totals
//! column, allocation max-deque, drift sub-window) lives in the
//! engine-owned [`crate::store::ShardStore`] planes and is reached through
//! the [`ShardLane`] passed into [`observe`]/[`replan`] — the slot-major
//! layout that lets a fleet sweep stream shard state instead of
//! pointer-chasing 3–4 heap buffers per pool (see `crate::store`).
//!
//! Because a shard (and its lane) never reads another pool's state, any
//! number of shards can be driven concurrently and the fleet view is a
//! deterministic merge of their outputs (see [`crate::sweep::SweepEngine`]).
//!
//! Relative to the original monolithic `OnlinePlanner` loop, the per-window
//! sizing path re-derives nothing from scratch:
//!
//! - the windowed p99 total-workload peak comes from the lane's sorted
//!   totals column — eviction by streaming `memmove`, percentile by plain
//!   indexing, bit-identical to the sort-based percentile (and to the treap
//!   it replaced);
//! - the maximum serving allocation comes from the lane's monotonic
//!   max-deque (O(1) amortized);
//! - both fits and the P² quantile were already O(1).
//!
//! [`observe`]: PoolShard::observe
//! [`replan`]: PoolShard::replan

use headroom_core::sizing::PoolSizing;
use headroom_core::slo::QosRequirement;
use headroom_stats::persist::{Persist, PersistError, Reader, Writer};
use headroom_stats::quantile_stream::P2Quantile;
use headroom_stats::{FitArray, LinearFit, StreamingLinReg, StreamingQuadFit};
use headroom_telemetry::counter::Resource;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;

use crate::drift::DriftDetector;
use crate::exhaustion::ExhaustionProjector;
use crate::planner::{
    BindingConstraint, OnlinePlannerConfig, PoolAssessment, PoolWindowAggregate, ResizeAction,
    ResizeRecommendation,
};
use crate::store::ShardLane;

/// One pool's streaming-planner scalar state.
///
/// Feed one [`PoolWindowAggregate`] per window with [`observe`]; derive the
/// sizing decision (and any due recommendation) with [`replan`]. Both take
/// the pool's [`ShardLane`] — its windowed buffers in the engine's plane
/// store. All state is pool-local, so shards compose across threads
/// without locks.
///
/// [`observe`]: PoolShard::observe
/// [`replan`]: PoolShard::replan
#[derive(Debug, Clone)]
pub struct PoolShard {
    /// One workload→utilization line per [`Resource`] (CPU, disk queue,
    /// paging, network), indexed by [`Resource::index`]. A fixed-size
    /// inline array: updating every resource costs no allocation.
    resources: FitArray<StreamingLinReg, { Resource::COUNT }>,
    latency: StreamingQuadFit,
    latency_stream: P2Quantile,
    drift: DriftDetector,
    projector: ExhaustionProjector,
    drift_events: usize,
    /// The most recent full assessment, written in place by whichever
    /// worker replanned this pool. Keeping it here (rather than merging
    /// per-pool copies into a fleet-level map every window) means the
    /// fleet's assessment state *is* the shard array — reading it is a
    /// borrow, and the per-window merge moves only recommendations.
    last_assessment: Option<PoolAssessment>,
    /// Target of the last *emitted* recommendation.
    last_target: Option<usize>,
    /// Dwell-time hysteresis: a changed target and how many consecutive
    /// replans it has persisted.
    dwell: Option<(usize, u64)>,
    /// Whether the last assessment put this pool in a band that needs
    /// capacity. Urgent pools re-derive their sizing *every* window, not
    /// just on the `replan_every` cadence — running out of capacity must
    /// not wait out a coarse replan interval.
    urgent: bool,
    /// The CPU fit derived by this window's drift check, reused by
    /// [`assess`] so the default `replan_every: 1` cadence does not solve
    /// the same normal equations twice per pool per window. Purely a
    /// cache: `None` whenever the fit is unsolvable (or after a restore),
    /// and [`assess`] recomputes on `None` — so it never changes a
    /// decision, is not persisted, and checkpoint bytes are unchanged.
    ///
    /// [`assess`]: PoolShard::assess
    cpu_fit: Option<LinearFit>,
}

impl PoolShard {
    /// A fresh shard tuned by `config`.
    pub fn new(config: &OnlinePlannerConfig) -> Self {
        let _ = config;
        PoolShard {
            resources: FitArray::new(),
            latency: StreamingQuadFit::new(),
            latency_stream: P2Quantile::new(0.95).expect("0.95 is a valid quantile"),
            drift: DriftDetector::new(config.drift),
            projector: ExhaustionProjector::new(),
            drift_events: 0,
            last_assessment: None,
            last_target: None,
            dwell: None,
            urgent: false,
            cpu_fit: None,
        }
    }

    /// Drift resets this pool has experienced.
    pub fn drift_events(&self) -> usize {
        self.drift_events
    }

    /// Whether the last assessment left this pool urgently short of
    /// capacity (exhausted/critical band). The sweep engine replans urgent
    /// pools every window, bypassing the `replan_every` cadence.
    pub fn urgent(&self) -> bool {
        self.urgent
    }

    /// The most recent assessment [`replan`] derived for this pool, if any.
    /// Survives until the next successful replan (a drift reset clears the
    /// fits but the last fleet-visible assessment stays current until
    /// re-derived, exactly as a merged fleet map would).
    ///
    /// [`replan`]: PoolShard::replan
    pub fn assessment(&self) -> Option<&PoolAssessment> {
        self.last_assessment.as_ref()
    }

    /// Consumes one window's pool aggregate: one streaming `memmove` of the
    /// lane's sorted totals column, O(1) for everything else.
    pub fn observe(&mut self, agg: PoolWindowAggregate, lane: &mut impl ShardLane) {
        if let Some(evicted) = lane.agg_push(&agg) {
            for r in Resource::ALL {
                self.resources[r.index()].remove(evicted.rps_per_server, evicted.utilization(r));
            }
            self.latency.remove(evicted.rps_per_server, evicted.latency_p95_ms);
            // total_rps() is a pure function of the evicted row, so the
            // removal hits the exact value inserted when it arrived; the
            // arriving total rides the same pass over the sorted segment.
            lane.totals_replace(evicted.total_rps(), agg.total_rps());
            lane.alloc_evict(evicted.active_servers);
        } else {
            lane.totals_insert(agg.total_rps());
        }
        for r in Resource::ALL {
            self.resources[r.index()].push(agg.rps_per_server, agg.utilization(r));
        }
        self.latency.push(agg.rps_per_server, agg.latency_p95_ms);
        self.latency_stream.observe(agg.latency_p95_ms);
        self.projector.observe(agg.window, agg.total_rps());
        lane.alloc_push(agg.active_servers);

        // Change-point handling: the drift detector compares its short
        // sub-window (ring-buffered in the lane) against the established
        // long fit and, on a hit, invalidates everything the fits learned
        // before the shift.
        let evicted_pair = lane.drift_push(agg.rps_per_server, agg.cpu_pct);
        self.drift.observe(agg.rps_per_server, agg.cpu_pct, evicted_pair);
        let cpu_len = self.resources[Resource::Cpu.index()].len();
        self.cpu_fit = self.resources[Resource::Cpu.index()].fit().ok();
        if let Some(reference) = self.cpu_fit {
            if self.drift.check(&reference, cpu_len).is_some() {
                lane.clear();
                self.resources.clear();
                self.latency.clear();
                self.latency_stream = P2Quantile::new(0.95).expect("valid quantile");
                self.drift.reset();
                self.cpu_fit = None;
                // A half-counted dwell from the old regime must not let the
                // first post-drift target skip the hysteresis wait.
                self.dwell = None;
                // Urgency was judged on the old response profile; the next
                // full assessment re-derives it from post-drift data.
                self.urgent = false;
                self.drift_events += 1;
                // Demand history survives: a release changes the response
                // profile, not how much traffic users send.
            }
        }
    }

    /// The scalar half of [`observe`] — pass 5 of the pass-structured
    /// window: fit removes for the evicted aggregate, fit pushes for the
    /// arriving one, latency-stream/projector updates, and the drift
    /// check, with `lane.clear()` on a drift hit exactly as the fused
    /// path. The windowed halves (ring/totals/deque/drift pushes) must
    /// already have run for this window, with `evicted`/`drift_evicted`
    /// being what they returned (see `crate::store::StoreView`'s pass
    /// entry points).
    ///
    /// Every floating-point operation on shard state happens in the same
    /// per-structure order the fused [`observe`] issues, and all state is
    /// pool-local — so pass-structured windows are bit-identical to fused
    /// ones, which the engine proptests pin against the [`observe`]-driven
    /// `OwnedLane` reference.
    ///
    /// [`observe`]: PoolShard::observe
    pub fn observe_scalar(
        &mut self,
        agg: &PoolWindowAggregate,
        evicted: Option<&PoolWindowAggregate>,
        drift_evicted: Option<(f64, f64)>,
        lane: &mut impl ShardLane,
    ) {
        if let Some(evicted) = evicted {
            for r in Resource::ALL {
                self.resources[r.index()].remove(evicted.rps_per_server, evicted.utilization(r));
            }
            self.latency.remove(evicted.rps_per_server, evicted.latency_p95_ms);
        }
        for r in Resource::ALL {
            self.resources[r.index()].push(agg.rps_per_server, agg.utilization(r));
        }
        self.latency.push(agg.rps_per_server, agg.latency_p95_ms);
        self.latency_stream.observe(agg.latency_p95_ms);
        self.projector.observe(agg.window, agg.total_rps());
        self.drift.observe(agg.rps_per_server, agg.cpu_pct, drift_evicted);
        let cpu_len = self.resources[Resource::Cpu.index()].len();
        self.cpu_fit = self.resources[Resource::Cpu.index()].fit().ok();
        if let Some(reference) = self.cpu_fit {
            if self.drift.check(&reference, cpu_len).is_some() {
                lane.clear();
                self.resources.clear();
                self.latency.clear();
                self.latency_stream = P2Quantile::new(0.95).expect("valid quantile");
                self.drift.reset();
                self.cpu_fit = None;
                self.dwell = None;
                self.urgent = false;
                self.drift_events += 1;
            }
        }
    }

    /// The batch optimizer's sizing formula over the current window
    /// (except that the answer is not clamped to the current allocation —
    /// see the Grow comment below).
    fn assess(
        &self,
        window: WindowIndex,
        qos: &QosRequirement,
        lane: &impl ShardLane,
    ) -> Option<PoolAssessment> {
        // The drift check in this window's observe already solved the CPU
        // normal equations; reuse that fit. `None` (restore, or an
        // unsolvable fit) falls back to recomputing — identical outcome
        // either way, since no observation lands between observe and
        // assess.
        let cpu_fit = match self.cpu_fit {
            Some(fit) => fit,
            None => self.resources[Resource::Cpu.index()].fit().ok()?,
        };
        let (lat_quad, lat_r2) = self.latency.fit_quadratic().ok()?;

        let current_servers = lane.alloc_max()?.max(1);
        let peak_total = lane.totals_percentile(99.0)?;

        // Per-server workload at the QoS limit — and *which* constraint
        // binds there. As in the batch CapacityForecaster::max_rps_per_server,
        // the latency SLO and the CPU guardrail must both be invertible —
        // an unreachable latency SLO keeps the current allocation rather
        // than silently sizing from CPU alone. The secondary resources
        // (disk queue, paging, network) participate only when their fitted
        // response actually correlates with workload (positive slope): a
        // workload-flat counter — Fig. 2's "vertical patterns" — can never
        // be satisfied by adding servers, so it never binds.
        let rps_latency = lat_quad.solve(qos.latency_p95_ms).ok();
        let rps_cpu = cpu_fit.solve_for_x(qos.cpu_ceiling_pct).ok();
        let (rps_at_slo, binding) = match (rps_latency, rps_cpu) {
            (Some(lat), Some(cpu)) => {
                let (mut best, mut binding) = if cpu < lat {
                    (cpu, BindingConstraint::Resource(Resource::Cpu))
                } else {
                    (lat, BindingConstraint::Latency)
                };
                // A workload-coupled resource already over its limit at
                // zero workload (positive slope, crossing at rps <= 0) can
                // never be satisfied by adding servers — that is the
                // unreachable-SLO case, not a constraint to skip.
                let mut unreachable = None;
                for r in [Resource::DiskQueue, Resource::MemoryPages, Resource::Network] {
                    let Ok(fit) = self.resources[r.index()].fit() else { continue };
                    if fit.slope <= 0.0 {
                        continue;
                    }
                    let Ok(rps) = fit.solve_for_x(qos.resource_limit(r)) else { continue };
                    if rps <= 0.0 {
                        unreachable.get_or_insert(r);
                    } else if rps < best {
                        best = rps;
                        binding = BindingConstraint::Resource(r);
                    }
                }
                match unreachable {
                    Some(r) => (None, BindingConstraint::Resource(r)),
                    None => (Some(best).filter(|r| *r > 0.0), binding),
                }
            }
            // Whichever of the two mandatory constraints failed to invert
            // is reported as binding on the unreachable path.
            (None, _) => (None, BindingConstraint::Latency),
            (_, None) => (None, BindingConstraint::Resource(Resource::Cpu)),
        };

        let (min_servers, supportable, slo_reachable) = match rps_at_slo {
            Some(rps) => {
                // The batch optimizer clamps its answer to the current
                // allocation because it reports *savings*; a live planner
                // must also be able to ask for more capacity than exists,
                // so an undersized pool yields min_servers > current and a
                // Grow recommendation.
                let fractional = (peak_total / rps).max(1e-9);
                let n = (fractional.ceil() as usize).max(1);
                (n, current_servers as f64 * rps, true)
            }
            // SLO unreachable on the fitted curves: keep the allocation and
            // report the pool as out of headroom — it cannot meet QoS.
            None => (current_servers, peak_total, false),
        };

        let projection = self.projector.project(supportable);
        Some(PoolAssessment {
            sizing: PoolSizing {
                pool: PoolId(0), // stamped by the caller
                current_servers,
                min_servers,
                peak_total_rps: peak_total,
            },
            window,
            band: projection.band,
            binding,
            projection,
            cpu_r_squared: cpu_fit.r_squared,
            latency_r_squared: lat_r2,
            latency_p95_stream_ms: self.latency_stream.estimate(),
            drift_events: self.drift_events,
            slo_reachable,
        })
    }

    /// Re-derives this pool's assessment (stored in place, readable via
    /// [`assessment`]) and decides whether a resize recommendation is due,
    /// applying the deadband and (when configured) the dwell-time
    /// hysteresis policy.
    ///
    /// Leaves the stored assessment untouched and returns `None` while the
    /// lane has fewer than `min_fit_windows` observations or the fits are
    /// not yet solvable.
    ///
    /// [`assessment`]: PoolShard::assessment
    pub fn replan(
        &mut self,
        pool: PoolId,
        window: WindowIndex,
        qos: &QosRequirement,
        config: &OnlinePlannerConfig,
        lane: &impl ShardLane,
    ) -> Option<ResizeRecommendation> {
        if lane.agg_len() < config.min_fit_windows {
            return None;
        }
        let mut assessment = self.assess(window, qos, lane)?;
        assessment.sizing.pool = pool;
        self.urgent = assessment.band.needs_capacity();

        let current = assessment.sizing.current_servers;
        let target = assessment.sizing.min_servers;
        let diff = current.abs_diff(target);
        let changed = self.last_target != Some(target);
        let mut recommendation = None;
        if changed && diff >= config.deadband_servers.max(1) {
            // Dwell-time hysteresis: a *changed* target must persist this
            // many consecutive replans before it is announced, so a target
            // oscillating faster than the dwell produces no flood of
            // single-server flip-flops. Exhausted/critical growth skips the
            // wait — running out of capacity is not a flap.
            let urgent = target > current && assessment.band.needs_capacity();
            let due = if config.dwell_windows == 0 || urgent {
                true
            } else {
                match self.dwell {
                    Some((candidate, seen)) if candidate == target => {
                        let seen = seen + 1;
                        self.dwell = Some((candidate, seen));
                        seen >= config.dwell_windows
                    }
                    _ => {
                        self.dwell = Some((target, 1));
                        config.dwell_windows <= 1
                    }
                }
            };
            if due {
                recommendation = Some(ResizeRecommendation {
                    pool,
                    window,
                    from_servers: current,
                    to_servers: target,
                    action: if target < current {
                        ResizeAction::Shrink
                    } else {
                        ResizeAction::Grow
                    },
                    band: assessment.band,
                });
                self.last_target = Some(target);
                self.dwell = None;
            }
        } else {
            // The target returned to the last announced value (or moved
            // within the deadband): the tentative change was a flap.
            self.dwell = None;
        }
        self.last_assessment = Some(assessment);
        recommendation
    }
}

impl Persist for PoolShard {
    /// Scalar state only — the pool's windowed buffers are serialized by
    /// the engine from its [`crate::store::ShardStore`] lane, interleaved
    /// right after each shard.
    fn persist(&self, w: &mut Writer) {
        self.resources.persist(w);
        self.latency.persist(w);
        self.latency_stream.persist(w);
        self.drift.persist(w);
        self.projector.persist(w);
        w.put_usize(self.drift_events);
        self.last_assessment.persist(w);
        self.last_target.persist(w);
        self.dwell.persist(w);
        w.put_bool(self.urgent);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(PoolShard {
            resources: FitArray::restore(r)?,
            latency: StreamingQuadFit::restore(r)?,
            latency_stream: P2Quantile::restore(r)?,
            drift: DriftDetector::restore(r)?,
            projector: ExhaustionProjector::restore(r)?,
            drift_events: r.take_usize()?,
            last_assessment: Option::restore(r)?,
            last_target: Option::restore(r)?,
            dwell: Option::restore(r)?,
            urgent: r.take_bool()?,
            // Not persisted: a restored shard recomputes its CPU fit on
            // the next observe (or assess falls back to a fresh solve).
            cpu_fit: None,
        })
    }
}
