//! The streaming capacity planner and its simulation control loop.
//!
//! [`OnlinePlanner`] consumes one fleet snapshot per 120-second window and
//! maintains, per pool, a [`crate::shard::PoolShard`]:
//!
//! - a sliding window of pool-aggregate observations (ring-buffered);
//! - one workload→utilization line per resource — CPU, disk queue, memory
//!   paging, network ([`headroom_stats::FitArray`] of
//!   [`headroom_stats::StreamingLinReg`], O(1) each) — so the *binding*
//!   constraint is discovered, not assumed;
//! - the workload→latency quadratic ([`headroom_stats::StreamingQuadFit`],
//!   O(1));
//! - an [`headroom_stats::OrderStatsMultiset`] of windowed total workload
//!   (the p99 peak in O(log W)) and a
//!   [`headroom_stats::MonotonicMaxDeque`] of the serving allocation;
//! - a whole-stream P² tracker of the pool's p95 latency;
//! - a [`crate::drift::DriftDetector`] that discards stale history when the
//!   response profile shifts;
//! - an [`crate::exhaustion::ExhaustionProjector`] for days-to-exhaustion.
//!
//! Each window the planner re-derives every pool's minimum server count
//! with exactly the batch optimizer's formula — p99 of windowed total
//! workload divided by the per-server workload at the QoS limit — so a
//! window covering the same observations reproduces
//! `headroom_core::optimizer::optimize_pool` while updating orders of
//! magnitude faster than a batch refit. The fleet-level work is delegated
//! to a [`crate::sweep::SweepEngine`], which fans the pools out across
//! scoped threads and merges deterministically: results are bit-identical
//! for any thread count.

use std::collections::BTreeMap;

use headroom_cluster::columns::{ColumnarSnapshot, SnapshotColumns};
use headroom_cluster::sim::{
    PartitionedSnapshot, Simulation, SnapshotLayout, SnapshotRow, WindowSnapshot,
};
use headroom_core::sizing::{PoolSizing, SizingPlanner};
use headroom_core::slo::QosRequirement;
use headroom_stats::persist::{Persist, PersistError, Reader, Writer};
use headroom_telemetry::counter::Resource;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;

use crate::drift::DriftConfig;
use crate::exhaustion::{ExhaustionProjection, HeadroomBand};
use crate::sweep::{AssessmentView, SweepEngine};

/// How the sweep engine executes its per-window fan-out.
///
/// Both modes share one chunk geometry and one merge order, so they are
/// *bit-identical* in output for any fleet and any thread count (property
/// tested); the choice is purely an execution-cost knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepExec {
    /// Long-lived workers, spawned once and parked between windows; the
    /// per-window hand-off is allocation-free. The default: fan-out costs
    /// ~µs, so `threads > 1` pays off even on small fleets.
    #[default]
    Persistent,
    /// Scoped threads spawned (and joined) every window — the pre-pool
    /// legacy shape, ~100µs/window of spawn overhead. Kept for A/B
    /// regression tests and for callers that must not hold threads.
    Scoped,
}

/// Streaming-planner tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePlannerConfig {
    /// Sliding-window length in 120-second windows (default 1440 = 2 days).
    pub window_capacity: usize,
    /// Windows required before a pool is first planned (default 180 = 6 h).
    pub min_fit_windows: usize,
    /// Re-derive sizings every this many windows (default 1 = every window).
    pub replan_every: u64,
    /// A recommendation is emitted only when the target differs from the
    /// current allocation by at least this many servers (default 1).
    pub deadband_servers: usize,
    /// Dwell-time hysteresis: a changed target must persist this many
    /// consecutive replans before a recommendation is emitted (default 0 =
    /// announce immediately). Growth out of an exhausted/critical band is
    /// never delayed. With `replan_every = 1`, one unit is one window.
    pub dwell_windows: u64,
    /// Sweep fan-out width: number of worker threads the pools are sharded
    /// across per window (default 1 = sequential; 0 = one per available
    /// core). Results are bit-identical for every setting.
    pub threads: usize,
    /// How the fan-out executes (persistent worker pool vs per-window
    /// scoped threads). Results are bit-identical for every setting.
    pub exec: SweepExec,
    /// Minimum pools per worker before another worker is engaged: the
    /// effective fan-out is `min(threads, ceil(pools / min_pool_chunk))`
    /// (default 64). Stops a small fleet from paying cross-thread hand-off
    /// per window for a handful of pools each — purely an execution knob,
    /// results are bit-identical for every setting.
    pub min_pool_chunk: usize,
    /// Drift-detector tuning.
    pub drift: DriftConfig,
}

impl Default for OnlinePlannerConfig {
    fn default() -> Self {
        OnlinePlannerConfig {
            window_capacity: 1440,
            min_fit_windows: 180,
            replan_every: 1,
            deadband_servers: 1,
            dwell_windows: 0,
            threads: 1,
            exec: SweepExec::default(),
            min_pool_chunk: 64,
            drift: DriftConfig::default(),
        }
    }
}

/// One pool's aggregate observation for one window: the workload, the QoS
/// signal, and the full Fig. 2 resource counter vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolWindowAggregate {
    /// The window observed.
    pub window: WindowIndex,
    /// Mean RPS per serving server.
    pub rps_per_server: f64,
    /// Mean CPU percent across serving servers.
    pub cpu_pct: f64,
    /// Mean p95 latency across serving servers (ms).
    pub latency_p95_ms: f64,
    /// Mean disk queue length across serving servers.
    pub disk_queue: f64,
    /// Mean paging rate across serving servers (pages/sec).
    pub memory_pages_per_sec: f64,
    /// Mean network throughput across serving servers (Mbps).
    pub network_mbps: f64,
    /// Serving server count.
    pub active_servers: usize,
}

impl PoolWindowAggregate {
    /// Total pool workload this window (RPS).
    pub fn total_rps(&self) -> f64 {
        self.rps_per_server * self.active_servers as f64
    }

    /// This window's mean utilization of one [`Resource`], in that
    /// resource's units.
    pub fn utilization(&self, resource: Resource) -> f64 {
        match resource {
            Resource::Cpu => self.cpu_pct,
            Resource::DiskQueue => self.disk_queue,
            Resource::MemoryPages => self.memory_pages_per_sec,
            Resource::Network => self.network_mbps,
        }
    }

    /// Aggregates one pool's snapshot rows (offline rows skipped). `None`
    /// when no server served this window, matching the batch collector's
    /// treatment of empty windows.
    ///
    /// Accumulation runs in row order, so for pool-contiguous snapshots the
    /// result is bit-identical to [`PoolWindowAggregate::from_snapshot`].
    pub fn from_rows(window: WindowIndex, rows: &[SnapshotRow]) -> Option<PoolWindowAggregate> {
        let (mut rps, mut cpu, mut lat, mut n) = (0.0f64, 0.0f64, 0.0f64, 0usize);
        let (mut dq, mut pg, mut nm) = (0.0f64, 0.0f64, 0.0f64);
        for row in rows {
            if !row.online {
                continue;
            }
            rps += row.rps;
            cpu += row.cpu_pct;
            lat += row.latency_p95_ms;
            dq += row.disk_queue;
            pg += row.memory_pages_per_sec;
            nm += row.network_mbps;
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let nf = n as f64;
        Some(PoolWindowAggregate {
            window,
            rps_per_server: rps / nf,
            cpu_pct: cpu / nf,
            latency_p95_ms: lat / nf,
            disk_queue: dq / nf,
            memory_pages_per_sec: pg / nf,
            network_mbps: nm / nf,
            active_servers: n,
        })
    }

    /// Aggregates one pool's rows from a columnar snapshot's `start..start
    /// + len` slice — the struct-of-arrays counterpart of
    /// [`PoolWindowAggregate::from_rows`], and bit-identical to it.
    ///
    /// Each counter is summed *unconditionally* over its contiguous column
    /// slice: the columnar offline contract (offline lanes carry exactly
    /// `+0.0`) makes the extra terms bit-exact no-ops on the non-negative
    /// partial sums, so the loop needs no per-row branch, streams dense
    /// memory, and auto-vectorizes. The serving count is a masked popcount.
    /// `None` when no server served this window.
    pub fn from_columns(
        window: WindowIndex,
        cols: &SnapshotColumns,
        start: usize,
        len: usize,
    ) -> Option<PoolWindowAggregate> {
        let n = cols.online_count(start, len);
        if n == 0 {
            return None;
        }
        // One fused pass over the six column slices: each accumulator still
        // adds its column's values in index order (bit-identical to summing
        // the column alone, and to the row loop), but small pools pay the
        // loop overhead once instead of six times. Equal slice lengths let
        // the bounds checks vanish.
        let range = start..start + len;
        let (rps_c, cpu_c, lat_c) = (
            &cols.rps()[range.clone()],
            &cols.cpu_pct()[range.clone()],
            &cols.latency_p95_ms()[range.clone()],
        );
        let (dq_c, pg_c, nm_c) = (
            &cols.disk_queue()[range.clone()],
            &cols.memory_pages_per_sec()[range.clone()],
            &cols.network_mbps()[range],
        );
        let (mut rps, mut cpu, mut lat) = (0.0f64, 0.0f64, 0.0f64);
        let (mut dq, mut pg, mut nm) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..len {
            rps += rps_c[i];
            cpu += cpu_c[i];
            lat += lat_c[i];
            dq += dq_c[i];
            pg += pg_c[i];
            nm += nm_c[i];
        }
        let nf = n as f64;
        Some(PoolWindowAggregate {
            window,
            rps_per_server: rps / nf,
            cpu_pct: cpu / nf,
            latency_p95_ms: lat / nf,
            disk_queue: dq / nf,
            memory_pages_per_sec: pg / nf,
            network_mbps: nm / nf,
            active_servers: n,
        })
    }

    /// Aggregates a fleet snapshot into per-pool rows (pools with no
    /// serving server this window are omitted, matching the batch
    /// collector's treatment of empty windows).
    pub fn from_snapshot(snap: &WindowSnapshot<'_>) -> Vec<(PoolId, PoolWindowAggregate)> {
        // Σrps, Σcpu, Σlatency, Σdisk-queue, Σpages/s, ΣMbps, serving count.
        type PoolSums = (f64, f64, f64, f64, f64, f64, usize);
        let mut acc: BTreeMap<PoolId, PoolSums> = BTreeMap::new();
        for row in snap.rows {
            if !row.online {
                continue;
            }
            let e = acc.entry(row.pool).or_insert((0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0));
            e.0 += row.rps;
            e.1 += row.cpu_pct;
            e.2 += row.latency_p95_ms;
            e.3 += row.disk_queue;
            e.4 += row.memory_pages_per_sec;
            e.5 += row.network_mbps;
            e.6 += 1;
        }
        acc.into_iter()
            .map(|(pool, (rps, cpu, lat, dq, pg, nm, n))| {
                let nf = n as f64;
                (
                    pool,
                    PoolWindowAggregate {
                        window: snap.window,
                        rps_per_server: rps / nf,
                        cpu_pct: cpu / nf,
                        latency_p95_ms: lat / nf,
                        disk_queue: dq / nf,
                        memory_pages_per_sec: pg / nf,
                        network_mbps: nm / nf,
                        active_servers: n,
                    },
                )
            })
            .collect()
    }
}

/// The constraint that limited a pool's sizing — discovered live, per pool,
/// per window, from the fitted response curves (§II-A1's "limiting
/// resource" loop, done online).
///
/// The planner fits one workload→utilization line per [`Resource`] plus the
/// workload→latency quadratic, inverts each at its safety threshold, and
/// the constraint reached at the *lowest* per-server workload binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingConstraint {
    /// The latency SLO binds before any resource threshold.
    Latency,
    /// A resource safety threshold binds first.
    Resource(Resource),
}

impl BindingConstraint {
    /// The binding resource, when a resource (rather than the latency SLO)
    /// binds.
    pub fn resource(&self) -> Option<Resource> {
        match self {
            BindingConstraint::Latency => None,
            BindingConstraint::Resource(r) => Some(*r),
        }
    }
}

impl std::fmt::Display for BindingConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindingConstraint::Latency => f.write_str("latency"),
            BindingConstraint::Resource(r) => write!(f, "{r}"),
        }
    }
}

/// Why a resize was recommended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeAction {
    /// The pool carries removable headroom.
    Shrink,
    /// The pool is critically low on headroom.
    Grow,
}

/// A sizing change the planner wants applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizeRecommendation {
    /// The pool.
    pub pool: PoolId,
    /// Window the recommendation was derived in.
    pub window: WindowIndex,
    /// Current serving allocation.
    pub from_servers: usize,
    /// Recommended allocation.
    pub to_servers: usize,
    /// Direction.
    pub action: ResizeAction,
    /// Headroom band that motivated it.
    pub band: HeadroomBand,
}

/// The planner's current view of one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolAssessment {
    /// The sizing decision, in the shared batch/online vocabulary.
    pub sizing: PoolSizing,
    /// Window the assessment was derived in.
    pub window: WindowIndex,
    /// Headroom band.
    pub band: HeadroomBand,
    /// The constraint that limited this sizing: the resource whose fitted
    /// utilization curve first crosses its safety threshold, or the latency
    /// SLO when it binds before any resource.
    pub binding: BindingConstraint,
    /// Exhaustion projection.
    pub projection: ExhaustionProjection,
    /// R² of the streaming CPU fit.
    pub cpu_r_squared: f64,
    /// R² of the streaming latency fit.
    pub latency_r_squared: f64,
    /// P² estimate of the p95 of per-window pool latency (ms).
    pub latency_p95_stream_ms: Option<f64>,
    /// Drift resets this pool has experienced.
    pub drift_events: usize,
    /// Whether the latency SLO was reachable on the fitted curve.
    pub slo_reachable: bool,
}

// ---------------------------------------------------------------------------
// Checkpoint encodings. Foreign vocabulary types (`PoolId`, `WindowIndex`,
// `PoolSizing`, `QosRequirement`, `Resource`) have all-public fields, so they
// are written field-wise inline here rather than growing the telemetry/core
// crates a persistence dependency.
// ---------------------------------------------------------------------------

pub(crate) fn persist_pool_id(p: &PoolId, w: &mut Writer) {
    w.put_u32(p.0);
}

pub(crate) fn restore_pool_id(r: &mut Reader<'_>) -> Result<PoolId, PersistError> {
    Ok(PoolId(r.take_u32()?))
}

pub(crate) fn persist_window_index(v: &WindowIndex, w: &mut Writer) {
    w.put_u64(v.0);
}

pub(crate) fn restore_window_index(r: &mut Reader<'_>) -> Result<WindowIndex, PersistError> {
    Ok(WindowIndex(r.take_u64()?))
}

pub(crate) fn persist_qos(q: &QosRequirement, w: &mut Writer) {
    w.put_f64(q.latency_p95_ms);
    w.put_f64(q.cpu_ceiling_pct);
    w.put_f64(q.min_availability);
    w.put_f64(q.disk_queue_limit);
    w.put_f64(q.memory_pages_limit);
    w.put_f64(q.network_mbps_limit);
}

pub(crate) fn restore_qos(r: &mut Reader<'_>) -> Result<QosRequirement, PersistError> {
    Ok(QosRequirement {
        latency_p95_ms: r.take_f64()?,
        cpu_ceiling_pct: r.take_f64()?,
        min_availability: r.take_f64()?,
        disk_queue_limit: r.take_f64()?,
        memory_pages_limit: r.take_f64()?,
        network_mbps_limit: r.take_f64()?,
    })
}

impl Persist for SweepExec {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            SweepExec::Persistent => 0,
            SweepExec::Scoped => 1,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.take_u8()? {
            0 => SweepExec::Persistent,
            1 => SweepExec::Scoped,
            _ => return Err(PersistError::Invalid("unknown SweepExec tag")),
        })
    }
}

impl Persist for OnlinePlannerConfig {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.window_capacity);
        w.put_usize(self.min_fit_windows);
        w.put_u64(self.replan_every);
        w.put_usize(self.deadband_servers);
        w.put_u64(self.dwell_windows);
        w.put_usize(self.threads);
        self.exec.persist(w);
        self.drift.persist(w);
        w.put_usize(self.min_pool_chunk);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(OnlinePlannerConfig {
            window_capacity: r.take_usize()?,
            min_fit_windows: r.take_usize()?,
            replan_every: r.take_u64()?,
            deadband_servers: r.take_usize()?,
            dwell_windows: r.take_u64()?,
            threads: r.take_usize()?,
            exec: SweepExec::restore(r)?,
            drift: DriftConfig::restore(r)?,
            min_pool_chunk: r.take_usize()?,
        })
    }
}

impl Persist for PoolWindowAggregate {
    fn persist(&self, w: &mut Writer) {
        persist_window_index(&self.window, w);
        w.put_f64(self.rps_per_server);
        w.put_f64(self.cpu_pct);
        w.put_f64(self.latency_p95_ms);
        w.put_f64(self.disk_queue);
        w.put_f64(self.memory_pages_per_sec);
        w.put_f64(self.network_mbps);
        w.put_usize(self.active_servers);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(PoolWindowAggregate {
            window: restore_window_index(r)?,
            rps_per_server: r.take_f64()?,
            cpu_pct: r.take_f64()?,
            latency_p95_ms: r.take_f64()?,
            disk_queue: r.take_f64()?,
            memory_pages_per_sec: r.take_f64()?,
            network_mbps: r.take_f64()?,
            active_servers: r.take_usize()?,
        })
    }
}

impl Persist for BindingConstraint {
    fn persist(&self, w: &mut Writer) {
        match self {
            BindingConstraint::Latency => w.put_u8(0),
            BindingConstraint::Resource(res) => {
                w.put_u8(1);
                w.put_u8(res.index() as u8);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(BindingConstraint::Latency),
            1 => {
                let idx = r.take_u8()? as usize;
                let res = *Resource::ALL
                    .get(idx)
                    .ok_or(PersistError::Invalid("unknown Resource index"))?;
                Ok(BindingConstraint::Resource(res))
            }
            _ => Err(PersistError::Invalid("unknown BindingConstraint tag")),
        }
    }
}

impl Persist for ResizeAction {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            ResizeAction::Shrink => 0,
            ResizeAction::Grow => 1,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.take_u8()? {
            0 => ResizeAction::Shrink,
            1 => ResizeAction::Grow,
            _ => return Err(PersistError::Invalid("unknown ResizeAction tag")),
        })
    }
}

impl Persist for ResizeRecommendation {
    fn persist(&self, w: &mut Writer) {
        persist_pool_id(&self.pool, w);
        persist_window_index(&self.window, w);
        w.put_usize(self.from_servers);
        w.put_usize(self.to_servers);
        self.action.persist(w);
        self.band.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ResizeRecommendation {
            pool: restore_pool_id(r)?,
            window: restore_window_index(r)?,
            from_servers: r.take_usize()?,
            to_servers: r.take_usize()?,
            action: ResizeAction::restore(r)?,
            band: HeadroomBand::restore(r)?,
        })
    }
}

impl Persist for PoolAssessment {
    fn persist(&self, w: &mut Writer) {
        persist_pool_id(&self.sizing.pool, w);
        w.put_usize(self.sizing.current_servers);
        w.put_usize(self.sizing.min_servers);
        w.put_f64(self.sizing.peak_total_rps);
        persist_window_index(&self.window, w);
        self.band.persist(w);
        self.binding.persist(w);
        self.projection.persist(w);
        w.put_f64(self.cpu_r_squared);
        w.put_f64(self.latency_r_squared);
        self.latency_p95_stream_ms.persist(w);
        w.put_usize(self.drift_events);
        w.put_bool(self.slo_reachable);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(PoolAssessment {
            sizing: PoolSizing {
                pool: restore_pool_id(r)?,
                current_servers: r.take_usize()?,
                min_servers: r.take_usize()?,
                peak_total_rps: r.take_f64()?,
            },
            window: restore_window_index(r)?,
            band: HeadroomBand::restore(r)?,
            binding: BindingConstraint::restore(r)?,
            projection: ExhaustionProjection::restore(r)?,
            cpu_r_squared: r.take_f64()?,
            latency_r_squared: r.take_f64()?,
            latency_p95_stream_ms: Option::restore(r)?,
            drift_events: r.take_usize()?,
            slo_reachable: r.take_bool()?,
        })
    }
}

/// The streaming incremental capacity planner.
///
/// A facade over [`SweepEngine`]: per-pool state lives in
/// [`crate::shard::PoolShard`]s and fleet sweeps fan out across threads
/// per `config.threads`. Feed it snapshots with [`observe`] /
/// [`observe_partitioned`], or let it drive a simulation with [`run`] /
/// [`run_closed_loop`]. Read decisions through [`assessments`],
/// [`drain_recommendations`], or the shared [`SizingPlanner`] interface.
///
/// [`observe`]: OnlinePlanner::observe
/// [`observe_partitioned`]: OnlinePlanner::observe_partitioned
/// [`run`]: OnlinePlanner::run
/// [`run_closed_loop`]: OnlinePlanner::run_closed_loop
/// [`assessments`]: OnlinePlanner::assessments
/// [`drain_recommendations`]: OnlinePlanner::drain_recommendations
#[derive(Debug, Clone)]
pub struct OnlinePlanner {
    engine: SweepEngine,
}

impl OnlinePlanner {
    /// A planner applying `default_qos` to every pool not overridden with
    /// [`set_qos`].
    ///
    /// [`set_qos`]: OnlinePlanner::set_qos
    pub fn new(config: OnlinePlannerConfig, default_qos: QosRequirement) -> Self {
        OnlinePlanner { engine: SweepEngine::new(config, default_qos) }
    }

    /// Overrides the QoS requirement for one pool.
    pub fn set_qos(&mut self, pool: PoolId, qos: QosRequirement) -> &mut Self {
        self.engine.set_qos(pool, qos);
        self
    }

    /// Builder form of [`OnlinePlanner::set_qos`].
    pub fn with_qos(mut self, pool: PoolId, qos: QosRequirement) -> Self {
        self.engine.set_qos(pool, qos);
        self
    }

    /// The tuning in effect.
    pub fn config(&self) -> &OnlinePlannerConfig {
        self.engine.config()
    }

    /// The underlying sweep engine.
    pub fn engine(&self) -> &SweepEngine {
        &self.engine
    }

    /// Changes the fan-out width mid-run. Purely an execution knob: the
    /// planner's outputs are bit-identical before, across, and after the
    /// change (property tested).
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        self.engine.set_threads(threads);
        self
    }

    /// Windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.engine.windows_seen()
    }

    /// The QoS requirement used for `pool`.
    pub fn qos_for(&self, pool: PoolId) -> QosRequirement {
        self.engine.qos_for(pool)
    }

    /// Consumes one fleet snapshot: O(servers) aggregation plus O(log W)
    /// shard updates per pool, and (on replan windows) the O(log W) sizing
    /// re-derivation.
    pub fn observe(&mut self, snap: &WindowSnapshot<'_>) {
        self.engine.observe(snap);
    }

    /// Consumes one pool-partitioned snapshot — the fan-out-friendly path
    /// where even row aggregation runs inside the worker threads.
    pub fn observe_partitioned(&mut self, snap: &PartitionedSnapshot<'_>) {
        self.engine.observe_partitioned(snap);
    }

    /// Consumes one columnar snapshot — the struct-of-arrays hot path:
    /// workers aggregate each pool's counters from contiguous column
    /// slices. Bit-identical to the row paths for the same window data.
    pub fn observe_columns(&mut self, snap: &ColumnarSnapshot<'_>) {
        self.engine.observe_columns(snap);
    }

    /// Consumes one streamed window — the tile-fused hot path: workers
    /// *generate* each pool's metric columns into tile-resident scratch
    /// and aggregate them while still in cache, so the fleet's columns
    /// never round-trip DRAM. Bit-identical to the materialised paths.
    pub fn observe_streamed(&mut self, win: &headroom_cluster::sim::StreamedWindow<'_>) {
        self.engine.observe_streamed(win);
    }

    /// The latest per-pool assessments (a borrowed, pool-ordered view).
    pub fn assessments(&self) -> AssessmentView<'_> {
        self.engine.assessments()
    }

    /// Takes the recommendations queued since the last drain.
    pub fn drain_recommendations(&mut self) -> Vec<ResizeRecommendation> {
        self.engine.drain_recommendations()
    }

    /// Steps `sim` one window and ingests the snapshot in the layout the
    /// simulation is configured for — streamed (tile-fused kernel
    /// generation inside the sweep) on the default hot path, materialised
    /// columns or rows when the A/B layouts are selected. Planner outputs
    /// are bit-identical across all three.
    fn observe_sim_window(&mut self, sim: &mut Simulation) {
        match sim.config().layout {
            SnapshotLayout::Streamed => {
                let win = sim.step_streamed();
                self.engine.observe_streamed(&win);
            }
            SnapshotLayout::Columnar => {
                let snap = sim.step_columns_partitioned();
                self.engine.observe_columns(&snap);
            }
            SnapshotLayout::Rows => {
                let snap = sim.step_snapshot_partitioned();
                self.engine.observe_partitioned(&snap);
            }
        }
    }

    /// Drives `sim` for `windows` windows, observing every snapshot
    /// (open loop: recommendations accumulate but are not applied). The
    /// snapshot layout follows `sim`'s [`SnapshotLayout`] switch.
    pub fn run(&mut self, sim: &mut Simulation, windows: u64) -> Vec<ResizeRecommendation> {
        let mut all = Vec::new();
        for _ in 0..windows {
            self.observe_sim_window(sim);
            all.extend(self.engine.drain_recommendations());
        }
        all
    }

    /// Drives `sim` for `windows` windows and *applies* each shrink
    /// recommendation via [`Simulation::schedule_resize`] for the following
    /// window — the paper's server-reduction lever under streaming control.
    /// Grow recommendations are clamped to the pool's physical size.
    /// Returns every recommendation applied.
    pub fn run_closed_loop(
        &mut self,
        sim: &mut Simulation,
        windows: u64,
    ) -> Vec<ResizeRecommendation> {
        let mut applied = Vec::new();
        for _ in 0..windows {
            self.observe_sim_window(sim);
            let next = sim.current_window();
            for mut rec in self.engine.drain_recommendations() {
                let physical = sim.fleet().pool(rec.pool).map(|p| p.size()).unwrap_or(0);
                if physical == 0 {
                    continue;
                }
                // Record what is actually scheduled, not the raw ask.
                rec.to_servers = rec.to_servers.clamp(1, physical);
                if sim.schedule_resize(rec.pool, next, rec.to_servers).is_ok() {
                    applied.push(rec);
                }
            }
        }
        applied
    }
}

impl SizingPlanner for OnlinePlanner {
    fn planner_name(&self) -> &'static str {
        "online"
    }

    fn sizings(&self) -> Vec<PoolSizing> {
        // BTreeMap iteration keeps pools sorted.
        self.engine.assessments().values().map(|a| a.sizing).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::ids::{DatacenterId, ServerId};

    /// Synthetic snapshot rows for one pool on the paper's pool-B response
    /// curves at the given per-server workload.
    fn rows_at(rps: f64, servers: u32) -> Vec<SnapshotRow> {
        (0..servers)
            .map(|s| SnapshotRow {
                server: ServerId(s),
                pool: PoolId(0),
                datacenter: DatacenterId(0),
                online: true,
                rps,
                cpu_pct: 0.028 * rps + 1.37,
                latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                // Workload-flat disk/paging (never bind) and a network line
                // far below its default limit: CPU/latency decide sizing.
                disk_queue: 1.0,
                memory_pages_per_sec: 4_000.0,
                network_mbps: 0.32 * rps,
            })
            .collect()
    }

    /// Pool-B-curve rows with an explicit resource shape.
    fn rows_shaped(
        pool: u32,
        rps: f64,
        servers: u32,
        disk: impl Fn(f64) -> f64,
        pages: impl Fn(f64) -> f64,
        net: impl Fn(f64) -> f64,
    ) -> Vec<SnapshotRow> {
        (0..servers)
            .map(|s| SnapshotRow {
                server: ServerId(pool * 1000 + s),
                pool: PoolId(pool),
                datacenter: DatacenterId(0),
                online: true,
                rps,
                cpu_pct: 0.028 * rps + 1.37,
                latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                disk_queue: disk(rps),
                memory_pages_per_sec: pages(rps),
                network_mbps: net(rps),
            })
            .collect()
    }

    #[test]
    fn from_columns_matches_from_rows_bitwise() {
        // Mixed online/offline rows across bitmask word boundaries: the
        // branch-free columnar aggregation must reproduce the row loop bit
        // for bit (offline lanes carry +0.0, so unconditional sums are
        // exact), and agree on the serving count.
        let rows: Vec<SnapshotRow> = (0..70u32)
            .map(|i| {
                let online = i % 5 != 2;
                let v = if online { 100.0 + i as f64 * 3.7 } else { 0.0 };
                SnapshotRow {
                    server: ServerId(i),
                    pool: PoolId(0),
                    datacenter: DatacenterId(0),
                    online,
                    rps: v,
                    cpu_pct: if online { 0.028 * v + 1.37 } else { 0.0 },
                    latency_p95_ms: if online { 30.0 + 0.01 * v } else { 0.0 },
                    disk_queue: if online { 1.0 } else { 0.0 },
                    memory_pages_per_sec: if online { 4_000.0 } else { 0.0 },
                    network_mbps: if online { 0.32 * v } else { 0.0 },
                }
            })
            .collect();
        let cols = headroom_cluster::columns::SnapshotColumns::from_rows(&rows);
        for (start, len) in [(0usize, 70usize), (0, 64), (63, 7), (10, 50), (69, 1), (3, 0)] {
            let from_rows =
                PoolWindowAggregate::from_rows(WindowIndex(4), &rows[start..start + len]);
            let from_cols = PoolWindowAggregate::from_columns(WindowIndex(4), &cols, start, len);
            assert_eq!(from_rows, from_cols, "range {start}+{len}");
        }
        // An all-offline range is an empty window in both layouts.
        assert_eq!(PoolWindowAggregate::from_columns(WindowIndex(4), &cols, 2, 1), None);
    }

    #[test]
    fn binding_constraint_discovered_per_pool() {
        // Four pools on identical CPU/latency curves (latency would bind at
        // ~595 RPS/server under a 32.5 ms SLO) but different resource
        // shapes; the planner must discover, per pool, which constraint
        // actually binds — at a lower per-server workload than latency.
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut planner = OnlinePlanner::new(config, qos);
        for i in 0..120u64 {
            let rps = 200.0 + 150.0 * ((i as f64 / 60.0) * std::f64::consts::PI).sin().abs();
            let mut rows = Vec::new();
            // Pool 0: workload-flat disk/paging, light network — latency binds.
            rows.extend(rows_shaped(0, rps, 8, |_| 1.0, |_| 4_000.0, |r| 0.32 * r));
            // Pool 1: disk queue grows with RPS, crossing 24 at 470 RPS/server.
            rows.extend(rows_shaped(1, rps, 8, |r| 0.5 + 0.05 * r, |_| 4_000.0, |r| 0.32 * r));
            // Pool 2: paging tracks RPS, crossing 60k pages/s at ~387.
            rows.extend(rows_shaped(2, rps, 8, |_| 1.0, |r| 2_000.0 + 150.0 * r, |r| 0.32 * r));
            // Pool 3: 20 Mbps per RPS crosses the 9 Gbps limit at 450.
            rows.extend(rows_shaped(3, rps, 8, |_| 1.0, |_| 4_000.0, |r| 20.0 * r));
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
        }
        let a = planner.assessments();
        assert_eq!(a[&PoolId(0)].binding, BindingConstraint::Latency);
        assert_eq!(a[&PoolId(1)].binding, BindingConstraint::Resource(Resource::DiskQueue));
        assert_eq!(a[&PoolId(2)].binding, BindingConstraint::Resource(Resource::MemoryPages));
        assert_eq!(a[&PoolId(3)].binding, BindingConstraint::Resource(Resource::Network));
        // A tighter constraint means more servers for the same demand: the
        // disk-bound pool sizes off 470 RPS/server, the latency pool off ~595.
        assert!(
            a[&PoolId(1)].sizing.min_servers > a[&PoolId(0)].sizing.min_servers,
            "disk-bound pool needs more capacity: {} vs {}",
            a[&PoolId(1)].sizing.min_servers,
            a[&PoolId(0)].sizing.min_servers
        );
        assert_eq!(BindingConstraint::Latency.resource(), None);
        assert_eq!(
            a[&PoolId(1)].binding.resource(),
            Some(Resource::DiskQueue),
            "accessor agrees with the variant"
        );
    }

    #[test]
    fn baseline_saturated_resource_reports_unreachable() {
        // Disk queue sits above its limit even at zero workload (intercept
        // 30 > limit 24) while still workload-coupled: no allocation can
        // satisfy the disk SLO, so — exactly like an unreachable latency
        // SLO — the planner must keep the allocation, flag the pool, and
        // name the resource, not silently size from CPU/latency.
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..120u64 {
            let rps = 200.0 + 150.0 * ((i as f64 / 60.0) * std::f64::consts::PI).sin().abs();
            let rows = rows_shaped(0, rps, 8, |r| 30.0 + 0.01 * r, |_| 4_000.0, |r| 0.32 * r);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        let a = &planner.assessments()[&PoolId(0)];
        assert!(!a.slo_reachable, "disk SLO is unreachable at any size");
        assert_eq!(a.binding, BindingConstraint::Resource(Resource::DiskQueue));
        assert_eq!(a.sizing.min_servers, a.sizing.current_servers);
        assert_eq!(a.band, HeadroomBand::Exhausted);
        assert!(recs.is_empty(), "no recommendation from an unreachable SLO: {recs:?}");
    }

    #[test]
    fn undersized_pool_gets_grow_recommendation() {
        // Four servers whose workload ramps far past what they can serve
        // within a 32.5 ms SLO (~595 RPS/server on the pool-B curve): the
        // planner must ask for *more* capacity than exists.
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..200u64 {
            let rps = 100.0 + 3.5 * i as f64; // ramps to 800 RPS/server
            let rows = rows_at(rps, 4);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        let assessment = &planner.assessments()[&PoolId(0)];
        assert!(
            assessment.sizing.min_servers > assessment.sizing.current_servers,
            "undersized: needs {} > has {}",
            assessment.sizing.min_servers,
            assessment.sizing.current_servers
        );
        assert!(assessment.band.needs_capacity(), "band {}", assessment.band);
        let grow = recs
            .iter()
            .find(|r| r.action == ResizeAction::Grow)
            .expect("a grow recommendation was emitted");
        assert!(grow.to_servers > grow.from_servers);
        // Peak total ≈ 800×4 = 3200 RPS; ~595 RPS/server at the SLO ⇒ 6.
        assert_eq!(grow.from_servers, 4);
        assert!(grow.to_servers >= 5 && grow.to_servers <= 7, "to {}", grow.to_servers);
    }

    #[test]
    fn unreachable_latency_slo_keeps_current_allocation() {
        // The pool-B latency curve bottoms out around 30.7 ms: a 5 ms SLO
        // is unreachable at any workload. Like the batch optimizer, the
        // planner must keep the current allocation and must not size (or
        // shrink) from the CPU constraint alone.
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(5.0).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..120u64 {
            let rps = 150.0 + 2.0 * i as f64;
            let rows = rows_at(rps, 10);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        let assessment = &planner.assessments()[&PoolId(0)];
        assert!(!assessment.slo_reachable);
        assert_eq!(assessment.sizing.min_servers, assessment.sizing.current_servers);
        assert_eq!(assessment.band, HeadroomBand::Exhausted, "cannot meet QoS");
        assert!(recs.is_empty(), "no recommendation from an unreachable SLO: {recs:?}");
    }

    #[test]
    fn overprovisioned_pool_still_clamps_nothing_but_recommends_shrink() {
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..120u64 {
            // Gentle diurnal sweep well under the SLO workload.
            let rps = 150.0 + 100.0 * ((i as f64 / 60.0) * std::f64::consts::PI).sin().abs();
            let rows = rows_at(rps, 10);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        let shrink =
            recs.iter().find(|r| r.action == ResizeAction::Shrink).expect("shrink recommended");
        assert!(shrink.to_servers < 10);
        assert!(shrink.to_servers >= 1);
    }

    /// Drives a 20-server pool whose workload flaps across a one-server
    /// sizing boundary every 15 windows, then settles. Without hysteresis
    /// the planner announces every flip; with a dwell longer than the flap
    /// period it stays silent until the target settles.
    fn flapping_recommendations(dwell_windows: u64) -> Vec<ResizeRecommendation> {
        let config = OnlinePlannerConfig {
            window_capacity: 12,
            min_fit_windows: 8,
            dwell_windows,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        let mut w = 0u64;
        let mut feed = |planner: &mut OnlinePlanner, recs: &mut Vec<_>, rps: f64, n: u64| {
            for _ in 0..n {
                // Tiny deterministic ripple keeps the quadratic fit solvable.
                let ripple = (w % 3) as f64 * 0.8;
                let rows = rows_at(rps + ripple, 20);
                planner.observe(&WindowSnapshot { window: WindowIndex(w), rows: &rows });
                recs.extend(planner.drain_recommendations());
                w += 1;
            }
        };
        // Warm-up, then ~20 flaps across the 13⇄14-server boundary
        // (~595 RPS/server at the SLO), then a decisive settle.
        feed(&mut planner, &mut recs, 380.0, 30);
        for _ in 0..10 {
            feed(&mut planner, &mut recs, 392.0, 15);
            feed(&mut planner, &mut recs, 380.0, 15);
        }
        feed(&mut planner, &mut recs, 392.0, 80);
        recs
    }

    #[test]
    fn dwell_policy_collapses_target_flaps() {
        let noisy = flapping_recommendations(0);
        let damped = flapping_recommendations(40);
        assert!(
            noisy.len() >= 8,
            "without hysteresis the flapping trace floods: {} recs",
            noisy.len()
        );
        assert!(damped.len() <= 2, "dwell collapses the flood to decisive calls: {:?}", damped);
        // The settled regime is still announced, at the settled target.
        let last = damped.last().expect("the settle phase emits");
        assert_eq!(last.to_servers, 14, "settled target announced: {last:?}");
    }

    #[test]
    fn exhausted_growth_bypasses_dwell() {
        // Same undersized ramp as above, but with an hour-scale dwell: the
        // grow recommendation must not wait out the dwell.
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            dwell_windows: 10_000,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..200u64 {
            let rps = 100.0 + 3.5 * i as f64;
            let rows = rows_at(rps, 4);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        assert!(
            recs.iter().any(|r| r.action == ResizeAction::Grow),
            "urgent growth is never dwell-delayed: {recs:?}"
        );
    }
}
