//! The streaming capacity planner and its simulation control loop.
//!
//! [`OnlinePlanner`] consumes one [`WindowSnapshot`] per 120-second window
//! and maintains, per pool:
//!
//! - a sliding window of pool-aggregate observations (ring-buffered);
//! - the workload→CPU line ([`headroom_stats::StreamingLinReg`], O(1));
//! - the workload→latency quadratic ([`crate::estimators::StreamingQuadFit`],
//!   O(1));
//! - a whole-stream P² tracker of the pool's p95 latency;
//! - a [`crate::drift::DriftDetector`] that discards stale history when the
//!   response profile shifts;
//! - an [`crate::exhaustion::ExhaustionProjector`] for days-to-exhaustion.
//!
//! Each window it re-derives the pool's minimum server count with exactly
//! the batch optimizer's formula — p99 of windowed total workload divided by
//! the per-server workload at the QoS limit — so a window covering the same
//! observations reproduces `headroom_core::optimizer::optimize_pool` while
//! updating orders of magnitude faster than a batch refit.

use std::collections::BTreeMap;

use headroom_cluster::sim::{Simulation, WindowSnapshot};
use headroom_core::sizing::{PoolSizing, SizingPlanner};
use headroom_core::slo::QosRequirement;
use headroom_stats::quantile_stream::P2Quantile;
use headroom_stats::StreamingLinReg;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;

use crate::drift::{DriftConfig, DriftDetector};
use crate::estimators::StreamingQuadFit;
use crate::exhaustion::{ExhaustionProjection, ExhaustionProjector, HeadroomBand};
use crate::ring::RingWindow;

/// Streaming-planner tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePlannerConfig {
    /// Sliding-window length in 120-second windows (default 1440 = 2 days).
    pub window_capacity: usize,
    /// Windows required before a pool is first planned (default 180 = 6 h).
    pub min_fit_windows: usize,
    /// Re-derive sizings every this many windows (default 1 = every window).
    pub replan_every: u64,
    /// A recommendation is emitted only when the target differs from the
    /// current allocation by at least this many servers (default 1).
    pub deadband_servers: usize,
    /// Drift-detector tuning.
    pub drift: DriftConfig,
}

impl Default for OnlinePlannerConfig {
    fn default() -> Self {
        OnlinePlannerConfig {
            window_capacity: 1440,
            min_fit_windows: 180,
            replan_every: 1,
            deadband_servers: 1,
            drift: DriftConfig::default(),
        }
    }
}

/// One pool's aggregate observation for one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolWindowAggregate {
    /// The window observed.
    pub window: WindowIndex,
    /// Mean RPS per serving server.
    pub rps_per_server: f64,
    /// Mean CPU percent across serving servers.
    pub cpu_pct: f64,
    /// Mean p95 latency across serving servers (ms).
    pub latency_p95_ms: f64,
    /// Serving server count.
    pub active_servers: usize,
}

impl PoolWindowAggregate {
    /// Total pool workload this window (RPS).
    pub fn total_rps(&self) -> f64 {
        self.rps_per_server * self.active_servers as f64
    }

    /// Aggregates a fleet snapshot into per-pool rows (pools with no
    /// serving server this window are omitted, matching the batch
    /// collector's treatment of empty windows).
    pub fn from_snapshot(snap: &WindowSnapshot<'_>) -> Vec<(PoolId, PoolWindowAggregate)> {
        let mut acc: BTreeMap<PoolId, (f64, f64, f64, usize)> = BTreeMap::new();
        for row in snap.rows {
            if !row.online {
                continue;
            }
            let e = acc.entry(row.pool).or_insert((0.0, 0.0, 0.0, 0));
            e.0 += row.rps;
            e.1 += row.cpu_pct;
            e.2 += row.latency_p95_ms;
            e.3 += 1;
        }
        acc.into_iter()
            .map(|(pool, (rps, cpu, lat, n))| {
                let nf = n as f64;
                (
                    pool,
                    PoolWindowAggregate {
                        window: snap.window,
                        rps_per_server: rps / nf,
                        cpu_pct: cpu / nf,
                        latency_p95_ms: lat / nf,
                        active_servers: n,
                    },
                )
            })
            .collect()
    }
}

/// Why a resize was recommended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeAction {
    /// The pool carries removable headroom.
    Shrink,
    /// The pool is critically low on headroom.
    Grow,
}

/// A sizing change the planner wants applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizeRecommendation {
    /// The pool.
    pub pool: PoolId,
    /// Window the recommendation was derived in.
    pub window: WindowIndex,
    /// Current serving allocation.
    pub from_servers: usize,
    /// Recommended allocation.
    pub to_servers: usize,
    /// Direction.
    pub action: ResizeAction,
    /// Headroom band that motivated it.
    pub band: HeadroomBand,
}

/// The planner's current view of one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolAssessment {
    /// The sizing decision, in the shared batch/online vocabulary.
    pub sizing: PoolSizing,
    /// Window the assessment was derived in.
    pub window: WindowIndex,
    /// Headroom band.
    pub band: HeadroomBand,
    /// Exhaustion projection.
    pub projection: ExhaustionProjection,
    /// R² of the streaming CPU fit.
    pub cpu_r_squared: f64,
    /// R² of the streaming latency fit.
    pub latency_r_squared: f64,
    /// P² estimate of the p95 of per-window pool latency (ms).
    pub latency_p95_stream_ms: Option<f64>,
    /// Drift resets this pool has experienced.
    pub drift_events: usize,
    /// Whether the latency SLO was reachable on the fitted curve.
    pub slo_reachable: bool,
}

#[derive(Debug, Clone)]
struct PoolTracker {
    window: RingWindow<PoolWindowAggregate>,
    cpu: StreamingLinReg,
    latency: StreamingQuadFit,
    latency_stream: P2Quantile,
    drift: DriftDetector,
    projector: ExhaustionProjector,
    drift_events: usize,
}

impl PoolTracker {
    fn new(config: &OnlinePlannerConfig) -> Self {
        PoolTracker {
            window: RingWindow::new(config.window_capacity),
            cpu: StreamingLinReg::new(),
            latency: StreamingQuadFit::new(),
            latency_stream: P2Quantile::new(0.95).expect("0.95 is a valid quantile"),
            drift: DriftDetector::new(config.drift),
            projector: ExhaustionProjector::new(),
            drift_events: 0,
        }
    }

    fn update(&mut self, agg: PoolWindowAggregate) {
        if let Some(evicted) = self.window.push(agg) {
            self.cpu.remove(evicted.rps_per_server, evicted.cpu_pct);
            self.latency.remove(evicted.rps_per_server, evicted.latency_p95_ms);
        }
        self.cpu.push(agg.rps_per_server, agg.cpu_pct);
        self.latency.push(agg.rps_per_server, agg.latency_p95_ms);
        self.latency_stream.observe(agg.latency_p95_ms);
        self.projector.observe(agg.window, agg.total_rps());

        // Change-point handling: the drift detector compares its short
        // sub-window against the established long fit and, on a hit,
        // invalidates everything the fits learned before the shift.
        self.drift.observe(agg.rps_per_server, agg.cpu_pct);
        if let Ok(reference) = self.cpu.fit() {
            if self.drift.check(&reference, self.cpu.len()).is_some() {
                self.window.clear();
                self.cpu.clear();
                self.latency.clear();
                self.latency_stream = P2Quantile::new(0.95).expect("valid quantile");
                self.drift.reset();
                self.drift_events += 1;
                // Demand history survives: a release changes the response
                // profile, not how much traffic users send.
            }
        }
    }

    /// The batch optimizer's sizing formula over the current window
    /// (except that the answer is not clamped to the current allocation —
    /// see the Grow comment below).
    fn assess(&self, window: WindowIndex, qos: &QosRequirement) -> Option<PoolAssessment> {
        let cpu_fit = self.cpu.fit().ok()?;
        let (lat_poly, lat_r2) = self.latency.fit().ok()?;

        let current_servers = self.window.iter().map(|a| a.active_servers).max()?.max(1);

        let totals: Vec<f64> = self.window.iter().map(|a| a.total_rps()).collect();
        let peak_total = headroom_stats::percentile::percentile(&totals, 99.0).ok()?;

        // Per-server workload at the QoS limit: the binding constraint of
        // the latency SLO and the CPU guardrail. As in the batch
        // CapacityForecaster::max_rps_per_server, *both* constraints must be
        // invertible — an unreachable latency SLO keeps the current
        // allocation rather than silently sizing from CPU alone.
        let rps_latency = lat_poly.solve_quadratic(qos.latency_p95_ms).ok();
        let rps_cpu = cpu_fit.solve_for_x(qos.cpu_ceiling_pct).ok();
        let rps_at_slo = match (rps_latency, rps_cpu) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        }
        .filter(|r| *r > 0.0);

        let (min_servers, supportable, slo_reachable) = match rps_at_slo {
            Some(rps) => {
                // The batch optimizer clamps its answer to the current
                // allocation because it reports *savings*; a live planner
                // must also be able to ask for more capacity than exists,
                // so an undersized pool yields min_servers > current and a
                // Grow recommendation.
                let fractional = (peak_total / rps).max(1e-9);
                let n = (fractional.ceil() as usize).max(1);
                (n, current_servers as f64 * rps, true)
            }
            // SLO unreachable on the fitted curves: keep the allocation and
            // report the pool as out of headroom — it cannot meet QoS.
            None => (current_servers, peak_total, false),
        };

        let projection = self.projector.project(supportable);
        Some(PoolAssessment {
            sizing: PoolSizing {
                pool: PoolId(0), // stamped by the caller
                current_servers,
                min_servers,
                peak_total_rps: peak_total,
            },
            window,
            band: projection.band,
            projection,
            cpu_r_squared: cpu_fit.r_squared,
            latency_r_squared: lat_r2,
            latency_p95_stream_ms: self.latency_stream.estimate(),
            drift_events: self.drift_events,
            slo_reachable,
        })
    }
}

/// The streaming incremental capacity planner.
///
/// Feed it snapshots with [`observe`], or let it drive a simulation with
/// [`run`] / [`run_closed_loop`]. Read decisions through
/// [`assessments`], [`drain_recommendations`], or the shared
/// [`SizingPlanner`] interface.
///
/// [`observe`]: OnlinePlanner::observe
/// [`run`]: OnlinePlanner::run
/// [`run_closed_loop`]: OnlinePlanner::run_closed_loop
/// [`assessments`]: OnlinePlanner::assessments
/// [`drain_recommendations`]: OnlinePlanner::drain_recommendations
#[derive(Debug, Clone)]
pub struct OnlinePlanner {
    config: OnlinePlannerConfig,
    default_qos: QosRequirement,
    qos: BTreeMap<PoolId, QosRequirement>,
    trackers: BTreeMap<PoolId, PoolTracker>,
    assessments: BTreeMap<PoolId, PoolAssessment>,
    pending: Vec<ResizeRecommendation>,
    last_target: BTreeMap<PoolId, usize>,
    windows_seen: u64,
}

impl OnlinePlanner {
    /// A planner applying `default_qos` to every pool not overridden with
    /// [`set_qos`].
    ///
    /// [`set_qos`]: OnlinePlanner::set_qos
    pub fn new(config: OnlinePlannerConfig, default_qos: QosRequirement) -> Self {
        OnlinePlanner {
            config,
            default_qos,
            qos: BTreeMap::new(),
            trackers: BTreeMap::new(),
            assessments: BTreeMap::new(),
            pending: Vec::new(),
            last_target: BTreeMap::new(),
            windows_seen: 0,
        }
    }

    /// Overrides the QoS requirement for one pool.
    pub fn set_qos(&mut self, pool: PoolId, qos: QosRequirement) -> &mut Self {
        self.qos.insert(pool, qos);
        self
    }

    /// Builder form of [`OnlinePlanner::set_qos`].
    pub fn with_qos(mut self, pool: PoolId, qos: QosRequirement) -> Self {
        self.qos.insert(pool, qos);
        self
    }

    /// The tuning in effect.
    pub fn config(&self) -> &OnlinePlannerConfig {
        &self.config
    }

    /// Windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// The QoS requirement used for `pool`.
    pub fn qos_for(&self, pool: PoolId) -> QosRequirement {
        self.qos.get(&pool).copied().unwrap_or(self.default_qos)
    }

    /// Consumes one fleet snapshot: O(servers) aggregation plus O(1)
    /// estimator updates per pool, and (on replan windows) the sizing
    /// re-derivation — itself O(window) per pool for the peak-percentile
    /// and max-allocation scans.
    pub fn observe(&mut self, snap: &WindowSnapshot<'_>) {
        self.windows_seen += 1;
        for (pool, agg) in PoolWindowAggregate::from_snapshot(snap) {
            let tracker =
                self.trackers.entry(pool).or_insert_with(|| PoolTracker::new(&self.config));
            tracker.update(agg);
        }
        if self.windows_seen.is_multiple_of(self.config.replan_every) {
            self.replan(snap.window);
        }
    }

    /// Re-derives every pool's assessment and queues recommendations.
    fn replan(&mut self, window: WindowIndex) {
        for (&pool, tracker) in &self.trackers {
            if tracker.window.len() < self.config.min_fit_windows {
                continue;
            }
            let qos = self.qos.get(&pool).copied().unwrap_or(self.default_qos);
            if let Some(mut assessment) = tracker.assess(window, &qos) {
                assessment.sizing.pool = pool;
                let current = assessment.sizing.current_servers;
                let target = assessment.sizing.min_servers;
                let diff = current.abs_diff(target);
                let changed = self.last_target.get(&pool) != Some(&target);
                if changed && diff >= self.config.deadband_servers.max(1) {
                    self.pending.push(ResizeRecommendation {
                        pool,
                        window,
                        from_servers: current,
                        to_servers: target,
                        action: if target < current {
                            ResizeAction::Shrink
                        } else {
                            ResizeAction::Grow
                        },
                        band: assessment.band,
                    });
                    self.last_target.insert(pool, target);
                }
                self.assessments.insert(pool, assessment);
            }
        }
    }

    /// The latest per-pool assessments.
    pub fn assessments(&self) -> &BTreeMap<PoolId, PoolAssessment> {
        &self.assessments
    }

    /// Takes the recommendations queued since the last drain.
    pub fn drain_recommendations(&mut self) -> Vec<ResizeRecommendation> {
        std::mem::take(&mut self.pending)
    }

    /// Drives `sim` for `windows` windows, observing every snapshot
    /// (open loop: recommendations accumulate but are not applied).
    pub fn run(&mut self, sim: &mut Simulation, windows: u64) -> Vec<ResizeRecommendation> {
        let mut all = Vec::new();
        for _ in 0..windows {
            let snap = sim.step_snapshot();
            self.observe(&snap);
            all.extend(self.drain_recommendations());
        }
        all
    }

    /// Drives `sim` for `windows` windows and *applies* each shrink
    /// recommendation via [`Simulation::schedule_resize`] for the following
    /// window — the paper's server-reduction lever under streaming control.
    /// Grow recommendations are clamped to the pool's physical size.
    /// Returns every recommendation applied.
    pub fn run_closed_loop(
        &mut self,
        sim: &mut Simulation,
        windows: u64,
    ) -> Vec<ResizeRecommendation> {
        let mut applied = Vec::new();
        for _ in 0..windows {
            let snap = sim.step_snapshot();
            self.observe(&snap);
            let next = sim.current_window();
            for mut rec in self.drain_recommendations() {
                let physical = sim.fleet().pool(rec.pool).map(|p| p.size()).unwrap_or(0);
                if physical == 0 {
                    continue;
                }
                // Record what is actually scheduled, not the raw ask.
                rec.to_servers = rec.to_servers.clamp(1, physical);
                if sim.schedule_resize(rec.pool, next, rec.to_servers).is_ok() {
                    applied.push(rec);
                }
            }
        }
        applied
    }
}

impl SizingPlanner for OnlinePlanner {
    fn planner_name(&self) -> &'static str {
        "online"
    }

    fn sizings(&self) -> Vec<PoolSizing> {
        // BTreeMap iteration keeps pools sorted.
        self.assessments.values().map(|a| a.sizing).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_cluster::sim::SnapshotRow;
    use headroom_telemetry::ids::{DatacenterId, ServerId};

    /// Synthetic snapshot rows for one pool on the paper's pool-B response
    /// curves at the given per-server workload.
    fn rows_at(rps: f64, servers: u32) -> Vec<SnapshotRow> {
        (0..servers)
            .map(|s| SnapshotRow {
                server: ServerId(s),
                pool: PoolId(0),
                datacenter: DatacenterId(0),
                online: true,
                rps,
                cpu_pct: 0.028 * rps + 1.37,
                latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
            })
            .collect()
    }

    #[test]
    fn undersized_pool_gets_grow_recommendation() {
        // Four servers whose workload ramps far past what they can serve
        // within a 32.5 ms SLO (~595 RPS/server on the pool-B curve): the
        // planner must ask for *more* capacity than exists.
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..200u64 {
            let rps = 100.0 + 3.5 * i as f64; // ramps to 800 RPS/server
            let rows = rows_at(rps, 4);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        let assessment = &planner.assessments()[&PoolId(0)];
        assert!(
            assessment.sizing.min_servers > assessment.sizing.current_servers,
            "undersized: needs {} > has {}",
            assessment.sizing.min_servers,
            assessment.sizing.current_servers
        );
        assert!(assessment.band.needs_capacity(), "band {}", assessment.band);
        let grow = recs
            .iter()
            .find(|r| r.action == ResizeAction::Grow)
            .expect("a grow recommendation was emitted");
        assert!(grow.to_servers > grow.from_servers);
        // Peak total ≈ 800×4 = 3200 RPS; ~595 RPS/server at the SLO ⇒ 6.
        assert_eq!(grow.from_servers, 4);
        assert!(grow.to_servers >= 5 && grow.to_servers <= 7, "to {}", grow.to_servers);
    }

    #[test]
    fn unreachable_latency_slo_keeps_current_allocation() {
        // The pool-B latency curve bottoms out around 30.7 ms: a 5 ms SLO
        // is unreachable at any workload. Like the batch optimizer, the
        // planner must keep the current allocation and must not size (or
        // shrink) from the CPU constraint alone.
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(5.0).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..120u64 {
            let rps = 150.0 + 2.0 * i as f64;
            let rows = rows_at(rps, 10);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        let assessment = &planner.assessments()[&PoolId(0)];
        assert!(!assessment.slo_reachable);
        assert_eq!(assessment.sizing.min_servers, assessment.sizing.current_servers);
        assert_eq!(assessment.band, HeadroomBand::Exhausted, "cannot meet QoS");
        assert!(recs.is_empty(), "no recommendation from an unreachable SLO: {recs:?}");
    }

    #[test]
    fn overprovisioned_pool_still_clamps_nothing_but_recommends_shrink() {
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            ..OnlinePlannerConfig::default()
        };
        let mut planner =
            OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for i in 0..120u64 {
            // Gentle diurnal sweep well under the SLO workload.
            let rps = 150.0 + 100.0 * ((i as f64 / 60.0) * std::f64::consts::PI).sin().abs();
            let rows = rows_at(rps, 10);
            planner.observe(&WindowSnapshot { window: WindowIndex(i), rows: &rows });
            recs.extend(planner.drain_recommendations());
        }
        let shrink =
            recs.iter().find(|r| r.action == ResizeAction::Shrink).expect("shrink recommended");
        assert!(shrink.to_servers < 10);
        assert!(shrink.to_servers >= 1);
    }
}
