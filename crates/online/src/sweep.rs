//! The parallel sweep engine: shard fan-out, deterministic merge.
//!
//! [`SweepEngine`] is the fleet-level half of the shard-and-merge planner
//! core. It owns one [`PoolShard`] per pool (kept sorted by pool id), and
//! each window it *sweeps* the fleet: pools are partitioned into contiguous
//! chunks, the chunks are fanned out across scoped worker threads, and each
//! worker aggregates its pools' snapshot rows, updates its shards, and (on
//! replan windows) re-derives sizing decisions. The per-chunk outputs are
//! then merged in pool order.
//!
//! **Determinism is a hard invariant, not an aspiration.** A shard's update
//! touches only its own state, every floating-point operation happens
//! inside exactly one shard regardless of how pools are chunked, and the
//! merge concatenates chunk outputs in pool order — so the engine's
//! assessments and recommendations are *bit-identical* for any thread
//! count, including fully sequential execution. Property tests pin this.
//!
//! Ingestion is partition-friendly: feed
//! [`headroom_cluster::sim::PartitionedSnapshot`]s (from
//! `Simulation::step_snapshot_partitioned`) and each worker reads its
//! pools' rows as plain sub-slices — aggregation itself parallelizes and
//! the engine has no serialization point beyond the final merge.

use std::collections::BTreeMap;

use headroom_cluster::sim::{PartitionedSnapshot, SnapshotRow, WindowSnapshot};
use headroom_core::slo::QosRequirement;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;

use crate::planner::{
    OnlinePlannerConfig, PoolAssessment, PoolWindowAggregate, ResizeRecommendation,
};
use crate::shard::PoolShard;

/// Per-pool input of one sweep: either a pre-computed aggregate or the
/// pool's raw snapshot rows (aggregated inside the owning worker).
#[derive(Debug, Clone, Copy)]
enum PoolInput<'a> {
    Aggregate(PoolWindowAggregate),
    Rows(&'a [SnapshotRow]),
}

/// The parallel shard-and-merge planner core.
///
/// Wraps the planning state of a whole fleet; [`crate::OnlinePlanner`] is a
/// thin facade over this type. Use it directly when driving partitioned
/// snapshots or tuning the fan-out width.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    config: OnlinePlannerConfig,
    default_qos: QosRequirement,
    qos: BTreeMap<PoolId, QosRequirement>,
    /// One shard per pool, sorted by pool id — the chunked fan-out and the
    /// in-order merge both lean on this ordering.
    shards: Vec<(PoolId, PoolShard)>,
    assessments: BTreeMap<PoolId, PoolAssessment>,
    pending: Vec<ResizeRecommendation>,
    windows_seen: u64,
}

impl SweepEngine {
    /// An engine applying `default_qos` to every pool not overridden with
    /// [`set_qos`].
    ///
    /// [`set_qos`]: SweepEngine::set_qos
    pub fn new(config: OnlinePlannerConfig, default_qos: QosRequirement) -> Self {
        SweepEngine {
            config,
            default_qos,
            qos: BTreeMap::new(),
            shards: Vec::new(),
            assessments: BTreeMap::new(),
            pending: Vec::new(),
            windows_seen: 0,
        }
    }

    /// Overrides the QoS requirement for one pool.
    pub fn set_qos(&mut self, pool: PoolId, qos: QosRequirement) -> &mut Self {
        self.qos.insert(pool, qos);
        self
    }

    /// The tuning in effect.
    pub fn config(&self) -> &OnlinePlannerConfig {
        &self.config
    }

    /// Windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Pools currently tracked.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The QoS requirement used for `pool`.
    pub fn qos_for(&self, pool: PoolId) -> QosRequirement {
        self.qos.get(&pool).copied().unwrap_or(self.default_qos)
    }

    /// The fan-out width in effect: `config.threads`, with `0` resolving to
    /// the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.config.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }

    /// The latest per-pool assessments.
    pub fn assessments(&self) -> &BTreeMap<PoolId, PoolAssessment> {
        &self.assessments
    }

    /// Takes the recommendations queued since the last drain.
    pub fn drain_recommendations(&mut self) -> Vec<ResizeRecommendation> {
        std::mem::take(&mut self.pending)
    }

    /// Consumes one flat fleet snapshot (aggregation on the calling thread,
    /// shard updates fanned out).
    pub fn observe(&mut self, snap: &WindowSnapshot<'_>) {
        let aggregates = PoolWindowAggregate::from_snapshot(snap);
        let inputs: Vec<(PoolId, PoolInput<'_>)> =
            aggregates.iter().map(|&(pool, agg)| (pool, PoolInput::Aggregate(agg))).collect();
        self.sweep(snap.window, &inputs);
    }

    /// Consumes one pool-partitioned fleet snapshot: row aggregation happens
    /// inside each worker, so ingestion has no serialization point.
    pub fn observe_partitioned(&mut self, snap: &PartitionedSnapshot<'_>) {
        let mut inputs: Vec<(PoolId, PoolInput<'_>)> = snap
            .pools
            .iter()
            .map(|slice| (slice.pool, PoolInput::Rows(snap.pool_rows(slice))))
            .collect();
        // Built fleets emit pools in ascending-id order already; sorting is
        // cheap insurance for hand-rolled snapshots.
        inputs.sort_by_key(|&(pool, _)| pool);
        self.sweep(snap.window, &inputs);
    }

    /// Feeds pre-aggregated per-pool rows (the shard-level unit test hook).
    pub fn observe_aggregates(
        &mut self,
        window: WindowIndex,
        aggregates: &[(PoolId, PoolWindowAggregate)],
    ) {
        let mut inputs: Vec<(PoolId, PoolInput<'_>)> =
            aggregates.iter().map(|&(pool, agg)| (pool, PoolInput::Aggregate(agg))).collect();
        inputs.sort_by_key(|&(pool, _)| pool);
        self.sweep(window, &inputs);
    }

    /// One window of fleet work: fan shard chunks out, merge in pool order.
    fn sweep(&mut self, window: WindowIndex, inputs: &[(PoolId, PoolInput<'_>)]) {
        self.windows_seen += 1;
        for &(pool, _) in inputs {
            if let Err(at) = self.shards.binary_search_by_key(&pool, |&(p, _)| p) {
                self.shards.insert(at, (pool, PoolShard::new(&self.config)));
            }
        }
        let replan = self.windows_seen.is_multiple_of(self.config.replan_every);
        let threads = self.effective_threads();

        // Split the borrows: workers mutate shards, share the rest.
        let config = &self.config;
        let qos = &self.qos;
        let default_qos = self.default_qos;
        let shards = &mut self.shards;

        let results = if threads <= 1 || shards.len() <= 1 {
            sweep_chunk(shards, inputs, window, replan, config, qos, default_qos)
        } else {
            let chunk_len = shards.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .chunks_mut(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            sweep_chunk(chunk, inputs, window, replan, config, qos, default_qos)
                        })
                    })
                    .collect();
                // Chunks are contiguous runs of the pool-sorted shard list,
                // so in-order concatenation *is* the deterministic merge.
                let mut merged = Vec::with_capacity(shards_len_hint(replan, inputs.len()));
                for handle in handles {
                    merged.extend(handle.join().expect("sweep worker panicked"));
                }
                merged
            })
        };

        for (pool, assessment, recommendation) in results {
            if let Some(a) = assessment {
                self.assessments.insert(pool, a);
            }
            if let Some(r) = recommendation {
                self.pending.push(r);
            }
        }
    }
}

fn shards_len_hint(replan: bool, pools: usize) -> usize {
    if replan {
        pools
    } else {
        0
    }
}

/// Processes one contiguous chunk of shards for one window. Pure function
/// of the chunk's own state plus shared read-only context — the unit over
/// which the engine parallelizes.
#[allow(clippy::type_complexity)]
fn sweep_chunk(
    shards: &mut [(PoolId, PoolShard)],
    inputs: &[(PoolId, PoolInput<'_>)],
    window: WindowIndex,
    replan: bool,
    config: &OnlinePlannerConfig,
    qos: &BTreeMap<PoolId, QosRequirement>,
    default_qos: QosRequirement,
) -> Vec<(PoolId, Option<PoolAssessment>, Option<ResizeRecommendation>)> {
    let mut out = Vec::new();
    for (pool, shard) in shards.iter_mut() {
        let aggregate =
            inputs.binary_search_by_key(pool, |&(p, _)| p).ok().and_then(|i| match inputs[i].1 {
                PoolInput::Aggregate(agg) => Some(agg),
                PoolInput::Rows(rows) => PoolWindowAggregate::from_rows(window, rows),
            });
        if let Some(agg) = aggregate {
            shard.observe(agg);
        }
        if replan {
            let pool_qos = qos.get(pool).copied().unwrap_or(default_qos);
            let (assessment, recommendation) = shard.replan(*pool, window, &pool_qos, config);
            if assessment.is_some() || recommendation.is_some() {
                out.push((*pool, assessment, recommendation));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::ids::{DatacenterId, ServerId};

    fn rows_for(pool: u32, rps: f64, servers: u32) -> Vec<SnapshotRow> {
        (0..servers)
            .map(|s| SnapshotRow {
                server: ServerId(pool * 1000 + s),
                pool: PoolId(pool),
                datacenter: DatacenterId(0),
                online: true,
                rps,
                cpu_pct: 0.028 * rps + 1.37,
                latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
            })
            .collect()
    }

    fn drive(threads: usize, pools: u32, windows: u64) -> SweepEngine {
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads,
            ..OnlinePlannerConfig::default()
        };
        let mut engine =
            SweepEngine::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        for w in 0..windows {
            let mut rows = Vec::new();
            let mut slices = Vec::new();
            for p in 0..pools {
                // Distinct diurnal-ish phase per pool.
                let rps = 200.0
                    + 150.0
                        * (((w + 20 * p as u64) as f64 / 80.0) * std::f64::consts::PI).sin().abs();
                let start = rows.len();
                rows.extend(rows_for(p, rps, 8 + p % 3));
                slices.push(headroom_cluster::sim::PoolSlice {
                    pool: PoolId(p),
                    start,
                    len: rows.len() - start,
                });
            }
            let snap = PartitionedSnapshot { window: WindowIndex(w), rows: &rows, pools: &slices };
            engine.observe_partitioned(&snap);
        }
        engine
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut sequential = drive(1, 7, 90);
        let expected_assessments = sequential.assessments().clone();
        let expected_recs = sequential.drain_recommendations();
        assert!(!expected_assessments.is_empty(), "the sweep planned pools");
        for threads in [2, 3, 5, 8] {
            let mut sharded = drive(threads, 7, 90);
            assert_eq!(
                &expected_assessments,
                sharded.assessments(),
                "assessments differ at {threads} threads"
            );
            assert_eq!(
                expected_recs,
                sharded.drain_recommendations(),
                "recommendations differ at {threads} threads"
            );
        }
    }

    #[test]
    fn partitioned_and_flat_ingestion_agree() {
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads: 2,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut part = SweepEngine::new(config, qos);
        let mut flat = SweepEngine::new(config, qos);
        for w in 0..90u64 {
            let rps = 250.0 + 2.0 * w as f64;
            let mut rows = rows_for(0, rps, 6);
            rows.extend(rows_for(1, rps * 0.8, 9));
            let slices = vec![
                headroom_cluster::sim::PoolSlice { pool: PoolId(0), start: 0, len: 6 },
                headroom_cluster::sim::PoolSlice { pool: PoolId(1), start: 6, len: 9 },
            ];
            let snap = PartitionedSnapshot { window: WindowIndex(w), rows: &rows, pools: &slices };
            part.observe_partitioned(&snap);
            flat.observe(&snap.as_snapshot());
        }
        assert_eq!(part.assessments(), flat.assessments());
        assert_eq!(part.drain_recommendations(), flat.drain_recommendations());
    }
}
