//! The parallel sweep engine: shard fan-out, deterministic merge.
//!
//! [`SweepEngine`] is the fleet-level half of the shard-and-merge planner
//! core. It owns one [`PoolShard`] per pool (kept sorted by pool id) plus
//! the fleet's [`ShardStore`] — the slot-major planes holding every pool's
//! windowed buffers — and each window it *sweeps* the fleet: pools are
//! partitioned into contiguous chunks, the chunks are fanned out across a
//! long-lived [`headroom_exec::WorkerPool`], and each worker aggregates its
//! pools' snapshot rows, updates its shards through their store lanes, and
//! (on replan windows, or every window for pools urgently short of
//! capacity) re-derives sizing decisions. The per-chunk outputs are then
//! merged in pool order.
//!
//! Chunks are contiguous runs of the pool-sorted shard list, so each worker
//! owns a contiguous *lane range* of every store plane: a pool's planes are
//! touched by exactly one worker per window (thread-affine ownership) and
//! the per-plane traffic is a streaming pass over a dense slice. The
//! effective fan-out is clamped to `min(threads, ceil(pools /
//! min_pool_chunk))`, so a small fleet never pays hand-off overhead to
//! workers that would each receive a handful of pools.
//!
//! **Determinism is a hard invariant, not an aspiration.** A shard's update
//! touches only its own state (scalar state in the shard, windowed state in
//! its store lane), every floating-point operation happens inside exactly
//! one shard regardless of how pools are chunked, chunk boundaries are a
//! pure function of `(pool count, threads)`, and the merge reads the
//! per-chunk output buffers in chunk order — so the engine's assessments
//! and recommendations are *bit-identical* for any thread count, any
//! [`SweepExec`] mode, and any scheduling, including thread counts changed
//! mid-run via [`SweepEngine::set_threads`]. The sequential path drives the
//! very same lane-view kernels as the parallel one. Property tests pin
//! this.
//!
//! **The steady-state window path is allocation-free.** The input index,
//! the per-worker output buffers, the store planes, and the worker hand-off
//! (see `headroom_exec`) all reuse their storage window over window; a
//! warmed engine consuming partitioned snapshots allocates nothing on
//! non-replan windows (asserted by a counting-allocator test in
//! `crates/bench`).
//!
//! Ingestion is partition-friendly: feed
//! [`headroom_cluster::sim::PartitionedSnapshot`]s (from
//! `Simulation::step_snapshot_partitioned`) and each worker reads its
//! pools' rows as plain sub-slices — aggregation itself parallelizes and
//! the engine has no serialization point beyond the final merge.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;
use std::time::Instant;

use headroom_cluster::columns::{ColumnarSnapshot, SnapshotColumns};
use headroom_cluster::sim::{
    PartitionedSnapshot, SnapshotRow, StreamedKernels, StreamedSource, StreamedTileOut,
    StreamedWindow, WindowSnapshot,
};
use headroom_core::slo::QosRequirement;
use headroom_exec::WorkerPool;
use headroom_stats::persist::{Persist, PersistError, Reader, Writer};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;

use crate::planner::{
    persist_pool_id, persist_qos, restore_pool_id, restore_qos, OnlinePlannerConfig,
    PoolAssessment, PoolWindowAggregate, ResizeRecommendation, SweepExec,
};
use crate::shard::PoolShard;
use crate::store::{PassScratch, ShardStore, StoreView};

/// Per-pool input of one sweep: either a pre-computed aggregate or a
/// `(start, len)` range of the window's snapshot (rows or columns,
/// aggregated inside the owning worker against [`WindowData`]).
/// Range-based rather than slice-based so the engine's reusable input
/// buffer carries no borrow of the snapshot.
#[derive(Debug, Clone, Copy)]
enum PoolInput {
    Aggregate(PoolWindowAggregate),
    Rows {
        start: usize,
        len: usize,
    },
    /// A streamed slice: the metric columns do not exist yet — the worker
    /// evaluates the sim kernels for the slice into its pass scratch and
    /// aggregates from there. `pool_index` is the fleet partition index
    /// (slice order), which locates the pool's response model.
    Streamed {
        start: usize,
        len: usize,
        pool_index: usize,
    },
}

/// The window's backing snapshot storage, shared read-only with every
/// worker. Whichever layout backs the ranges, the per-pool aggregates are
/// bit-identical (columnar aggregation sums each counter column in the
/// same order the row loop would).
#[derive(Debug, Clone, Copy)]
enum WindowData<'a> {
    /// Inputs are pre-aggregated; there is nothing to index.
    None,
    /// Legacy row structs.
    Rows(&'a [SnapshotRow]),
    /// Struct-of-arrays columns — workers stream contiguous memory.
    Columns(&'a SnapshotColumns),
    /// Streamed kernel inputs — workers *generate* each pool's metric
    /// columns into tile-resident scratch (the sim-kernel pass) and
    /// aggregate them while still in cache; the fleet's metric columns
    /// are never materialised.
    Streamed(StreamedKernels<'a>),
}

/// Passes of the pass-structured window, in execution order: streamed
/// sim-kernel evaluation (pass 0, zero for materialised inputs), per-pool
/// aggregate computation (pass 1), the four windowed-plane passes, the
/// scalar shard pass, and replanning. Indexes into the per-pass timing
/// array [`SweepEngine::pass_ns`] returns; [`PASS_NAMES`] labels them.
pub const PASS_COUNT: usize = 8;

/// Human-readable labels for the [`PASS_COUNT`] passes, index-aligned with
/// [`SweepEngine::pass_ns`].
pub const PASS_NAMES: [&str; PASS_COUNT] =
    ["sim_kernel", "aggregate", "agg_ring", "totals", "alloc", "drift_ring", "scalar", "replan"];

/// Lanes per pass tile: passes 0–5 run over sub-ranges of this width so the
/// inter-pass scratch stays cache-resident while each pass within a tile
/// still walks its plane contiguously. Purely an execution knob — per-lane
/// work is independent of tile boundaries, so results are bit-identical for
/// any width.
const PASS_TILE: usize = 512;

/// One chunk's per-window working state: the recommendations its pools
/// emitted (in pool order), the inter-pass scratch, and the count of pools
/// that gained their *first* assessment this window (summed into the
/// engine's O(1) assessed-pool counter at merge). Assessments themselves
/// are *not* merged — each worker writes its pools' assessments in place
/// inside the [`PoolShard`]s (see [`AssessmentView`]), so the only
/// fleet-level per-window copy is the (rare) recommendation.
#[derive(Debug, Default)]
struct ChunkState {
    out: Vec<ResizeRecommendation>,
    scratch: PassScratch,
    newly_assessed: usize,
}

/// The parallel shard-and-merge planner core.
///
/// Wraps the planning state of a whole fleet; [`crate::OnlinePlanner`] is a
/// thin facade over this type. Use it directly when driving partitioned
/// snapshots or tuning the fan-out width.
///
/// # Example
///
/// Two pools planned from hand-rolled snapshot rows; the fan-out width is
/// purely an execution knob:
///
/// ```
/// use headroom_cluster::sim::{SnapshotRow, WindowSnapshot};
/// use headroom_core::slo::QosRequirement;
/// use headroom_online::planner::OnlinePlannerConfig;
/// use headroom_online::sweep::SweepEngine;
/// use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
/// use headroom_telemetry::time::WindowIndex;
///
/// let config = OnlinePlannerConfig {
///     window_capacity: 48,
///     min_fit_windows: 12,
///     threads: 2,
///     min_pool_chunk: 1, // a 2-pool demo fleet still fans out
///     ..OnlinePlannerConfig::default()
/// };
/// let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
/// let mut engine = SweepEngine::new(config, qos);
/// for w in 0..40u64 {
///     let mut rows = Vec::new();
///     for pool in 0..2u32 {
///         let rps = 250.0 + 40.0 * pool as f64 + (w % 13) as f64 * 9.0;
///         rows.extend((0..6).map(|s| SnapshotRow {
///             server: ServerId(pool * 100 + s),
///             pool: PoolId(pool),
///             datacenter: DatacenterId(0),
///             online: true,
///             rps,
///             cpu_pct: 0.028 * rps + 1.37,
///             latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
///             disk_queue: 1.0,
///             memory_pages_per_sec: 4_000.0,
///             network_mbps: 0.32 * rps,
///         }));
///     }
///     engine.observe(&WindowSnapshot { window: WindowIndex(w), rows: &rows });
/// }
/// assert_eq!(engine.assessments().len(), 2, "both pools planned");
/// assert!(engine.live_workers() > 0, "persistent workers parked between windows");
/// ```
#[derive(Debug)]
pub struct SweepEngine {
    config: OnlinePlannerConfig,
    default_qos: QosRequirement,
    qos: BTreeMap<PoolId, QosRequirement>,
    /// One shard per pool, sorted by pool id — the chunked fan-out and the
    /// in-order merge both lean on this ordering. Each shard also carries
    /// its own latest assessment, so this array *is* the fleet state;
    /// [`SweepEngine::assessments`] borrows it instead of copying.
    shards: Vec<(PoolId, PoolShard)>,
    /// The fleet's windowed shard state, slot-major: lane *i* of every
    /// plane belongs to `shards[i]`. Kept in lockstep with `shards` — a
    /// pool arrival remaps the lanes to match the new sorted order.
    store: ShardStore,
    pending: Vec<ResizeRecommendation>,
    windows_seen: u64,
    /// Pools whose shard currently holds an assessment. An assessment is
    /// written once and only ever overwritten (never cleared — see
    /// [`PoolShard::assessment`]), so this is a monotonic count maintained
    /// at merge time, making [`AssessmentView::len`] O(1).
    assessed: usize,
    /// Reusable per-window input index (cleared, never dropped).
    input_buf: Vec<(PoolId, PoolInput)>,
    /// Reusable per-chunk working state, indexed by chunk; reading the
    /// output buffers in index order *is* the deterministic merge.
    chunk_outs: Vec<ChunkState>,
    /// Accumulated per-pass nanoseconds (see [`PASS_NAMES`]), populated on
    /// single-chunk windows when [`enable_pass_timing`] was called.
    /// Execution telemetry only — never part of the planner's logical
    /// state.
    ///
    /// [`enable_pass_timing`]: SweepEngine::enable_pass_timing
    pass_ns: [u64; PASS_COUNT],
    time_passes: bool,
    /// Long-lived workers (persistent mode). Execution state only — never
    /// part of the planner's logical state.
    workers: WorkerPool,
}

impl Clone for SweepEngine {
    /// Clones the planner state. The clone starts with an empty worker
    /// pool and scratch buffers — threads and caches are execution detail,
    /// rebuilt lazily on the clone's first sweep.
    fn clone(&self) -> Self {
        SweepEngine {
            config: self.config,
            default_qos: self.default_qos,
            qos: self.qos.clone(),
            shards: self.shards.clone(),
            store: self.store.clone(),
            pending: self.pending.clone(),
            windows_seen: self.windows_seen,
            assessed: self.assessed,
            input_buf: Vec::new(),
            chunk_outs: Vec::new(),
            pass_ns: [0; PASS_COUNT],
            time_passes: false,
            workers: WorkerPool::new(),
        }
    }
}

impl SweepEngine {
    /// An engine applying `default_qos` to every pool not overridden with
    /// [`set_qos`].
    ///
    /// [`set_qos`]: SweepEngine::set_qos
    pub fn new(config: OnlinePlannerConfig, default_qos: QosRequirement) -> Self {
        SweepEngine {
            store: ShardStore::new(config.window_capacity, config.drift.short_window.max(2)),
            config,
            default_qos,
            qos: BTreeMap::new(),
            shards: Vec::new(),
            pending: Vec::new(),
            windows_seen: 0,
            assessed: 0,
            input_buf: Vec::new(),
            chunk_outs: Vec::new(),
            pass_ns: [0; PASS_COUNT],
            time_passes: false,
            workers: WorkerPool::new(),
        }
    }

    /// Overrides the QoS requirement for one pool.
    pub fn set_qos(&mut self, pool: PoolId, qos: QosRequirement) -> &mut Self {
        self.qos.insert(pool, qos);
        self
    }

    /// Changes the fan-out width mid-run. Purely an execution knob: the
    /// worker pool grows (or idles surplus workers) lazily, and outputs are
    /// bit-identical before, across, and after the change.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Changes the execution mode mid-run. Like [`set_threads`], purely an
    /// execution knob — a restored checkpoint can be driven in either mode
    /// and the outputs stay bit-identical.
    ///
    /// [`set_threads`]: SweepEngine::set_threads
    pub fn set_exec(&mut self, exec: SweepExec) -> &mut Self {
        self.config.exec = exec;
        self
    }

    /// The tuning in effect.
    pub fn config(&self) -> &OnlinePlannerConfig {
        &self.config
    }

    /// Windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Pools currently tracked.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The QoS requirement used for `pool`.
    pub fn qos_for(&self, pool: PoolId) -> QosRequirement {
        self.qos.get(&pool).copied().unwrap_or(self.default_qos)
    }

    /// The fan-out width in effect: `config.threads`, with `0` resolving to
    /// the machine's available parallelism. The per-window sweep further
    /// clamps this to `ceil(pools / min_pool_chunk)` so a small fleet is
    /// never oversubscribed.
    pub fn effective_threads(&self) -> usize {
        match self.config.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }

    /// Worker threads currently alive in the persistent pool (0 before the
    /// first parallel sweep, and always 0 in [`SweepExec::Scoped`] mode).
    pub fn live_workers(&self) -> usize {
        self.workers.spawned_workers()
    }

    /// The latest per-pool assessments — a borrowed, ordered view over the
    /// shard array (assessments live inside their shards; nothing is
    /// copied to read them).
    pub fn assessments(&self) -> AssessmentView<'_> {
        AssessmentView { shards: &self.shards, assessed: self.assessed }
    }

    /// Starts recording per-pass wall time (and zeroes any prior counts).
    /// Only single-chunk windows are timed — at more than one chunk the
    /// passes run concurrently across workers and a per-pass wall-clock sum
    /// would be meaningless — so measure at `threads: 1`. Timing costs a
    /// few `Instant` reads per tile and allocates nothing.
    pub fn enable_pass_timing(&mut self) -> &mut Self {
        self.time_passes = true;
        self.pass_ns = [0; PASS_COUNT];
        self
    }

    /// Accumulated nanoseconds per pass since [`enable_pass_timing`],
    /// index-aligned with [`PASS_NAMES`]. All zero unless timing is enabled
    /// and single-chunk windows ran.
    ///
    /// [`enable_pass_timing`]: SweepEngine::enable_pass_timing
    pub fn pass_ns(&self) -> [u64; PASS_COUNT] {
        self.pass_ns
    }

    /// Takes the recommendations queued since the last drain.
    pub fn drain_recommendations(&mut self) -> Vec<ResizeRecommendation> {
        std::mem::take(&mut self.pending)
    }

    /// Consumes one flat fleet snapshot (aggregation on the calling thread,
    /// shard updates fanned out).
    pub fn observe(&mut self, snap: &WindowSnapshot<'_>) {
        let aggregates = PoolWindowAggregate::from_snapshot(snap);
        let mut inputs = std::mem::take(&mut self.input_buf);
        inputs.clear();
        inputs.extend(aggregates.iter().map(|&(pool, agg)| (pool, PoolInput::Aggregate(agg))));
        inputs.sort_unstable_by_key(|&(pool, _)| pool);
        self.sweep(snap.window, WindowData::None, &inputs);
        self.input_buf = inputs;
    }

    /// Consumes one pool-partitioned fleet snapshot: row aggregation happens
    /// inside each worker, so ingestion has no serialization point. This is
    /// the allocation-free steady-state path of the legacy row layout.
    pub fn observe_partitioned(&mut self, snap: &PartitionedSnapshot<'_>) {
        let mut inputs = std::mem::take(&mut self.input_buf);
        inputs.clear();
        inputs.extend(
            snap.pools
                .iter()
                .map(|slice| (slice.pool, PoolInput::Rows { start: slice.start, len: slice.len })),
        );
        // Built fleets emit pools in ascending-id order already; sorting is
        // cheap insurance for hand-rolled snapshots. Unstable sort: keys are
        // unique (one slice per pool), so the result is deterministic and no
        // merge buffer is allocated.
        inputs.sort_unstable_by_key(|&(pool, _)| pool);
        self.sweep(snap.window, WindowData::Rows(snap.rows), &inputs);
        self.input_buf = inputs;
    }

    /// Consumes one columnar fleet snapshot — the struct-of-arrays hot
    /// path: each worker aggregates its pools' counters from contiguous
    /// column slices (dense streaming reads, no per-row branch), and the
    /// resulting aggregates are bit-identical to the row paths'. Equally
    /// allocation-free in the steady state.
    pub fn observe_columns(&mut self, snap: &ColumnarSnapshot<'_>) {
        let mut inputs = std::mem::take(&mut self.input_buf);
        inputs.clear();
        inputs.extend(
            snap.pools
                .iter()
                .map(|slice| (slice.pool, PoolInput::Rows { start: slice.start, len: slice.len })),
        );
        inputs.sort_unstable_by_key(|&(pool, _)| pool);
        self.sweep(snap.window, WindowData::Columns(snap.columns), &inputs);
        self.input_buf = inputs;
    }

    /// Consumes one streamed window (from `Simulation::step_streamed`) —
    /// the fused closed-loop hot path: for kernel-backed windows each
    /// worker *generates* its pools' metric columns into tile-resident
    /// scratch and aggregates them in the same tile pass, so the fleet's
    /// columns never round-trip DRAM between simulator and planner.
    /// Materialised fallbacks (recording policies whose store writes are
    /// inherently sequential) take the columnar path unchanged. Planner
    /// outputs are bit-identical to both materialised layouts either way.
    pub fn observe_streamed(&mut self, win: &StreamedWindow<'_>) {
        let mut inputs = std::mem::take(&mut self.input_buf);
        inputs.clear();
        match win.source {
            StreamedSource::Columns(cols) => {
                inputs.extend(win.pools.iter().map(|slice| {
                    (slice.pool, PoolInput::Rows { start: slice.start, len: slice.len })
                }));
                inputs.sort_unstable_by_key(|&(pool, _)| pool);
                self.sweep(win.window, WindowData::Columns(cols), &inputs);
            }
            StreamedSource::Kernels(kernels) => {
                inputs.extend(win.pools.iter().enumerate().map(|(pool_index, slice)| {
                    (
                        slice.pool,
                        PoolInput::Streamed { start: slice.start, len: slice.len, pool_index },
                    )
                }));
                inputs.sort_unstable_by_key(|&(pool, _)| pool);
                self.sweep(win.window, WindowData::Streamed(kernels), &inputs);
            }
        }
        self.input_buf = inputs;
    }

    /// Feeds pre-aggregated per-pool rows (the shard-level unit test hook).
    pub fn observe_aggregates(
        &mut self,
        window: WindowIndex,
        aggregates: &[(PoolId, PoolWindowAggregate)],
    ) {
        let mut inputs = std::mem::take(&mut self.input_buf);
        inputs.clear();
        inputs.extend(aggregates.iter().map(|&(pool, agg)| (pool, PoolInput::Aggregate(agg))));
        inputs.sort_unstable_by_key(|&(pool, _)| pool);
        self.sweep(window, WindowData::None, &inputs);
        self.input_buf = inputs;
    }

    /// Registers pools seen for the first time: rebuilds the sorted shard
    /// list in one linear merge and remaps the store so every surviving
    /// lane follows its pool to its new position. O(pools + arrivals) — a
    /// burst of arrivals costs one merge, not one `Vec::insert` each — and
    /// a window without arrivals does nothing beyond the lookups the sweep
    /// needed anyway.
    fn admit_new_pools(&mut self, inputs: &[(PoolId, PoolInput)]) {
        // Arrival detection is a linear merge over the two pool-sorted
        // lists, not a binary search per input: per-input probes gather
        // ~log n cold cache lines each from the ~1 KiB shard elements,
        // which at fleet scale costs more per window than a whole observe
        // pass, while the cursor walk below is one constant-stride read
        // the prefetcher covers.
        let mut missing: Vec<PoolId> = Vec::new();
        let mut cursor = 0usize;
        for &(pool, _) in inputs {
            while cursor < self.shards.len() && self.shards[cursor].0 < pool {
                cursor += 1;
            }
            if !(cursor < self.shards.len() && self.shards[cursor].0 == pool) {
                missing.push(pool);
            }
        }
        if missing.is_empty() {
            return;
        }
        missing.sort_unstable();
        missing.dedup();
        let old = std::mem::take(&mut self.shards);
        let mut mapping = Vec::with_capacity(old.len());
        self.shards.reserve(old.len() + missing.len());
        let mut arrivals = missing.iter().peekable();
        for (pool, shard) in old {
            while let Some(&p) = arrivals.next_if(|&&p| p < pool) {
                self.shards.push((p, PoolShard::new(&self.config)));
            }
            mapping.push(self.shards.len());
            self.shards.push((pool, shard));
        }
        for &p in arrivals {
            self.shards.push((p, PoolShard::new(&self.config)));
        }
        self.store.remap(&mapping, self.shards.len());
    }

    /// One window of fleet work: fan shard chunks out, merge in pool order.
    fn sweep(&mut self, window: WindowIndex, data: WindowData<'_>, inputs: &[(PoolId, PoolInput)]) {
        self.windows_seen += 1;
        self.admit_new_pools(inputs);
        if self.shards.is_empty() {
            return;
        }
        let replan = self.windows_seen.is_multiple_of(self.config.replan_every);
        // Clamp the fan-out so every worker gets at least `min_pool_chunk`
        // pools: an 8-pool fleet at threads=4 runs on the calling thread
        // alone instead of paying three hand-offs for two pools each.
        let min_chunk = self.config.min_pool_chunk.max(1);
        let threads = self.effective_threads().min(self.shards.len().div_ceil(min_chunk)).max(1);
        // One contiguous chunk per thread (the canonical geometry — see
        // `headroom_exec::chunk_len`): chunk size grows with pools/threads,
        // so a 16384-pool fleet still hands each worker exactly one long
        // streaming run per window.
        let chunk_len = headroom_exec::chunk_len(self.shards.len(), threads);
        let chunks = self.shards.len().div_ceil(chunk_len);
        if self.chunk_outs.len() < chunks {
            self.chunk_outs.resize_with(chunks, ChunkState::default);
        }

        // Split the borrows: workers mutate shards and their own output
        // buffer, share the rest. The store is handed out as a raw view;
        // chunk `i` touches exactly lanes `[i*chunk_len, (i+1)*chunk_len)`
        // — the same pairwise-disjoint ranges the shard slices split into —
        // which is precisely the view's safety contract (see
        // `crate::store`). The view borrows nothing, so the sequential path
        // below drives the identical kernels.
        let view = self.store.view();
        let config = &self.config;
        let qos = &self.qos;
        let default_qos = self.default_qos;
        let run = |chunk: usize, shards: &mut [(PoolId, PoolShard)], state: &mut ChunkState| {
            sweep_chunk(
                shards,
                chunk * chunk_len,
                view,
                inputs,
                data,
                window,
                replan,
                config,
                qos,
                default_qos,
                state,
                None,
            );
        };
        if chunks <= 1 {
            // The single-chunk path runs on the calling thread, where
            // per-pass wall time is well-defined; hand it the timing array
            // when enabled (the closure above is shared across workers and
            // always passes None).
            let timer = self.time_passes.then_some(&mut self.pass_ns);
            sweep_chunk(
                &mut self.shards,
                0,
                view,
                inputs,
                data,
                window,
                replan,
                config,
                qos,
                default_qos,
                &mut self.chunk_outs[0],
                timer,
            );
        } else {
            match self.config.exec {
                SweepExec::Persistent => self.workers.run_chunks(
                    &mut self.shards,
                    chunk_len,
                    &mut self.chunk_outs[..chunks],
                    run,
                ),
                SweepExec::Scoped => headroom_exec::scoped_chunks(
                    &mut self.shards,
                    chunk_len,
                    &mut self.chunk_outs[..chunks],
                    &run,
                ),
            }
        }

        // Chunks are contiguous runs of the pool-sorted shard list, so
        // draining the chunk buffers in index order *is* the deterministic
        // merge (and keeps their capacity for the next window). Assessments
        // were written into their shards by the workers; only the (rare)
        // recommendations and the first-assessment counts cross the merge.
        for state in &mut self.chunk_outs[..chunks] {
            self.pending.append(&mut state.out);
            self.assessed += state.newly_assessed;
        }
    }
}

impl Persist for SweepEngine {
    /// Persists the planner's *logical* state — config, QoS table, shards
    /// with their store lanes, pending recommendations, window cursor. Each
    /// shard's scalar state is immediately followed by its lane's windowed
    /// state, serialized in normalized (rotation-free) form — so the bytes
    /// are a pure function of logical state, regardless of where the ring
    /// cursors physically sit. Execution state (scratch buffers, the worker
    /// pool) is never written: like [`SweepEngine::clone`], a restored
    /// engine rebuilds threads and caches lazily on its first sweep, which
    /// is exactly why a checkpoint taken under one `(threads, exec)`
    /// setting restores bit-identically under any other.
    fn persist(&self, w: &mut Writer) {
        self.config.persist(w);
        persist_qos(&self.default_qos, w);
        w.put_usize(self.qos.len());
        for (pool, qos) in &self.qos {
            persist_pool_id(pool, w);
            persist_qos(qos, w);
        }
        w.put_usize(self.shards.len());
        for (lane, (pool, shard)) in self.shards.iter().enumerate() {
            persist_pool_id(pool, w);
            shard.persist(w);
            self.store.persist_lane(lane, w);
        }
        self.pending.persist(w);
        w.put_u64(self.windows_seen);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let config = OnlinePlannerConfig::restore(r)?;
        let default_qos = restore_qos(r)?;
        let qos_len = r.take_usize()?;
        if qos_len > r.remaining() {
            return Err(PersistError::Invalid("qos table length exceeds remaining stream"));
        }
        let mut qos = BTreeMap::new();
        for _ in 0..qos_len {
            let pool = restore_pool_id(r)?;
            qos.insert(pool, restore_qos(r)?);
        }
        let shard_len = r.take_usize()?;
        if shard_len > r.remaining() {
            return Err(PersistError::Invalid("shard list length exceeds remaining stream"));
        }
        let mut store = ShardStore::with_lanes(
            config.window_capacity,
            config.drift.short_window.max(2),
            shard_len,
        );
        let mut shards: Vec<(PoolId, PoolShard)> = Vec::with_capacity(shard_len);
        for lane in 0..shard_len {
            let pool = restore_pool_id(r)?;
            if let Some(&(last, _)) = shards.last() {
                if last >= pool {
                    return Err(PersistError::Invalid("shard list not sorted by pool id"));
                }
            }
            shards.push((pool, PoolShard::restore(r)?));
            store.restore_lane(lane, r)?;
        }
        // Derived, not serialized: recount so checkpoints from before the
        // counter existed restore correctly too.
        let assessed = shards.iter().filter(|(_, s)| s.assessment().is_some()).count();
        Ok(SweepEngine {
            config,
            default_qos,
            qos,
            shards,
            store,
            pending: Vec::restore(r)?,
            windows_seen: r.take_u64()?,
            assessed,
            input_buf: Vec::new(),
            chunk_outs: Vec::new(),
            pass_ns: [0; PASS_COUNT],
            time_passes: false,
            workers: WorkerPool::new(),
        })
    }
}

/// Processes one contiguous chunk of shards for one window, appending the
/// pools' due recommendations to `state.out` in pool order (assessments
/// are written in place inside the shards). `lane_base` is the chunk's
/// first lane in the store — shard `i` of the chunk owns lane
/// `lane_base + i` of the `view`, a range disjoint from every other
/// chunk's by the same geometry that made the shard slices disjoint. Pure
/// function of the chunk's own state plus shared read-only context — the
/// unit over which the engine parallelizes. Allocation-free once the chunk
/// state has capacity.
///
/// The window runs **plane-at-a-time**, not pool-at-a-time: over each
/// [`PASS_TILE`]-lane tile, pass 0 computes every pool's aggregate into
/// the scratch, passes 1–4 push each windowed plane across the whole tile
/// (aggregate ring, sorted totals, alloc deque, drift ring — see
/// [`StoreView`]'s pass entry points), and pass 5 applies the scalar shard
/// updates ([`PoolShard::observe_scalar`]); replanning (pass 6) then runs
/// over the whole chunk. Each pass walks one or two contiguous streams
/// instead of the ~8 the fused per-pool observe interleaved. Because every
/// operation touches only pool-local state and per-structure per-lane
/// order is preserved, the output is bit-identical to the fused
/// [`PoolShard::observe`] order — pinned by the `OwnedLane` reference
/// proptests.
///
/// Both the chunk's shards and the window's inputs are sorted by pool id,
/// so pairing them is a linear merge: one `partition_point` to find the
/// chunk's first input, then an O(1)-amortized cursor — no per-pool binary
/// search re-walking the input index from the root (which at 16k pools was
/// ~14 scattered probes per pool per window).
#[allow(clippy::too_many_arguments)]
fn sweep_chunk(
    shards: &mut [(PoolId, PoolShard)],
    lane_base: usize,
    view: StoreView,
    inputs: &[(PoolId, PoolInput)],
    data: WindowData<'_>,
    window: WindowIndex,
    replan: bool,
    config: &OnlinePlannerConfig,
    qos: &BTreeMap<PoolId, QosRequirement>,
    default_qos: QosRequirement,
    state: &mut ChunkState,
    mut timer: Option<&mut [u64; PASS_COUNT]>,
) {
    state.out.clear();
    state.newly_assessed = 0;
    let Some(first_pool) = shards.first().map(|&(p, _)| p) else {
        return;
    };
    // Every pool can emit on *any* window — replan windows re-derive every
    // sizing, and urgent pools bypass the cadence — so the buffer must
    // hold the whole chunk even on non-replan windows (a replan-gated hint
    // of 0 under-sized it exactly when an urgent recommendation arrived
    // between ticks).
    state.out.reserve(shards.len());
    let mut cursor = inputs.partition_point(|&(p, _)| p < first_pool);
    let scratch = &mut state.scratch;
    let mut tile_start = 0;
    while tile_start < shards.len() {
        let tile_end = (tile_start + PASS_TILE).min(shards.len());
        let tile = &mut shards[tile_start..tile_end];
        let first_lane = lane_base + tile_start;
        let mut mark = timer.is_some().then(Instant::now);
        // Passes 0–1: pair the tile's pools with their inputs and build
        // each aggregate. For streamed inputs, pass 0 first *generates*
        // the pool's metric columns into the kernel scratch (the sim
        // kernels the simulator deferred), and pass 1 aggregates them
        // while the slice is still in L1/L2 — the fused pipeline's whole
        // point. For materialised inputs pass 0 is empty and all time
        // accrues to the aggregate pass, as before.
        scratch.reset(tile.len());
        for (i, (pool, _)) in tile.iter().enumerate() {
            while cursor < inputs.len() && inputs[cursor].0 < *pool {
                cursor += 1;
            }
            if !(cursor < inputs.len() && inputs[cursor].0 == *pool) {
                continue;
            }
            let aggregate = match inputs[cursor].1 {
                PoolInput::Aggregate(agg) => Some(agg),
                PoolInput::Rows { start, len } => match data {
                    WindowData::Rows(rows) => {
                        PoolWindowAggregate::from_rows(window, &rows[start..start + len])
                    }
                    WindowData::Columns(cols) => {
                        PoolWindowAggregate::from_columns(window, cols, start, len)
                    }
                    WindowData::None | WindowData::Streamed(_) => None,
                },
                PoolInput::Streamed { start, len, pool_index } => match data {
                    WindowData::Streamed(kernels) => {
                        // Serving count first: a fully offline pool yields
                        // no aggregate (matching `from_columns`), so the
                        // kernels need not run at all.
                        let n = kernels.online_count(start, len);
                        if n == 0 {
                            None
                        } else {
                            let (cpu, lat_avg, lat_p95, dq, pg, nm) = scratch.kernel_columns(len);
                            kernels.step_tile_columns(
                                pool_index,
                                start,
                                len,
                                StreamedTileOut {
                                    cpu,
                                    latency_avg: lat_avg,
                                    latency_p95: lat_p95,
                                    disk_queue: dq,
                                    memory_pages_per_sec: pg,
                                    network_mbps: nm,
                                },
                            );
                            lap(&mut timer, &mut mark, 0);
                            let rps = &kernels.rps()[start..start + len];
                            Some(aggregate_from_tile(window, n, rps, cpu, lat_p95, dq, pg, nm))
                        }
                    }
                    _ => None,
                },
            };
            if let Some(agg) = aggregate {
                scratch.set_input(i, agg);
            }
            lap(&mut timer, &mut mark, 1);
        }
        // Passes 2–5: each windowed plane across the whole tile.
        view.pass_agg_push(first_lane, scratch);
        lap(&mut timer, &mut mark, 2);
        view.pass_totals(first_lane, scratch);
        lap(&mut timer, &mut mark, 3);
        view.pass_alloc(first_lane, scratch);
        lap(&mut timer, &mut mark, 4);
        view.pass_drift_push(first_lane, scratch);
        lap(&mut timer, &mut mark, 5);
        // Passes 6 (scalar shard updates: fits, latency stream, projector,
        // drift check with the lane clear on a drift hit) and 7
        // (replanning) run fused, per pool, in one walk over the tile's
        // shards. The shard array is the fattest stream of the window
        // (~0.9 KiB per pool), so at fleet scale a second separate replan
        // walk would re-read the whole tile from beyond L2; fusing halves
        // that traffic while the tile's lane segments are also still
        // cache-resident from passes 3–5. The per-pool order is exactly
        // the fused reference's (observe, then replan if due), and
        // replanning reads only its own pool's state, so where the pass
        // boundary falls is an execution detail (the tile-boundary and
        // reference proptests pin this). Timing still attributes the two
        // halves separately — under the diagnostic timer `lap` reads the
        // clock per pool; untimed windows pay nothing.
        for (i, (pool, shard)) in tile.iter_mut().enumerate() {
            if let Some(&agg) = scratch.input(i) {
                let mut lane = view.lane(first_lane + i);
                shard.observe_scalar(&agg, scratch.evicted(i), scratch.drift_evicted(i), &mut lane);
            }
            lap(&mut timer, &mut mark, 6);
            if !(replan || shard.urgent()) {
                continue;
            }
            let lane = view.lane(first_lane + i);
            let pool_qos = qos.get(pool).copied().unwrap_or(default_qos);
            let had_assessment = shard.assessment().is_some();
            if let Some(recommendation) = shard.replan(*pool, window, &pool_qos, config, &lane) {
                state.out.push(recommendation);
            }
            // Assessments are monotonic (written once, never cleared), so
            // the None→Some transitions counted here sum to the fleet
            // total.
            if !had_assessment && shard.assessment().is_some() {
                state.newly_assessed += 1;
            }
            lap(&mut timer, &mut mark, 7);
        }
        tile_start = tile_end;
    }
}

/// Aggregates one pool's freshly generated tile columns — the streamed
/// counterpart of [`PoolWindowAggregate::from_columns`], and bit-identical
/// to it: the same fused six-accumulator loop, each counter summed
/// unconditionally in index order (the kernel zeroes offline lanes to
/// `+0.0`, the same offline contract the materialised columns carry), with
/// the serving count `n` computed up front by the caller.
#[allow(clippy::too_many_arguments)]
fn aggregate_from_tile(
    window: WindowIndex,
    n: usize,
    rps_c: &[f64],
    cpu_c: &[f64],
    lat_c: &[f64],
    dq_c: &[f64],
    pg_c: &[f64],
    nm_c: &[f64],
) -> PoolWindowAggregate {
    let len = rps_c.len();
    let (cpu_c, lat_c) = (&cpu_c[..len], &lat_c[..len]);
    let (dq_c, pg_c, nm_c) = (&dq_c[..len], &pg_c[..len], &nm_c[..len]);
    let (mut rps, mut cpu, mut lat) = (0.0f64, 0.0f64, 0.0f64);
    let (mut dq, mut pg, mut nm) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..len {
        rps += rps_c[i];
        cpu += cpu_c[i];
        lat += lat_c[i];
        dq += dq_c[i];
        pg += pg_c[i];
        nm += nm_c[i];
    }
    let nf = n as f64;
    PoolWindowAggregate {
        window,
        rps_per_server: rps / nf,
        cpu_pct: cpu / nf,
        latency_p95_ms: lat / nf,
        disk_queue: dq / nf,
        memory_pages_per_sec: pg / nf,
        network_mbps: nm / nf,
        active_servers: n,
    }
}

/// Accumulates the time since `mark` into `timer[pass]` and restarts the
/// mark. No clock reads when timing is disabled.
fn lap(timer: &mut Option<&mut [u64; PASS_COUNT]>, mark: &mut Option<Instant>, pass: usize) {
    if let (Some(timer), Some(started)) = (timer.as_deref_mut(), *mark) {
        let now = Instant::now();
        timer[pass] += now.duration_since(started).as_nanos() as u64;
        *mark = Some(now);
    }
}

/// A borrowed, pool-ordered view of the fleet's latest assessments.
///
/// Assessments live *inside* their [`PoolShard`]s: the worker that replans
/// a pool writes the result in place, right next to the state it just
/// touched, so the per-window merge copies nothing and reading the fleet
/// state allocates nothing. This view adapts the shard array into the
/// map-shaped read API callers expect — ordered iteration, lookup,
/// indexing, equality — and [`AssessmentView::to_map`] snapshots it into an
/// owned `BTreeMap` when a caller needs to keep it across further sweeps.
#[derive(Clone, Copy)]
pub struct AssessmentView<'a> {
    shards: &'a [(PoolId, PoolShard)],
    /// Engine-maintained assessed-pool count, so [`AssessmentView::len`]
    /// is O(1) instead of a filter-count over the shard array.
    assessed: usize,
}

impl<'a> AssessmentView<'a> {
    /// `(pool, assessment)` pairs in ascending pool order, pools without an
    /// assessment yet (still warming) skipped.
    pub fn iter(&self) -> impl Iterator<Item = (&'a PoolId, &'a PoolAssessment)> + 'a {
        self.shards.iter().filter_map(|(p, s)| s.assessment().map(|a| (p, a)))
    }

    /// Assessments in ascending pool order.
    pub fn values(&self) -> impl Iterator<Item = &'a PoolAssessment> + 'a {
        self.iter().map(|(_, a)| a)
    }

    /// Pools assessed so far — O(1), read from the engine's counter.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.assessed, self.iter().count(), "assessed-pool counter drifted");
        self.assessed
    }

    /// True when no pool has been assessed yet — O(1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The assessment of one pool, if derived yet.
    pub fn get(&self, pool: PoolId) -> Option<&'a PoolAssessment> {
        let i = self.shards.binary_search_by_key(&pool, |&(p, _)| p).ok()?;
        self.shards[i].1.assessment()
    }

    /// An owned snapshot of the current assessments.
    pub fn to_map(&self) -> BTreeMap<PoolId, PoolAssessment> {
        self.iter().map(|(p, a)| (*p, a.clone())).collect()
    }

    /// Pools whose latest assessment is urgently short of capacity
    /// (exhausted/critical band) — the scorer's detection signal for
    /// demand-side scenarios.
    pub fn urgent_count(&self) -> usize {
        self.values().filter(|a| a.band.needs_capacity()).count()
    }

    /// Total drift resets across all assessed pools — the scorer's
    /// detection signal for response-profile (model-swap) scenarios.
    pub fn drift_event_total(&self) -> usize {
        self.values().map(|a| a.drift_events).sum()
    }
}

impl Index<&PoolId> for AssessmentView<'_> {
    type Output = PoolAssessment;

    /// # Panics
    ///
    /// Panics when the pool has no assessment (mirroring `BTreeMap`
    /// indexing).
    fn index(&self, pool: &PoolId) -> &PoolAssessment {
        self.get(*pool).unwrap_or_else(|| panic!("no assessment for {pool:?}"))
    }
}

impl PartialEq for AssessmentView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl fmt::Debug for AssessmentView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ResizeAction;
    use headroom_telemetry::ids::{DatacenterId, ServerId};

    fn rows_for(pool: u32, rps: f64, servers: u32) -> Vec<SnapshotRow> {
        (0..servers)
            .map(|s| SnapshotRow {
                server: ServerId(pool * 1000 + s),
                pool: PoolId(pool),
                datacenter: DatacenterId(0),
                online: true,
                rps,
                cpu_pct: 0.028 * rps + 1.37,
                latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                disk_queue: 1.0,
                memory_pages_per_sec: 4_000.0,
                network_mbps: 0.32 * rps,
            })
            .collect()
    }

    fn drive_with(config: OnlinePlannerConfig, pools: u32, windows: u64) -> SweepEngine {
        let mut engine =
            SweepEngine::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        drive_more(&mut engine, pools, 0, windows);
        engine
    }

    fn drive_more(engine: &mut SweepEngine, pools: u32, from: u64, to: u64) {
        for w in from..to {
            let mut rows = Vec::new();
            let mut slices = Vec::new();
            for p in 0..pools {
                // Distinct diurnal-ish phase per pool.
                let rps = 200.0
                    + 150.0
                        * (((w + 20 * p as u64) as f64 / 80.0) * std::f64::consts::PI).sin().abs();
                let start = rows.len();
                rows.extend(rows_for(p, rps, 8 + p % 3));
                slices.push(headroom_cluster::sim::PoolSlice {
                    pool: PoolId(p),
                    start,
                    len: rows.len() - start,
                });
            }
            let snap = PartitionedSnapshot { window: WindowIndex(w), rows: &rows, pools: &slices };
            engine.observe_partitioned(&snap);
        }
    }

    fn drive(threads: usize, pools: u32, windows: u64) -> SweepEngine {
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        drive_with(config, pools, windows)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut sequential = drive(1, 7, 90);
        let expected_assessments = sequential.assessments().to_map();
        let expected_recs = sequential.drain_recommendations();
        assert!(!expected_assessments.is_empty(), "the sweep planned pools");
        for threads in [2, 3, 5, 8] {
            let mut sharded = drive(threads, 7, 90);
            assert_eq!(
                expected_assessments,
                sharded.assessments().to_map(),
                "assessments differ at {threads} threads"
            );
            assert_eq!(
                expected_recs,
                sharded.drain_recommendations(),
                "recommendations differ at {threads} threads"
            );
        }
    }

    #[test]
    fn exec_mode_does_not_change_results() {
        let mut persistent = drive_with(
            OnlinePlannerConfig {
                window_capacity: 120,
                min_fit_windows: 30,
                threads: 3,
                min_pool_chunk: 1,
                exec: SweepExec::Persistent,
                ..OnlinePlannerConfig::default()
            },
            7,
            90,
        );
        let mut scoped = drive_with(
            OnlinePlannerConfig {
                window_capacity: 120,
                min_fit_windows: 30,
                threads: 3,
                min_pool_chunk: 1,
                exec: SweepExec::Scoped,
                ..OnlinePlannerConfig::default()
            },
            7,
            90,
        );
        assert!(persistent.live_workers() > 0, "persistent mode spawned workers");
        assert_eq!(scoped.live_workers(), 0, "scoped mode holds no threads");
        assert_eq!(persistent.assessments(), scoped.assessments());
        assert_eq!(persistent.drain_recommendations(), scoped.drain_recommendations());
    }

    #[test]
    fn workers_persist_across_windows_and_thread_changes() {
        let mut engine = drive(4, 6, 60);
        let spawned = engine.live_workers();
        // 6 pools at threads=4 → chunk_len 2 → 3 chunks: the caller takes
        // one, two live on workers.
        assert_eq!(spawned, 2, "chunks minus the calling thread");
        // Thousands more windows reuse those exact workers.
        drive_more(&mut engine, 6, 60, 2_060);
        assert_eq!(engine.live_workers(), spawned, "no churn across 2000 windows");
        // Narrowing parks workers; widening grows the pool lazily.
        engine.set_threads(2);
        drive_more(&mut engine, 6, 2_060, 2_070);
        assert_eq!(engine.live_workers(), spawned, "surplus workers stay parked");
        engine.set_threads(6);
        drive_more(&mut engine, 6, 2_070, 2_080);
        assert_eq!(engine.live_workers(), 5, "pool grew to the new width");
    }

    #[test]
    fn small_fleets_are_not_oversubscribed() {
        // With the default `min_pool_chunk` (64), an 8-pool fleet at
        // threads=4 collapses to one chunk on the calling thread — no
        // hand-off overhead — while producing bit-identical results to a
        // forced fan-out.
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads: 4,
            ..OnlinePlannerConfig::default()
        };
        assert_eq!(config.min_pool_chunk, 64, "default clamp in effect");
        let mut clamped = drive_with(config, 8, 90);
        assert_eq!(clamped.live_workers(), 0, "small fleet stays on the calling thread");
        let mut wide = drive_with(OnlinePlannerConfig { min_pool_chunk: 1, ..config }, 8, 90);
        assert!(wide.live_workers() > 0, "min_pool_chunk=1 restores the old fan-out");
        assert_eq!(clamped.assessments(), wide.assessments());
        assert_eq!(clamped.drain_recommendations(), wide.drain_recommendations());
    }

    #[test]
    fn mid_run_thread_change_does_not_change_results() {
        let mut fixed = drive(1, 7, 90);
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads: 3,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        let mut changed =
            SweepEngine::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        drive_more(&mut changed, 7, 0, 30);
        changed.set_threads(5);
        drive_more(&mut changed, 7, 30, 60);
        changed.set_threads(2);
        drive_more(&mut changed, 7, 60, 90);
        assert_eq!(fixed.assessments(), changed.assessments());
        assert_eq!(fixed.drain_recommendations(), changed.drain_recommendations());
    }

    #[test]
    fn late_arriving_pool_does_not_perturb_existing_pools() {
        // Pool 3 first reports at window 40 and lands *between* existing
        // pools in the sorted order, forcing a store remap. The veterans'
        // state must be bit-identical to a run where pool 3 never existed
        // (shard state is pool-local; the remap moves lanes, not contents).
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads: 2,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut without = SweepEngine::new(config, qos);
        let mut with = SweepEngine::new(config, qos);
        for w in 0..90u64 {
            let veterans = [0u32, 2, 4];
            let feed = |engine: &mut SweepEngine, include_late: bool| {
                let mut rows = Vec::new();
                let mut slices = Vec::new();
                let mut pools: Vec<u32> = veterans.to_vec();
                if include_late && w >= 40 {
                    pools.insert(2, 3); // keep ascending order: 0, 2, 3, 4
                }
                for p in pools {
                    let rps = 200.0
                        + 150.0
                            * (((w + 20 * p as u64) as f64 / 80.0) * std::f64::consts::PI)
                                .sin()
                                .abs();
                    let start = rows.len();
                    rows.extend(rows_for(p, rps, 8 + p % 3));
                    slices.push(headroom_cluster::sim::PoolSlice {
                        pool: PoolId(p),
                        start,
                        len: rows.len() - start,
                    });
                }
                let snap =
                    PartitionedSnapshot { window: WindowIndex(w), rows: &rows, pools: &slices };
                engine.observe_partitioned(&snap);
            };
            feed(&mut without, false);
            feed(&mut with, true);
        }
        for p in [0u32, 2, 4] {
            assert_eq!(
                without.assessments().get(PoolId(p)),
                with.assessments().get(PoolId(p)),
                "pool {p} perturbed by the arrival"
            );
        }
        assert!(with.assessments().get(PoolId(3)).is_some(), "the late pool was planned");
        let with_recs: Vec<_> =
            with.drain_recommendations().into_iter().filter(|r| r.pool != PoolId(3)).collect();
        assert_eq!(without.drain_recommendations(), with_recs);
    }

    #[test]
    fn partitioned_and_flat_ingestion_agree() {
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads: 2,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut part = SweepEngine::new(config, qos);
        let mut flat = SweepEngine::new(config, qos);
        for w in 0..90u64 {
            let rps = 250.0 + 2.0 * w as f64;
            let mut rows = rows_for(0, rps, 6);
            rows.extend(rows_for(1, rps * 0.8, 9));
            let slices = vec![
                headroom_cluster::sim::PoolSlice { pool: PoolId(0), start: 0, len: 6 },
                headroom_cluster::sim::PoolSlice { pool: PoolId(1), start: 6, len: 9 },
            ];
            let snap = PartitionedSnapshot { window: WindowIndex(w), rows: &rows, pools: &slices };
            part.observe_partitioned(&snap);
            flat.observe(&snap.as_snapshot());
        }
        assert_eq!(part.assessments(), flat.assessments());
        assert_eq!(part.drain_recommendations(), flat.drain_recommendations());
    }

    #[test]
    fn columnar_and_row_ingestion_agree() {
        // The same windows fed as rows and as columns (at different thread
        // counts) must produce identical planner state — the engine-level
        // half of the colsim bit-identity contract.
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads: 2,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut by_rows = SweepEngine::new(config, qos);
        let mut by_cols = SweepEngine::new(OnlinePlannerConfig { threads: 3, ..config }, qos);
        for w in 0..90u64 {
            let rps = 250.0 + 2.0 * w as f64;
            let mut rows = rows_for(0, rps, 6);
            rows.extend(rows_for(1, rps * 0.8, 9));
            // A partially offline pool exercises the popcount path.
            rows.extend(rows_for(2, rps * 1.1, 5));
            for r in rows.iter_mut().skip(17) {
                *r = SnapshotRow {
                    online: false,
                    rps: 0.0,
                    cpu_pct: 0.0,
                    latency_p95_ms: 0.0,
                    disk_queue: 0.0,
                    memory_pages_per_sec: 0.0,
                    network_mbps: 0.0,
                    ..*r
                };
            }
            let slices = vec![
                headroom_cluster::sim::PoolSlice { pool: PoolId(0), start: 0, len: 6 },
                headroom_cluster::sim::PoolSlice { pool: PoolId(1), start: 6, len: 9 },
                headroom_cluster::sim::PoolSlice { pool: PoolId(2), start: 15, len: 5 },
            ];
            let cols = SnapshotColumns::from_rows(&rows);
            by_rows.observe_partitioned(&PartitionedSnapshot {
                window: WindowIndex(w),
                rows: &rows,
                pools: &slices,
            });
            by_cols.observe_columns(&ColumnarSnapshot {
                window: WindowIndex(w),
                columns: &cols,
                pools: &slices,
            });
        }
        assert!(!by_rows.assessments().is_empty(), "pools were planned");
        assert_eq!(by_rows.assessments(), by_cols.assessments());
        assert_eq!(by_rows.drain_recommendations(), by_cols.drain_recommendations());
    }

    #[test]
    fn streamed_and_columnar_ingestion_agree() {
        // Twin simulations stepped in lockstep: one materialises columns,
        // the other hands the engine deferred kernels via the streamed
        // path. The engines (at different thread counts) must land in
        // identical planner state — the engine-level half of the streamed
        // bit-identity contract. SnapshotOnly is the policy that actually
        // defers kernels; the other policies fall back to materialised
        // columns inside `step_streamed` and are covered by the colsim
        // repro gate.
        use headroom_cluster::catalog::MicroserviceKind;
        use headroom_cluster::scenario::FleetScenario;
        use headroom_cluster::sim::{RecordingPolicy, SnapshotLayout};
        let sim_with = |layout| {
            FleetScenario::single_service(MicroserviceKind::B, 2, 7, 23)
                .with_layout(layout)
                .with_recording(RecordingPolicy::SnapshotOnly)
                .into_simulation()
        };
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 30,
            threads: 2,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut by_cols = SweepEngine::new(config, qos);
        let mut by_stream = SweepEngine::new(OnlinePlannerConfig { threads: 3, ..config }, qos);
        let mut cols_sim = sim_with(SnapshotLayout::Columnar);
        let mut stream_sim = sim_with(SnapshotLayout::Streamed);
        for _ in 0..140u64 {
            let snap = cols_sim.step_columns_partitioned();
            by_cols.observe_columns(&snap);
            let win = stream_sim.step_streamed();
            assert!(
                matches!(win.source, StreamedSource::Kernels(_)),
                "SnapshotOnly streams kernels"
            );
            by_stream.observe_streamed(&win);
        }
        assert!(!by_cols.assessments().is_empty(), "pools were planned");
        assert_eq!(by_cols.assessments(), by_stream.assessments());
        assert_eq!(by_cols.drain_recommendations(), by_stream.drain_recommendations());
    }

    /// The O(1) assessed-pool counter must agree with a recount through
    /// arrivals, checkpoint round-trips, and clones. (`len()` itself
    /// debug-asserts against `iter().count()`, so every call in the test
    /// suite cross-checks the counter.)
    #[test]
    fn assessed_count_survives_restore_and_arrivals() {
        let mut engine = drive(2, 5, 90);
        assert_eq!(engine.assessments().len(), 5, "all warmed pools assessed");
        // Two late pools arrive: unassessed shards must not move the count.
        drive_more(&mut engine, 7, 90, 92);
        assert_eq!(engine.assessments().len(), 5, "unwarmed arrivals not counted");
        assert!(!engine.assessments().is_empty());
        let mut w = Writer::new();
        engine.persist(&mut w);
        let bytes = w.into_bytes();
        let restored = SweepEngine::restore(&mut Reader::new(&bytes)).expect("clean restore");
        assert_eq!(restored.assessments().len(), 5, "restore recounts");
        assert_eq!(engine.clone().assessments().len(), 5, "clone carries the counter");
        drive_more(&mut engine, 7, 92, 182);
        assert_eq!(engine.assessments().len(), 7, "arrivals counted once warmed");
    }

    /// Pass timing is pure execution telemetry: it accumulates on
    /// single-chunk windows, stays zero on multi-chunk ones, and never
    /// changes planner output.
    #[test]
    fn pass_timing_records_single_chunk_windows_only() {
        let config = OnlinePlannerConfig {
            window_capacity: 48,
            min_fit_windows: 12,
            threads: 1,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut timed = SweepEngine::new(config, qos);
        timed.enable_pass_timing();
        drive_more(&mut timed, 3, 0, 40);
        let ns = timed.pass_ns();
        assert!(ns.iter().sum::<u64>() > 0, "single-chunk windows were timed");
        assert!(ns[PASS_COUNT - 1] > 0, "the replan pass registered");
        let mut untimed = SweepEngine::new(config, qos);
        drive_more(&mut untimed, 3, 0, 40);
        assert_eq!(timed.assessments(), untimed.assessments());
        assert_eq!(timed.drain_recommendations(), untimed.drain_recommendations());
        let mut wide = SweepEngine::new(OnlinePlannerConfig { threads: 3, ..config }, qos);
        wide.enable_pass_timing();
        drive_more(&mut wide, 3, 0, 40);
        assert_eq!(wide.pass_ns(), [0; PASS_COUNT], "multi-chunk windows are untimed");
    }

    /// A fleet wide enough that one chunk spans several [`PASS_TILE`]
    /// tiles: tile boundaries are an execution detail and must not change
    /// results (the narrower-chunk run crosses them at different lanes).
    #[test]
    fn tile_boundaries_do_not_change_results() {
        let pools = 2 * PASS_TILE + 173; // threads=1: three tiles, one partial
        let agg_for = |w: u64, p: usize| {
            let rps = 210.0 + (((w * 31 + p as u64 * 17) % 83) as f64) * 3.0;
            PoolWindowAggregate {
                window: WindowIndex(w),
                rps_per_server: rps,
                cpu_pct: 0.028 * rps + 1.37,
                latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                disk_queue: 1.0,
                memory_pages_per_sec: 4_000.0,
                network_mbps: 0.32 * rps,
                active_servers: 5 + p % 4,
            }
        };
        let config = OnlinePlannerConfig {
            window_capacity: 8,
            min_fit_windows: 4,
            threads: 1,
            min_pool_chunk: 1,
            ..OnlinePlannerConfig::default()
        };
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let mut one_chunk = SweepEngine::new(config, qos);
        let mut sharded = SweepEngine::new(OnlinePlannerConfig { threads: 4, ..config }, qos);
        for w in 0..12u64 {
            let aggs: Vec<_> = (0..pools).map(|p| (PoolId(p as u32), agg_for(w, p))).collect();
            one_chunk.observe_aggregates(WindowIndex(w), &aggs);
            sharded.observe_aggregates(WindowIndex(w), &aggs);
        }
        assert_eq!(one_chunk.assessments().len(), pools, "every pool planned");
        assert_eq!(one_chunk.assessments(), sharded.assessments());
        assert_eq!(one_chunk.drain_recommendations(), sharded.drain_recommendations());
    }

    /// An undersized pool under a ramping load, planned on a coarse replan
    /// cadence: the urgent-band bypass must emit grow recommendations on
    /// windows *between* the cadence ticks.
    #[test]
    fn urgent_growth_bypasses_replan_cadence() {
        let config = OnlinePlannerConfig {
            window_capacity: 300,
            min_fit_windows: 30,
            replan_every: 50,
            ..OnlinePlannerConfig::default()
        };
        let mut engine =
            SweepEngine::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
        let mut recs = Vec::new();
        for w in 0..300u64 {
            // Ramps far past what 4 servers can serve within the SLO.
            let rps = 100.0 + 3.0 * w as f64;
            let rows = rows_for(0, rps, 4);
            let slices =
                vec![headroom_cluster::sim::PoolSlice { pool: PoolId(0), start: 0, len: 4 }];
            let snap = PartitionedSnapshot { window: WindowIndex(w), rows: &rows, pools: &slices };
            engine.observe_partitioned(&snap);
            recs.extend(engine.drain_recommendations());
        }
        let grow: Vec<_> = recs.iter().filter(|r| r.action == ResizeAction::Grow).collect();
        assert!(!grow.is_empty(), "the ramp forced growth: {recs:?}");
        assert!(
            grow.iter().any(|r| !(r.window.0 + 1).is_multiple_of(50)),
            "growth was emitted between replan ticks, not only on them: {grow:?}"
        );
    }
}
