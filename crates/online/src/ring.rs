//! Fixed-capacity ring buffer backing the sliding observation window.
//!
//! The streaming estimators need to know *which* observation leaves the
//! window when a new one arrives, so their O(1) downdates remove exactly the
//! evicted value. [`RingWindow::push`] returns that evicted element.

use std::collections::VecDeque;

use headroom_stats::persist::{Persist, PersistError, Reader, Writer};

/// A FIFO window holding at most `capacity` elements.
///
/// # Example
///
/// ```
/// use headroom_online::ring::RingWindow;
///
/// let mut w = RingWindow::new(3);
/// assert_eq!(w.push(1), None);
/// assert_eq!(w.push(2), None);
/// assert_eq!(w.push(3), None);
/// assert_eq!(w.push(4), Some(1)); // oldest element evicted
/// assert_eq!(w.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingWindow<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> RingWindow<T> {
    /// An empty window holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring window capacity must be positive");
        RingWindow { items: VecDeque::with_capacity(capacity), capacity }
    }

    /// Maximum number of elements held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no elements are held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the window holds `capacity` elements.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Appends `item`, returning the evicted oldest element when full.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.items.len() == self.capacity { self.items.pop_front() } else { None };
        self.items.push_back(item);
        evicted
    }

    /// The oldest element.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// The newest element.
    pub fn back(&self) -> Option<&T> {
        self.items.back()
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Drops all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T: Persist> Persist for RingWindow<T> {
    fn persist(&self, w: &mut Writer) {
        w.put_usize(self.capacity);
        w.put_usize(self.items.len());
        for item in &self.items {
            item.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let capacity = r.take_usize()?;
        if capacity == 0 {
            return Err(PersistError::Invalid("ring window capacity must be positive"));
        }
        let len = r.take_usize()?;
        if len > capacity {
            return Err(PersistError::Invalid("ring window holds more than its capacity"));
        }
        if len > r.remaining() {
            return Err(PersistError::Invalid("ring window length exceeds remaining stream"));
        }
        let mut items = VecDeque::with_capacity(capacity);
        for _ in 0..len {
            items.push_back(T::restore(r)?);
        }
        Ok(RingWindow { items, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = RingWindow::new(2);
        assert!(w.is_empty());
        assert_eq!(w.push("a"), None);
        assert_eq!(w.push("b"), None);
        assert!(w.is_full());
        assert_eq!(w.push("c"), Some("a"));
        assert_eq!(w.push("d"), Some("b"));
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec!["c", "d"]);
        assert_eq!(w.front(), Some(&"c"));
        assert_eq!(w.back(), Some(&"d"));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut w = RingWindow::new(4);
        w.push(1);
        w.push(2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 4);
        assert_eq!(w.push(9), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RingWindow::<u32>::new(0);
    }
}
