//! Sliding-window incremental estimators.
//!
//! Two response curves drive every sizing decision in the paper: the linear
//! workload→CPU model and the quadratic workload→latency model. The batch
//! pipeline refits both from scratch per planning run; here both are
//! maintained incrementally over a ring-buffered sliding window:
//!
//! - [`WindowedLinReg`] — [`headroom_stats::StreamingLinReg`] plus the ring
//!   that feeds its evictions: O(1) per window;
//! - [`StreamingQuadFit`] — degree-2 least squares from running power sums,
//!   re-exported from [`headroom_stats::quadfit`] where it lives alongside
//!   the other shard-combinable accumulators (see
//!   [`headroom_stats::Combine`]).

use headroom_stats::persist::{Persist, PersistError, Reader, Writer};
use headroom_stats::{LinearFit, StatsError, StreamingLinReg};

use crate::ring::RingWindow;

pub use headroom_stats::quadfit::StreamingQuadFit;

/// A linear fit over the last `capacity` observations.
///
/// # Example
///
/// ```
/// use headroom_online::estimators::WindowedLinReg;
///
/// let mut reg = WindowedLinReg::new(100);
/// for i in 0..500 {
///     let x = (i % 40) as f64;
///     reg.push(x, 0.028 * x + 1.37);
/// }
/// let fit = reg.fit().unwrap();
/// assert_eq!(reg.len(), 100);
/// assert!((fit.slope - 0.028).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedLinReg {
    window: RingWindow<(f64, f64)>,
    reg: StreamingLinReg,
}

impl WindowedLinReg {
    /// An empty window over at most `capacity` pairs.
    pub fn new(capacity: usize) -> Self {
        WindowedLinReg { window: RingWindow::new(capacity), reg: StreamingLinReg::new() }
    }

    /// Pairs currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// True when the window is at capacity.
    pub fn is_full(&self) -> bool {
        self.window.is_full()
    }

    /// Adds a pair, evicting the oldest when at capacity.
    pub fn push(&mut self, x: f64, y: f64) {
        if let Some((ox, oy)) = self.window.push((x, y)) {
            self.reg.remove(ox, oy);
        }
        self.reg.push(x, y);
    }

    /// The fit over the current window contents.
    ///
    /// # Errors
    ///
    /// As [`StreamingLinReg::fit`].
    pub fn fit(&self) -> Result<LinearFit, StatsError> {
        self.reg.fit()
    }

    /// The underlying accumulator (for spread/mean introspection).
    pub fn accumulator(&self) -> &StreamingLinReg {
        &self.reg
    }

    /// Empties the window.
    pub fn clear(&mut self) {
        self.window.clear();
        self.reg.clear();
    }
}

impl Persist for WindowedLinReg {
    fn persist(&self, w: &mut Writer) {
        self.window.persist(w);
        self.reg.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(WindowedLinReg { window: RingWindow::restore(r)?, reg: StreamingLinReg::restore(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_linreg_slides() {
        let mut reg = WindowedLinReg::new(50);
        // First 100 points on one line, next 100 on another: once the window
        // holds only the second regime, the fit reflects it.
        for i in 0..100 {
            let x = (i % 25) as f64;
            reg.push(x, 1.0 * x);
        }
        for i in 0..100 {
            let x = (i % 25) as f64;
            reg.push(x, 3.0 * x + 2.0);
        }
        let fit = reg.fit().unwrap();
        assert_eq!(reg.len(), 50);
        assert!(reg.is_full());
        assert!((fit.slope - 3.0).abs() < 1e-9, "slope {}", fit.slope);
        assert!((fit.intercept - 2.0).abs() < 1e-7);
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn quadfit_reexport_is_the_stats_type() {
        // The re-export keeps old import paths alive; the type is the one
        // in headroom_stats (with merge support).
        let mut q: headroom_stats::StreamingQuadFit = StreamingQuadFit::new();
        q.push(1.0, 1.0);
        let mut other = StreamingQuadFit::new();
        other.push(2.0, 4.0);
        q.merge(&other);
        assert_eq!(q.len(), 2);
    }
}
