//! # headroom-online — streaming incremental capacity planning
//!
//! The batch pipeline in `headroom_core` refits every model from scratch
//! over a full `MetricStore` — the right shape for a quarterly capacity
//! review, the wrong one for a planner tracking live traffic. This crate is
//! the streaming half: it consumes the fleet simulator's per-window
//! snapshots incrementally and keeps every fitted model current in O(1)
//! work per window (the sizing re-derivation itself is O(window) for its
//! peak percentile — still orders of magnitude under a batch refit).
//!
//! - [`ring`] — the fixed-capacity sliding window backing all estimators;
//! - [`estimators`] — incremental workload→CPU line and workload→latency
//!   quadratic ([`estimators::WindowedLinReg`],
//!   [`estimators::StreamingQuadFit`]);
//! - [`drift`] — a change-point detector that invalidates stale fits when a
//!   release or hardware swap shifts the response profile;
//! - [`exhaustion`] — headroom banding (ample → exhausted) and streaming
//!   days-to-exhaustion projection;
//! - [`shard`] — [`shard::PoolShard`], one pool's planner state machine:
//!   one workload→utilization fit per resource (CPU, disk queue, paging,
//!   network — the multi-resource fit vector) plus the latency quadratic;
//!   each assessment reports the discovered
//!   [`planner::BindingConstraint`]. The shard holds only *scalar* state —
//!   its windowed buffers live in the store and reach it through a
//!   [`store::ShardLane`];
//! - [`store`] — [`store::ShardStore`], the slot-major shard-state store:
//!   every pool's aggregate ring, sorted totals column, allocation
//!   max-deque, and drift sub-window hoisted into engine-owned planes
//!   (struct-of-arrays over the fleet), so a steady-state window *streams*
//!   shard state instead of taking a dependent cache miss per heap buffer
//!   per pool;
//! - [`sweep`] — [`sweep::SweepEngine`], the shard-and-merge fleet core:
//!   pools fan out across a *persistent* worker pool (`headroom_exec`,
//!   workers spawned once and parked between windows; per-window scoped
//!   threads remain available as [`planner::SweepExec::Scoped`]) and the
//!   per-chunk outputs merge deterministically, so results are
//!   bit-identical for any thread count and either execution mode. The
//!   hand-off is a mailbox write and the whole warmed window path reuses
//!   its buffers — steady-state windows allocate nothing;
//! - [`planner`] — [`planner::OnlinePlanner`], the control-loop facade:
//!   per-window observation, re-derived minimum pool sizes (the batch
//!   optimizer's formula, reproduced incrementally), dwell-time
//!   recommendation hysteresis, and a closed-loop driver for
//!   `headroom_cluster::sim::Simulation`.
//!
//! Both planners expose the shared `headroom_core::sizing::SizingPlanner`
//! interface, so downstream consumers cannot tell which one produced a
//! sizing — and the two agree: driven over the same windows, the online
//! planner reproduces the batch minimum pool size within ±1 server (see
//! `tests/online_vs_batch.rs`).
//!
//! # Quickstart
//!
//! Plan a small fleet live, window by window:
//!
//! ```
//! use headroom_cluster::scenario::FleetScenario;
//! use headroom_core::sizing::SizingPlanner;
//! use headroom_core::slo::QosRequirement;
//! use headroom_online::planner::{OnlinePlanner, OnlinePlannerConfig};
//! use headroom_telemetry::ids::PoolId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = FleetScenario::small(7).into_simulation();
//!
//! // Pools 0-2 run service B (tight SLO); pools 3-5 run service D.
//! let config = OnlinePlannerConfig { min_fit_windows: 120, ..Default::default() };
//! let mut planner =
//!     OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
//! for pool in 3..6 {
//!     planner.set_qos(PoolId(pool), QosRequirement::latency(58.0).with_cpu_ceiling(90.0));
//! }
//!
//! // Half a simulated day, one 120-second window at a time.
//! let recommendations = planner.run(&mut sim, 360);
//!
//! let sizings = planner.sizings();
//! assert_eq!(sizings.len(), 6, "every pool was planned");
//! for s in &sizings {
//!     assert!(s.min_servers >= 1 && s.min_servers <= s.current_servers);
//! }
//! // The small fleet is deliberately overprovisioned: the planner notices.
//! assert!(!recommendations.is_empty(), "headroom found");
//! # Ok(())
//! # }
//! ```

// Unsafe is denied crate-wide and allowed in exactly one place: the raw
// store view in `store` that hands disjoint plane lanes to sweep workers
// (see the safety contract there).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod estimators;
pub mod exhaustion;
pub mod planner;
pub mod ring;
pub mod shard;
pub mod store;
pub mod sweep;

pub use drift::{DriftConfig, DriftDetector, DriftEvent, DriftKind};
pub use estimators::{StreamingQuadFit, WindowedLinReg};
pub use exhaustion::{ExhaustionProjection, ExhaustionProjector, HeadroomBand};
pub use planner::{
    BindingConstraint, OnlinePlanner, OnlinePlannerConfig, PoolAssessment, PoolWindowAggregate,
    ResizeAction, ResizeRecommendation, SweepExec,
};
pub use shard::PoolShard;
pub use store::{LaneView, OwnedLane, ShardLane, ShardStore, StoreView};
pub use sweep::SweepEngine;
