//! Headroom classification and days-to-exhaustion projection.
//!
//! The paper's planners answer "how many servers do we need *now*"; the
//! operational question that follows is "how long until the current
//! allocation is not enough". This module answers it incrementally, in the
//! spirit of `headroom_core::growth` but without batch refits: daily peak
//! workloads accumulate into a streaming trend
//! ([`headroom_stats::StreamingLinReg`] over day index), and the projection
//! intersects that trend with the pool's supportable peak.

use headroom_stats::persist::{Persist, PersistError, Reader, Writer};
use headroom_stats::StreamingLinReg;
use headroom_telemetry::time::WindowIndex;

/// Qualitative headroom state of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HeadroomBand {
    /// Peak demand exceeds what the allocation supports within QoS.
    Exhausted,
    /// Less than 10% headroom above observed peak.
    Critical,
    /// Less than 20% headroom.
    Tight,
    /// Less than 35% headroom.
    Adequate,
    /// At least 35% headroom.
    Ample,
}

impl HeadroomBand {
    /// Classifies `headroom_fraction = 1 − peak/supportable`.
    pub fn classify(headroom_fraction: f64) -> Self {
        if headroom_fraction <= 0.0 {
            HeadroomBand::Exhausted
        } else if headroom_fraction < 0.10 {
            HeadroomBand::Critical
        } else if headroom_fraction < 0.20 {
            HeadroomBand::Tight
        } else if headroom_fraction < 0.35 {
            HeadroomBand::Adequate
        } else {
            HeadroomBand::Ample
        }
    }

    /// Whether this band warrants growing the pool.
    pub fn needs_capacity(&self) -> bool {
        matches!(self, HeadroomBand::Exhausted | HeadroomBand::Critical)
    }
}

impl std::fmt::Display for HeadroomBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HeadroomBand::Exhausted => "exhausted",
            HeadroomBand::Critical => "critical",
            HeadroomBand::Tight => "tight",
            HeadroomBand::Adequate => "adequate",
            HeadroomBand::Ample => "ample",
        };
        write!(f, "{s}")
    }
}

/// The projector's verdict for one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExhaustionProjection {
    /// Band of the current headroom.
    pub band: HeadroomBand,
    /// Peak workload the classification used (RPS).
    pub peak_rps: f64,
    /// Workload the allocation supports within QoS (RPS).
    pub supportable_rps: f64,
    /// Daily growth of peak demand (RPS/day) from the streaming trend, when
    /// at least 3 completed days exist.
    pub daily_growth_rps: Option<f64>,
    /// Days until the trend crosses the supportable peak. `None` when the
    /// trend is flat/shrinking, not yet estimable, or the crossing lies
    /// beyond 4× the observed history (the `core::growth` extrapolation
    /// discipline).
    pub days_to_exhaustion: Option<f64>,
}

/// Streaming days-to-exhaustion projector for one pool.
///
/// Feed every window's total pool workload with [`observe`]; read the
/// verdict with [`project`]. O(1) memory: only the running day peak and the
/// trend accumulator are kept.
///
/// [`observe`]: ExhaustionProjector::observe
/// [`project`]: ExhaustionProjector::project
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExhaustionProjector {
    current_day: Option<u64>,
    running_peak: f64,
    /// x = completed day index, y = that day's peak total RPS.
    trend: StreamingLinReg,
    completed_days: usize,
    /// Actual day index of the most recently committed peak (observation
    /// may start mid-history, and a fully offline day leaves a gap, so this
    /// is not `completed_days − 1`).
    last_committed_day: Option<u64>,
    last_day_peak: f64,
}

impl ExhaustionProjector {
    /// A fresh projector.
    pub fn new() -> Self {
        ExhaustionProjector::default()
    }

    /// Completed days feeding the trend.
    pub fn completed_days(&self) -> usize {
        self.completed_days
    }

    /// Feeds one window's total pool workload.
    pub fn observe(&mut self, window: WindowIndex, total_rps: f64) {
        if !total_rps.is_finite() {
            return;
        }
        let day = window.day();
        match self.current_day {
            Some(d) if d == day => {
                self.running_peak = self.running_peak.max(total_rps);
            }
            Some(d) => {
                // Day rollover: commit the completed day's peak.
                self.trend.push(d as f64, self.running_peak);
                self.completed_days += 1;
                self.last_committed_day = Some(d);
                self.last_day_peak = self.running_peak;
                self.current_day = Some(day);
                self.running_peak = total_rps;
            }
            None => {
                self.current_day = Some(day);
                self.running_peak = total_rps;
            }
        }
    }

    /// The best current estimate of daily peak demand: the larger of the
    /// last completed day's peak and today's running peak.
    pub fn current_peak(&self) -> f64 {
        self.last_day_peak.max(self.running_peak)
    }

    /// Projects exhaustion against the workload `supportable_rps` the pool's
    /// current allocation can serve within QoS.
    pub fn project(&self, supportable_rps: f64) -> ExhaustionProjection {
        let peak = self.current_peak();
        let headroom = if supportable_rps > 0.0 { 1.0 - peak / supportable_rps } else { 0.0 };
        let band = HeadroomBand::classify(headroom);

        let (daily_growth_rps, days_to_exhaustion) = match self.trend.fit() {
            Ok(fit) if self.completed_days >= 3 => {
                let growth = fit.slope;
                let days = if growth <= 1e-9 || supportable_rps <= peak {
                    // Flat/shrinking demand never exhausts by trend; an
                    // already-exhausted pool is band-reported, not projected.
                    if supportable_rps <= peak {
                        Some(0.0)
                    } else {
                        None
                    }
                } else {
                    // Evaluate the trend at the last *committed* day index —
                    // the trend's x axis is real day numbers, which need not
                    // start at 0 or be contiguous.
                    let latest_day = self.last_committed_day.unwrap_or(0) as f64;
                    let current_trend = fit.predict(latest_day);
                    let days = (supportable_rps - current_trend).max(0.0) / growth;
                    // Extrapolation guard: beyond 4× history is noise.
                    if days > 4.0 * self.completed_days as f64 {
                        None
                    } else {
                        Some(days)
                    }
                };
                (Some(growth), days)
            }
            _ => (None, if supportable_rps <= peak { Some(0.0) } else { None }),
        };

        ExhaustionProjection {
            band,
            peak_rps: peak,
            supportable_rps,
            daily_growth_rps,
            days_to_exhaustion,
        }
    }

    /// Forgets all demand history (e.g. after a scenario-level reset; *not*
    /// after response-profile drift, which changes the curves but not the
    /// demand).
    pub fn reset(&mut self) {
        *self = ExhaustionProjector::new();
    }
}

impl Persist for HeadroomBand {
    fn persist(&self, w: &mut Writer) {
        w.put_u8(match self {
            HeadroomBand::Exhausted => 0,
            HeadroomBand::Critical => 1,
            HeadroomBand::Tight => 2,
            HeadroomBand::Adequate => 3,
            HeadroomBand::Ample => 4,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.take_u8()? {
            0 => HeadroomBand::Exhausted,
            1 => HeadroomBand::Critical,
            2 => HeadroomBand::Tight,
            3 => HeadroomBand::Adequate,
            4 => HeadroomBand::Ample,
            _ => return Err(PersistError::Invalid("unknown HeadroomBand tag")),
        })
    }
}

impl Persist for ExhaustionProjection {
    fn persist(&self, w: &mut Writer) {
        self.band.persist(w);
        w.put_f64(self.peak_rps);
        w.put_f64(self.supportable_rps);
        self.daily_growth_rps.persist(w);
        self.days_to_exhaustion.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ExhaustionProjection {
            band: HeadroomBand::restore(r)?,
            peak_rps: r.take_f64()?,
            supportable_rps: r.take_f64()?,
            daily_growth_rps: Option::restore(r)?,
            days_to_exhaustion: Option::restore(r)?,
        })
    }
}

impl Persist for ExhaustionProjector {
    fn persist(&self, w: &mut Writer) {
        self.current_day.persist(w);
        w.put_f64(self.running_peak);
        self.trend.persist(w);
        w.put_usize(self.completed_days);
        self.last_committed_day.persist(w);
        w.put_f64(self.last_day_peak);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ExhaustionProjector {
            current_day: Option::restore(r)?,
            running_peak: r.take_f64()?,
            trend: StreamingLinReg::restore(r)?,
            completed_days: r.take_usize()?,
            last_committed_day: Option::restore(r)?,
            last_day_peak: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::time::WINDOWS_PER_DAY;

    fn feed_days_from(p: &mut ExhaustionProjector, first_day: u64, daily_peaks: &[f64]) {
        for (i, &peak) in daily_peaks.iter().enumerate() {
            let day = first_day + i as u64;
            for w in 0..WINDOWS_PER_DAY {
                let window = WindowIndex(day * WINDOWS_PER_DAY + w);
                // A crude diurnal shape peaking mid-day.
                let phase = (w as f64 / WINDOWS_PER_DAY as f64) * std::f64::consts::TAU;
                let demand = peak * (0.55 - 0.45 * phase.cos());
                p.observe(window, demand);
            }
        }
        // One more window so the final day commits.
        p.observe(WindowIndex((first_day + daily_peaks.len() as u64) * WINDOWS_PER_DAY), 0.0);
    }

    fn feed_days(p: &mut ExhaustionProjector, daily_peaks: &[f64]) {
        feed_days_from(p, 0, daily_peaks);
    }

    #[test]
    fn projection_invariant_to_observation_start_day() {
        // The same growth pattern must project the same crossing whether the
        // projector started watching at day 0 or mid-history at day 10.
        let peaks: Vec<f64> = (0..6).map(|d| 10_000.0 + 200.0 * d as f64).collect();
        let mut from_zero = ExhaustionProjector::new();
        feed_days_from(&mut from_zero, 0, &peaks);
        let mut from_ten = ExhaustionProjector::new();
        feed_days_from(&mut from_ten, 10, &peaks);
        let d0 = from_zero.project(12_600.0).days_to_exhaustion.expect("crossing");
        let d10 = from_ten.project(12_600.0).days_to_exhaustion.expect("crossing");
        assert!((d0 - d10).abs() < 1e-6, "{d0} vs {d10}");
    }

    #[test]
    fn bands_cover_the_scale() {
        assert_eq!(HeadroomBand::classify(-0.2), HeadroomBand::Exhausted);
        assert_eq!(HeadroomBand::classify(0.0), HeadroomBand::Exhausted);
        assert_eq!(HeadroomBand::classify(0.05), HeadroomBand::Critical);
        assert_eq!(HeadroomBand::classify(0.15), HeadroomBand::Tight);
        assert_eq!(HeadroomBand::classify(0.30), HeadroomBand::Adequate);
        assert_eq!(HeadroomBand::classify(0.50), HeadroomBand::Ample);
        assert!(HeadroomBand::Critical.needs_capacity());
        assert!(!HeadroomBand::Adequate.needs_capacity());
        assert_eq!(HeadroomBand::Ample.to_string(), "ample");
    }

    #[test]
    fn growing_demand_projects_crossing() {
        let mut p = ExhaustionProjector::new();
        // 2% absolute growth per day on a 10k base over 6 days.
        let peaks: Vec<f64> = (0..6).map(|d| 10_000.0 + 200.0 * d as f64).collect();
        feed_days(&mut p, &peaks);
        assert_eq!(p.completed_days(), 6);
        // Supportable 12.6k: trend hits it ~8 days past day 5.
        let proj = p.project(12_600.0);
        let growth = proj.daily_growth_rps.expect("trend fitted");
        assert!((growth - 200.0).abs() < 1.0, "growth {growth}");
        let days = proj.days_to_exhaustion.expect("finite crossing");
        assert!((days - 8.0).abs() < 1.5, "days {days}");
        // Headroom 1 − 11000/12600 ≈ 0.127.
        assert_eq!(proj.band, HeadroomBand::Tight);
    }

    #[test]
    fn flat_demand_never_exhausts() {
        let mut p = ExhaustionProjector::new();
        feed_days(&mut p, &[5_000.0; 5]);
        let proj = p.project(8_000.0);
        assert_eq!(proj.days_to_exhaustion, None);
        assert_eq!(proj.band, HeadroomBand::Ample);
    }

    #[test]
    fn already_exhausted_reports_zero_days() {
        let mut p = ExhaustionProjector::new();
        feed_days(&mut p, &[5_000.0, 5_100.0, 5_200.0, 5_300.0]);
        let proj = p.project(4_000.0);
        assert_eq!(proj.band, HeadroomBand::Exhausted);
        assert_eq!(proj.days_to_exhaustion, Some(0.0));
    }

    #[test]
    fn distant_crossing_is_untrusted() {
        let mut p = ExhaustionProjector::new();
        // Tiny growth: crossing centuries away — guarded off.
        feed_days(&mut p, &[10_000.0, 10_001.0, 10_002.0, 10_003.0]);
        let proj = p.project(20_000.0);
        assert!(proj.daily_growth_rps.is_some());
        assert_eq!(proj.days_to_exhaustion, None);
        assert_eq!(proj.band, HeadroomBand::Ample);
    }

    #[test]
    fn too_little_history_gives_band_only() {
        let mut p = ExhaustionProjector::new();
        feed_days(&mut p, &[9_000.0, 9_500.0]);
        let proj = p.project(10_000.0);
        assert_eq!(proj.daily_growth_rps, None);
        assert_eq!(proj.days_to_exhaustion, None);
        assert_eq!(proj.band, HeadroomBand::Critical);
        p.reset();
        assert_eq!(p.completed_days(), 0);
    }
}
