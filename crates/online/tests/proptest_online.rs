//! Property tests for the streaming estimators and the drift detector.

use headroom_online::drift::{DriftConfig, DriftDetector};
use headroom_online::estimators::StreamingQuadFit;
use headroom_stats::{LinearFit, Polynomial, StreamingLinReg};
use proptest::prelude::*;

/// Absolute-plus-relative agreement at 1e-9.
fn agrees(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + b.abs())
}

proptest! {
    /// A StreamingLinReg fed a full window agrees with the batch OLS fit
    /// to 1e-9 in slope, intercept and R².
    fn streaming_linreg_matches_batch(
        pairs in prop::collection::vec((0.0f64..2_000.0, -500.0f64..500.0), 2..300)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
        let mut reg = StreamingLinReg::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            reg.push(x, y);
        }
        match (reg.fit(), LinearFit::fit(&xs, &ys)) {
            (Ok(s), Ok(b)) => {
                prop_assert!(agrees(s.slope, b.slope), "slope {} vs {}", s.slope, b.slope);
                prop_assert!(agrees(s.intercept, b.intercept),
                    "intercept {} vs {}", s.intercept, b.intercept);
                prop_assert!(agrees(s.r_squared, b.r_squared),
                    "r2 {} vs {}", s.r_squared, b.r_squared);
                prop_assert_eq!(s.n, b.n);
            }
            // Degenerate inputs (constant x) must be degenerate for both.
            (Err(_), Err(_)) => {}
            (s, b) => prop_assert!(false, "verdicts differ: {:?} vs {:?}", s, b),
        }
    }

    /// Sliding-window eviction keeps the incremental fit equal to a batch
    /// fit over exactly the window contents.
    fn sliding_window_matches_batch(
        pairs in prop::collection::vec((0.0f64..1_000.0, -100.0f64..100.0), 40..250),
        window in 8usize..40,
    ) {
        let mut reg = StreamingLinReg::new();
        for i in 0..pairs.len() {
            reg.push(pairs[i].0, pairs[i].1);
            if i >= window {
                reg.remove(pairs[i - window].0, pairs[i - window].1);
            }
        }
        let start = pairs.len() - window;
        let xs: Vec<f64> = pairs[start..].iter().map(|(x, _)| *x).collect();
        let ys: Vec<f64> = pairs[start..].iter().map(|(_, y)| *y).collect();
        prop_assert_eq!(reg.len(), window);
        if let (Ok(s), Ok(b)) = (reg.fit(), LinearFit::fit(&xs, &ys)) {
            // Downdates round a little more than one-shot accumulation:
            // hold the window result to 1e-7 relative.
            prop_assert!((s.slope - b.slope).abs() <= 1e-7 * (1.0 + b.slope.abs()),
                "slope {} vs {}", s.slope, b.slope);
            prop_assert!((s.intercept - b.intercept).abs() <= 1e-6 * (1.0 + b.intercept.abs()),
                "intercept {} vs {}", s.intercept, b.intercept);
        }
    }

    /// The streaming quadratic agrees with batch polyfit on clean data.
    fn streaming_quad_matches_batch(
        a0 in -50.0f64..50.0,
        a1 in -1.0f64..1.0,
        a2 in 1e-6f64..1e-3,
        n in 20usize..200,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| 10.0 + (i % 61) as f64 * 9.7).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a2 * x * x + a1 * x + a0).collect();
        let mut q = StreamingQuadFit::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            q.push(x, y);
        }
        let (poly, _) = q.fit().unwrap();
        let batch = Polynomial::fit(&xs, &ys, 2).unwrap();
        for (s, b) in poly.coeffs().iter().zip(batch.poly.coeffs()) {
            prop_assert!((s - b).abs() <= 1e-6 * (1.0 + b.abs()), "{} vs {}", s, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stationary noisy data never fires the drift detector…
    fn drift_quiet_on_stationary_noise(
        slope in 0.01f64..0.1,
        intercept in 0.0f64..5.0,
        noise_scale in 0.0f64..0.05,
        seed in 0u64..1_000,
    ) {
        let config = DriftConfig::default();
        let mut det = DriftDetector::new(config);
        // The detector's backing ring lives with the caller (a store plane
        // lane in production): this test plays that role.
        let mut ring = std::collections::VecDeque::new();
        let cap = config.short_window.max(2);
        let reference_n = 720;
        let reference = LinearFit { slope, intercept, r_squared: 0.98, n: reference_n };
        for i in 0..400usize {
            let x = 150.0 + ((i as u64).wrapping_mul(seed + 7) % 90) as f64 * 4.0;
            let noise = ((((i as u64) * 2_654_435_761 + seed) % 1_000) as f64 / 500.0 - 1.0)
                * noise_scale * (slope * x + intercept);
            let y = slope * x + intercept + noise;
            let evicted = if ring.len() == cap { ring.pop_front() } else { None };
            ring.push_back((x, y));
            det.observe(x, y, evicted);
            prop_assert!(
                det.check(&reference, reference_n).is_none(),
                "false drift at window {} (noise scale {})", i, noise_scale
            );
        }
    }

    /// …but an injected response-profile change fires it promptly.
    fn drift_fires_on_slope_change(
        slope in 0.01f64..0.1,
        factor in 1.8f64..3.0,
        seed in 0u64..1_000,
    ) {
        let config = DriftConfig::default();
        let mut det = DriftDetector::new(config);
        let mut ring = std::collections::VecDeque::new();
        let cap = config.short_window.max(2);
        let reference_n = 720;
        let reference = LinearFit { slope, intercept: 1.0, r_squared: 0.98, n: reference_n };
        // Fill the short window entirely with post-change observations.
        let mut fired = false;
        for i in 0..(config.short_window * 2) {
            let x = 150.0 + ((i as u64).wrapping_mul(seed + 13) % 90) as f64 * 4.0;
            let y = slope * factor * x + 1.0;
            let evicted = if ring.len() == cap { ring.pop_front() } else { None };
            ring.push_back((x, y));
            det.observe(x, y, evicted);
            if det.check(&reference, reference_n).is_some() {
                fired = true;
                break;
            }
        }
        prop_assert!(fired, "slope change ×{factor:.2} went undetected");
    }
}

mod sharding {
    use headroom_cluster::sim::{SnapshotRow, WindowSnapshot};
    use headroom_core::slo::QosRequirement;
    use headroom_online::planner::{BindingConstraint, OnlinePlannerConfig, SweepExec};
    use headroom_online::sweep::SweepEngine;
    use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
    use headroom_telemetry::time::WindowIndex;
    use proptest::prelude::*;

    fn engine_with(threads: usize, exec: SweepExec) -> SweepEngine {
        let config = OnlinePlannerConfig {
            window_capacity: 48,
            min_fit_windows: 12,
            threads,
            exec,
            ..OnlinePlannerConfig::default()
        };
        SweepEngine::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0))
    }

    /// Feeds `engine` windows `[from, to)` of a synthetic multi-pool stream.
    fn feed(engine: &mut SweepEngine, pool_sizes: &[usize], from: u64, to: u64, phase: u64) {
        for w in from..to {
            let mut rows: Vec<SnapshotRow> = Vec::new();
            for (p, &servers) in pool_sizes.iter().enumerate() {
                let base = 150.0 + 40.0 * p as f64;
                let swing = ((w * (3 + p as u64) + phase) % 60) as f64 * 6.0;
                let rps = base + swing;
                for s in 0..servers {
                    rows.push(SnapshotRow {
                        server: ServerId((p * 1000 + s) as u32),
                        pool: PoolId(p as u32),
                        datacenter: DatacenterId(0),
                        online: true,
                        rps,
                        cpu_pct: 0.028 * rps + 1.37,
                        latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                        // Per-pool resource shape: pools where p % 3 == 1 are
                        // disk-coupled, p % 3 == 2 network-heavy — so the
                        // discovered binding constraint varies across the
                        // fleet and its determinism is actually exercised.
                        disk_queue: match p % 3 {
                            1 => 0.5 + 0.04 * rps,
                            _ => 1.0,
                        },
                        memory_pages_per_sec: 4_000.0,
                        network_mbps: match p % 3 {
                            2 => 16.0 * rps,
                            _ => 0.32 * rps,
                        },
                    });
                }
            }
            engine.observe(&WindowSnapshot { window: WindowIndex(w), rows: &rows });
        }
    }

    /// Drives one engine over a synthetic multi-pool stream.
    fn drive(threads: usize, pool_sizes: &[usize], windows: u64, phase: u64) -> SweepEngine {
        let mut engine = engine_with(threads, SweepExec::default());
        feed(&mut engine, pool_sizes, 0, windows, phase);
        engine
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The tentpole invariant: for any fleet shape and any shard count,
        /// the sharded sweep produces results *identical* (full structural
        /// equality, f64s included) to the single-shard run.
        #[test]
        fn sharded_merge_equals_single_shard(
            pool_sizes in prop::collection::vec(3usize..12, 1..9),
            threads in 2usize..7,
            phase in 0u64..50,
        ) {
            let mut sequential = drive(1, &pool_sizes, 70, phase);
            let mut sharded = drive(threads, &pool_sizes, 70, phase);
            prop_assert!(!sequential.assessments().is_empty(), "pools were planned");
            prop_assert_eq!(sequential.assessments(), sharded.assessments());
            prop_assert_eq!(
                sequential.drain_recommendations(),
                sharded.drain_recommendations()
            );
        }

        /// Sequential, legacy scoped-spawn, and persistent-pool execution
        /// are byte-identical for any fleet shape and thread count 1–8 —
        /// worker reuse across windows changes nothing.
        #[test]
        fn exec_modes_are_byte_identical(
            pool_sizes in prop::collection::vec(3usize..12, 1..9),
            threads in 1usize..9,
            phase in 0u64..50,
        ) {
            let mut sequential = drive(1, &pool_sizes, 70, phase);
            let mut scoped = engine_with(threads, SweepExec::Scoped);
            feed(&mut scoped, &pool_sizes, 0, 70, phase);
            let mut persistent = engine_with(threads, SweepExec::Persistent);
            feed(&mut persistent, &pool_sizes, 0, 70, phase);
            prop_assert!(!sequential.assessments().is_empty(), "pools were planned");
            prop_assert_eq!(sequential.assessments(), scoped.assessments());
            prop_assert_eq!(sequential.assessments(), persistent.assessments());
            let recs = sequential.drain_recommendations();
            prop_assert_eq!(recs.clone(), scoped.drain_recommendations());
            prop_assert_eq!(recs, persistent.drain_recommendations());
        }

        /// The discovered binding constraint is part of every assessment
        /// and must be *bit-identical* across sequential, scoped, and
        /// persistent execution at any thread count — and the synthetic
        /// fleet's per-pool resource shapes (CPU/latency-, disk-, and
        /// network-bound) guarantee the property is exercised on a
        /// non-trivial mix, not a fleet where one constraint always wins.
        #[test]
        fn binding_discovery_is_exec_invariant(
            pool_sizes in prop::collection::vec(3usize..12, 3..9),
            threads in 1usize..9,
            phase in 0u64..50,
        ) {
            let sequential = drive(1, &pool_sizes, 70, phase);
            let mut scoped = engine_with(threads, SweepExec::Scoped);
            feed(&mut scoped, &pool_sizes, 0, 70, phase);
            let mut persistent = engine_with(threads, SweepExec::Persistent);
            feed(&mut persistent, &pool_sizes, 0, 70, phase);
            let bindings = |e: &SweepEngine| -> Vec<(PoolId, BindingConstraint)> {
                e.assessments().iter().map(|(p, a)| (*p, a.binding)).collect()
            };
            let expected = bindings(&sequential);
            prop_assert!(!expected.is_empty(), "pools were planned");
            prop_assert_eq!(&expected, &bindings(&scoped), "scoped diverged");
            prop_assert_eq!(&expected, &bindings(&persistent), "persistent diverged");
            // The three pool shapes (p % 3) bind on different constraints.
            let mut seen: Vec<BindingConstraint> = Vec::new();
            for &(_, b) in &expected {
                if !seen.contains(&b) {
                    seen.push(b);
                }
            }
            prop_assert!(
                seen.len() >= 2,
                "a >=3-pool fleet must mix binding constraints, got {:?}",
                seen
            );
        }

        /// Changing the fan-out width mid-run (pool growing or parking
        /// workers) never changes the results.
        #[test]
        fn mid_run_thread_change_is_invisible(
            pool_sizes in prop::collection::vec(3usize..12, 1..9),
            first in 1usize..7,
            second in 1usize..7,
            switch_at in 10u64..60,
            phase in 0u64..50,
        ) {
            let mut fixed = drive(1, &pool_sizes, 70, phase);
            let mut changed = engine_with(first, SweepExec::Persistent);
            feed(&mut changed, &pool_sizes, 0, switch_at, phase);
            changed.set_threads(second);
            feed(&mut changed, &pool_sizes, switch_at, 70, phase);
            prop_assert_eq!(fixed.assessments(), changed.assessments());
            prop_assert_eq!(fixed.drain_recommendations(), changed.drain_recommendations());
        }
    }
}

/// Satellite coverage for the slot-major store's edge semantics: pools that
/// skip replan windows, drift-reset mid-run, or go offline for stretches.
/// The oracle is a *per-shard reference engine* — the same `PoolShard`
/// state machine driven sequentially over [`OwnedLane`]s (one privately
/// owned set of heap buffers per pool, the pre-store representation) — and
/// the property is full structural equality against the plane-backed
/// `SweepEngine` at every thread count × exec mode.
mod store_semantics {
    use headroom_core::slo::QosRequirement;
    use headroom_online::drift::DriftConfig;
    use headroom_online::planner::{
        OnlinePlannerConfig, PoolWindowAggregate, ResizeRecommendation, SweepExec,
    };
    use headroom_online::store::OwnedLane;
    use headroom_online::{PoolShard, SweepEngine};
    use headroom_telemetry::ids::PoolId;
    use headroom_telemetry::time::WindowIndex;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Aggressive tuning so the short run exercises every edge: tiny fit
    /// warm-up, a hair-trigger drift detector, and a coarse replan cadence
    /// (so pools *skip* replan windows between ticks).
    fn config_with(replan_every: u64, dwell: u64) -> OnlinePlannerConfig {
        OnlinePlannerConfig {
            window_capacity: 16,
            min_fit_windows: 6,
            replan_every,
            dwell_windows: dwell,
            min_pool_chunk: 1,
            drift: DriftConfig {
                short_window: 6,
                min_reference: 8,
                slope_tolerance: 0.30,
                level_tolerance: 0.05,
                min_spread_fraction: 0.0,
            },
            ..OnlinePlannerConfig::default()
        }
    }

    /// One pool's synthetic aggregate; after `shifted`, the response
    /// profile jumps (a simulated release) hard enough to trip the
    /// hair-trigger drift config within one short window.
    fn agg_for(w: u64, p: u32, shifted: bool) -> PoolWindowAggregate {
        let rps = 200.0 + ((w * (3 + p as u64)) % 50) as f64 * 7.0;
        let factor = if shifted { 2.4 } else { 1.0 };
        PoolWindowAggregate {
            window: WindowIndex(w),
            rps_per_server: rps,
            cpu_pct: (0.028 * rps + 1.37) * factor,
            latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
            disk_queue: 1.0,
            memory_pages_per_sec: 4_000.0,
            network_mbps: 0.32 * rps,
            active_servers: 5 + (p % 3) as usize,
        }
    }

    /// Whether pool `p` reports this window. Pool 0 never goes offline (so
    /// the drift assertion below is deterministic); other pools drop out
    /// ~30% of windows in pool-dependent runs.
    fn online(w: u64, p: u32, seed: u64) -> bool {
        p == 0 || (w.wrapping_mul(2_654_435_761).wrapping_add((p as u64) * 97 + seed) % 10) >= 3
    }

    /// The oracle: `PoolShard`s over `OwnedLane`s, driven sequentially with
    /// exactly the sweep's pairing and cadence rules.
    struct Reference {
        config: OnlinePlannerConfig,
        qos: QosRequirement,
        shards: Vec<(PoolId, PoolShard, OwnedLane)>,
        windows_seen: u64,
        recs: Vec<ResizeRecommendation>,
    }

    impl Reference {
        fn new(config: OnlinePlannerConfig, qos: QosRequirement) -> Self {
            Reference { config, qos, shards: Vec::new(), windows_seen: 0, recs: Vec::new() }
        }

        fn observe(&mut self, window: WindowIndex, aggs: &[(PoolId, PoolWindowAggregate)]) {
            self.windows_seen += 1;
            for &(pool, _) in aggs {
                if let Err(at) = self.shards.binary_search_by_key(&pool, |t| t.0) {
                    let lane = OwnedLane::new(
                        self.config.window_capacity,
                        self.config.drift.short_window.max(2),
                    );
                    self.shards.insert(at, (pool, PoolShard::new(&self.config), lane));
                }
            }
            let replan = self.windows_seen.is_multiple_of(self.config.replan_every);
            for (pool, shard, lane) in self.shards.iter_mut() {
                if let Some(&(_, agg)) = aggs.iter().find(|(p, _)| p == pool) {
                    shard.observe(agg, lane);
                }
                if replan || shard.urgent() {
                    if let Some(rec) = shard.replan(*pool, window, &self.qos, &self.config, lane) {
                        self.recs.push(rec);
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For any mix of offline stretches, skipped replan windows, and
        /// drift resets, the slot-major store is bit-identical to the
        /// per-shard reference at threads 1–8 × both exec modes.
        #[test]
        fn store_matches_per_shard_reference(
            pools in 2u32..8,
            replan_every in 1u64..4,
            dwell in 0u64..3,
            shift_at in 20u64..40,
            seed in 0u64..1_000,
        ) {
            let config = config_with(replan_every, dwell);
            let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
            let windows = 64u64;

            let mut reference = Reference::new(config, qos);
            let mut engines: Vec<SweepEngine> = [1usize, 2, 5, 8]
                .iter()
                .flat_map(|&threads| {
                    [SweepExec::Persistent, SweepExec::Scoped].map(|exec| {
                        SweepEngine::new(
                            OnlinePlannerConfig { threads, exec, ..config },
                            qos,
                        )
                    })
                })
                .collect();

            for w in 0..windows {
                let aggs: Vec<(PoolId, PoolWindowAggregate)> = (0..pools)
                    .filter(|&p| online(w, p, seed))
                    .map(|p| (PoolId(p), agg_for(w, p, w >= shift_at)))
                    .collect();
                reference.observe(WindowIndex(w), &aggs);
                for engine in &mut engines {
                    engine.observe_aggregates(WindowIndex(w), &aggs);
                }
            }

            let expected: BTreeMap<_, _> = reference
                .shards
                .iter()
                .filter_map(|(p, s, _)| s.assessment().map(|a| (*p, a.clone())))
                .collect();
            prop_assert!(!expected.is_empty(), "pools were planned");
            // The always-online pool crossed the injected release: the run
            // actually contains a drift reset, not just quiet windows.
            prop_assert!(
                expected[&PoolId(0)].drift_events >= 1,
                "the injected shift at window {shift_at} never tripped drift"
            );
            for engine in &mut engines {
                let (threads, exec) =
                    (engine.config().threads, engine.config().exec);
                prop_assert_eq!(
                    &expected,
                    &engine.assessments().to_map(),
                    "assessments diverged at threads={} exec={:?}", threads, exec
                );
                prop_assert_eq!(
                    &reference.recs,
                    &engine.drain_recommendations(),
                    "recommendations diverged at threads={} exec={:?}", threads, exec
                );
            }
        }

        /// The pass-structured sweep (plane-at-a-time kernels) against the
        /// fused-order `OwnedLane` reference, with the remaining lifecycle
        /// edges layered on top of drift resets and offline stretches: a
        /// mid-range pool id first reporting mid-run (forcing a store lane
        /// remap between windows) and a mid-run `set_threads` (changing
        /// chunk — and therefore pass-tile — boundaries). Bit-identity must
        /// hold at threads 1–8 × both exec modes.
        #[test]
        fn pass_structure_survives_remap_and_thread_changes(
            pools in 3u32..8,
            arrival_at in 8u64..30,
            replan_every in 1u64..4,
            switch_at in 10u64..50,
            new_threads in 1usize..9,
            shift_at in 20u64..40,
            seed in 0u64..1_000,
        ) {
            let config = config_with(replan_every, 0);
            let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
            let windows = 64u64;
            // A mid-range id: the arrival lands *between* existing lanes,
            // so the remap actually moves state (never pool 0 — the drift
            // assertion below needs it online from window 0).
            let late = pools / 2;

            let mut reference = Reference::new(config, qos);
            let mut engines: Vec<SweepEngine> = [1usize, 3, 8]
                .iter()
                .flat_map(|&threads| {
                    [SweepExec::Persistent, SweepExec::Scoped].map(|exec| {
                        SweepEngine::new(
                            OnlinePlannerConfig { threads, exec, ..config },
                            qos,
                        )
                    })
                })
                .collect();

            for w in 0..windows {
                let aggs: Vec<(PoolId, PoolWindowAggregate)> = (0..pools)
                    .filter(|&p| {
                        if p == late { w >= arrival_at } else { online(w, p, seed) }
                    })
                    .map(|p| (PoolId(p), agg_for(w, p, w >= shift_at)))
                    .collect();
                reference.observe(WindowIndex(w), &aggs);
                for engine in &mut engines {
                    if w == switch_at {
                        engine.set_threads(new_threads);
                    }
                    engine.observe_aggregates(WindowIndex(w), &aggs);
                }
            }

            let expected: BTreeMap<_, _> = reference
                .shards
                .iter()
                .filter_map(|(p, s, _)| s.assessment().map(|a| (*p, a.clone())))
                .collect();
            prop_assert!(
                expected[&PoolId(0)].drift_events >= 1,
                "the injected shift at window {shift_at} never tripped drift"
            );
            prop_assert!(
                expected.contains_key(&PoolId(late)),
                "the late pool was never planned after its lane remap"
            );
            for engine in &mut engines {
                let (threads, exec) =
                    (engine.config().threads, engine.config().exec);
                prop_assert_eq!(
                    &expected,
                    &engine.assessments().to_map(),
                    "assessments diverged at threads={} exec={:?}", threads, exec
                );
                prop_assert_eq!(
                    &reference.recs,
                    &engine.drain_recommendations(),
                    "recommendations diverged at threads={} exec={:?}", threads, exec
                );
            }
        }
    }
}

/// The byte-identity invariant must survive *event-driven* fleets: for any
/// adversarial catalog scenario, any fan-out width, either exec mode, and
/// any snapshot layout (rows, materialised columns, or the streamed
/// tile-fused pipeline), the closed planning loop (recommendations applied
/// back to the simulator every window) is structurally identical —
/// assessments and the full recommendation stream — to the sequential
/// row-layout reference.
mod scenario_identity {
    use std::collections::BTreeMap;

    use headroom_cluster::scenario::FleetScenario;
    use headroom_cluster::sim::{RecordingPolicy, SnapshotLayout};
    use headroom_core::slo::QosRequirement;
    use headroom_online::planner::{OnlinePlannerConfig, ResizeRecommendation, SweepExec};
    use headroom_online::sweep::SweepEngine;
    use headroom_telemetry::ids::PoolId;
    use headroom_workload::scenarios::{self, Scenario};
    use proptest::prelude::*;

    const DATACENTERS: u16 = 3;

    /// One closed-loop drive; returns the engine and every window's
    /// drained recommendations.
    fn drive(
        sc: &Scenario,
        seed: u64,
        threads: usize,
        exec: SweepExec,
        layout: SnapshotLayout,
        windows: u64,
    ) -> (SweepEngine, Vec<Vec<ResizeRecommendation>>) {
        let mut sim = FleetScenario::small(seed)
            .with_scenario(sc)
            .with_recording(RecordingPolicy::SnapshotOnly)
            .into_simulation();
        let config = OnlinePlannerConfig {
            window_capacity: 240,
            min_fit_windows: 120,
            dwell_windows: 2,
            // Small fleet: force one-pool chunks so multi-thread cells
            // actually exercise the parallel path.
            min_pool_chunk: 1,
            threads,
            exec,
            ..OnlinePlannerConfig::default()
        };
        let mut engine =
            SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
        for pool in sim.fleet().pools() {
            engine.set_qos(
                pool.id,
                QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
            );
        }
        let physical: BTreeMap<PoolId, usize> =
            sim.fleet().pools().iter().map(|p| (p.id, p.size())).collect();
        let mut all = Vec::with_capacity(windows as usize);
        for _ in 0..windows {
            match layout {
                SnapshotLayout::Streamed => {
                    let win = sim.step_streamed();
                    engine.observe_streamed(&win);
                }
                SnapshotLayout::Columnar => {
                    let snap = sim.step_columns_partitioned();
                    engine.observe_columns(&snap);
                }
                SnapshotLayout::Rows => {
                    let snap = sim.step_snapshot_partitioned();
                    engine.observe_partitioned(&snap);
                }
            }
            let recs = engine.drain_recommendations();
            let next = sim.current_window();
            for rec in &recs {
                let target = rec.to_servers.clamp(1, physical[&rec.pool]);
                let _ = sim.schedule_resize(rec.pool, next, target);
            }
            all.push(recs);
        }
        (engine, all)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn planner_is_identical_under_any_scenario(
            which in 0usize..6,
            seed in any::<u64>(),
            threads in 2usize..9,
            exec_scoped in any::<bool>(),
            layout_pick in 0usize..3,
        ) {
            let sc = scenarios::catalog(seed, DATACENTERS).swap_remove(which);
            // Cap a little past onset so every drive covers event-active
            // windows without paying for a full hypergrowth week per case.
            let windows = sc.windows().min(sc.onset_window().0 + 240);
            let exec = if exec_scoped { SweepExec::Scoped } else { SweepExec::Persistent };
            let layout = [SnapshotLayout::Rows, SnapshotLayout::Columnar, SnapshotLayout::Streamed]
                [layout_pick];
            let (reference, ref_recs) =
                drive(&sc, seed, 1, SweepExec::Persistent, SnapshotLayout::Rows, windows);
            let (cell, cell_recs) = drive(&sc, seed, threads, exec, layout, windows);
            prop_assert!(!reference.assessments().is_empty(), "pools were planned");
            prop_assert_eq!(reference.assessments(), cell.assessments());
            prop_assert_eq!(ref_recs, cell_recs);
        }
    }
}

/// The streamed pipeline's full-surface identity contract: for *every*
/// recording policy, any fan-out width 1–8, and either exec mode, a closed
/// planning loop driven through the streamed layout is indistinguishable
/// from its materialised-columns and row-layout twins — the per-window
/// recommendation stream matches structurally, and the engines' final
/// checkpoints serialize to the *same bytes* (so not just the decisions
/// but the whole persisted planner state — fits, rings, drift counters,
/// window cursor — is bit-identical).
mod streamed_layout_identity {
    use std::collections::BTreeMap;

    use headroom_cluster::scenario::FleetScenario;
    use headroom_cluster::sim::{RecordingPolicy, SnapshotLayout};
    use headroom_core::slo::QosRequirement;
    use headroom_online::planner::{OnlinePlannerConfig, ResizeRecommendation, SweepExec};
    use headroom_online::sweep::SweepEngine;
    use headroom_stats::persist::{Persist, Writer};
    use headroom_telemetry::ids::PoolId;
    use proptest::prelude::*;

    const POLICIES: [RecordingPolicy; 4] = [
        RecordingPolicy::SnapshotOnly,
        RecordingPolicy::Workload,
        RecordingPolicy::Full,
        RecordingPolicy::AvailabilityOnly,
    ];

    const LAYOUTS: [SnapshotLayout; 3] =
        [SnapshotLayout::Rows, SnapshotLayout::Columnar, SnapshotLayout::Streamed];

    /// The engine's persisted state, as the service layer would write it.
    fn checkpoint(engine: &SweepEngine) -> Vec<u8> {
        let mut w = Writer::new();
        engine.persist(&mut w);
        w.into_bytes()
    }

    /// One closed-loop drive through `layout`; returns whether the engine
    /// assessed any pool, the final checkpoint bytes, and every window's
    /// drained recommendations.
    fn drive(
        policy: RecordingPolicy,
        layout: SnapshotLayout,
        seed: u64,
        threads: usize,
        exec: SweepExec,
        windows: u64,
    ) -> (bool, Vec<u8>, Vec<Vec<ResizeRecommendation>>) {
        let mut sim = FleetScenario::small(seed).with_recording(policy).into_simulation();
        let config = OnlinePlannerConfig {
            window_capacity: 120,
            min_fit_windows: 60,
            // Small fleet: force one-pool chunks so multi-thread cells
            // actually exercise the parallel path (and its tile splits).
            min_pool_chunk: 1,
            threads,
            exec,
            ..OnlinePlannerConfig::default()
        };
        let mut engine =
            SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
        let physical: BTreeMap<PoolId, usize> =
            sim.fleet().pools().iter().map(|p| (p.id, p.size())).collect();
        let mut all = Vec::with_capacity(windows as usize);
        for _ in 0..windows {
            match layout {
                SnapshotLayout::Streamed => {
                    let win = sim.step_streamed();
                    engine.observe_streamed(&win);
                }
                SnapshotLayout::Columnar => {
                    let snap = sim.step_columns_partitioned();
                    engine.observe_columns(&snap);
                }
                SnapshotLayout::Rows => {
                    let snap = sim.step_snapshot_partitioned();
                    engine.observe_partitioned(&snap);
                }
            }
            let recs = engine.drain_recommendations();
            let next = sim.current_window();
            for rec in &recs {
                let target = rec.to_servers.clamp(1, physical[&rec.pool]);
                let _ = sim.schedule_resize(rec.pool, next, target);
            }
            all.push(recs);
        }
        (!engine.assessments().is_empty(), checkpoint(&engine), all)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Streamed == columns == rows — recommendations and checkpoint
        /// bytes — for every recording policy × threads 1–8 × exec mode.
        /// The three drives share one `(threads, exec)` config, so the
        /// serialized configs coincide and any byte difference is real
        /// planner-state divergence.
        #[test]
        fn streamed_pipeline_is_bit_identical(
            policy_pick in 0usize..4,
            seed in any::<u64>(),
            threads in 1usize..9,
            exec_scoped in any::<bool>(),
        ) {
            let policy = POLICIES[policy_pick];
            let exec = if exec_scoped { SweepExec::Scoped } else { SweepExec::Persistent };
            let windows = 150u64;
            let [(rows_planned, rows_ckpt, rows_recs), (_, cols_ckpt, cols_recs), (_, str_ckpt, str_recs)] =
                LAYOUTS.map(|layout| drive(policy, layout, seed, threads, exec, windows));
            prop_assert!(rows_planned, "the drive never assessed a pool — the fixture went inert");
            prop_assert_eq!(&rows_recs, &cols_recs, "columns diverged from rows");
            prop_assert_eq!(&rows_recs, &str_recs, "streamed diverged from rows");
            prop_assert_eq!(&rows_ckpt, &cols_ckpt, "columnar checkpoint bytes diverged");
            prop_assert_eq!(&rows_ckpt, &str_ckpt, "streamed checkpoint bytes diverged");
        }
    }
}
