//! End-to-end drift detection: a *scheduled* response-profile change in the
//! simulator (a release that makes every request dearer) must be caught by
//! the streaming planner's drift detector — previously this path was only
//! exercised with synthetic hand-fed regressions.

use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::Simulation;
use headroom_core::slo::QosRequirement;
use headroom_online::planner::{OnlinePlanner, OnlinePlannerConfig};
use headroom_telemetry::time::WindowIndex;

fn planner() -> OnlinePlanner {
    let config = OnlinePlannerConfig {
        window_capacity: 300,
        min_fit_windows: 60,
        ..OnlinePlannerConfig::default()
    };
    OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0))
}

fn sim_with_release_at(window: Option<u64>) -> Simulation {
    let mut sim =
        FleetScenario::single_service(headroom_cluster::catalog::MicroserviceKind::B, 1, 8, 17)
            .into_simulation();
    if let Some(w) = window {
        let pool = sim.fleet().pools()[0].id;
        // A release that raises per-request CPU cost by 60%: a 60% level
        // shift in the workload→CPU response, well past the detector's 20%
        // tolerance but invisible in the demand stream.
        let release = sim.fleet().pools()[0].model.clone().with_cpu_per_rps_scaled(1.6);
        sim.schedule_model_swap(pool, WindowIndex(w), release).expect("pool exists");
    }
    sim
}

#[test]
fn scheduled_model_swap_triggers_drift_reset() {
    let mut sim = sim_with_release_at(Some(300));
    let mut p = planner();
    p.run(&mut sim, 520);
    let pool = sim.fleet().pools()[0].id;
    let assessment = &p.assessments()[&pool];
    assert!(assessment.drift_events >= 1, "the release was detected as drift: {assessment:?}");
    // The planner re-learned the post-release curve: its CPU fit is clean
    // again and the pool is still being sized.
    assert!(assessment.cpu_r_squared > 0.9, "re-learned fit, r2 {}", assessment.cpu_r_squared);
    assert!(assessment.slo_reachable);
}

#[test]
fn no_release_no_drift() {
    let mut sim = sim_with_release_at(None);
    let mut p = planner();
    p.run(&mut sim, 520);
    let pool = sim.fleet().pools()[0].id;
    let assessment = &p.assessments()[&pool];
    assert_eq!(assessment.drift_events, 0, "stationary profile must not false-fire");
}
