//! The acceptance property of the streaming planner: driven window-by-window
//! over a fleet scenario, it reproduces the batch optimizer's minimum pool
//! size within ±1 server at end of run — while never holding more than a
//! sliding window of aggregates.

use headroom_cluster::scenario::FleetScenario;
use headroom_core::optimizer::optimize_pool;
use headroom_core::sizing::SizingPlanner;
use headroom_core::slo::QosRequirement;
use headroom_online::planner::{OnlinePlanner, OnlinePlannerConfig};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::{WindowIndex, WindowRange};

fn qos_for(pool: PoolId) -> QosRequirement {
    QosRequirement::small_fleet(pool)
}

fn run_comparison(seed: u64, days: f64) {
    let windows = (days * 720.0) as u64;
    let mut sim = FleetScenario::small(seed).into_simulation();

    // The online planner sees every window exactly once, as a stream.
    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: 180,
        ..OnlinePlannerConfig::default()
    };
    let mut planner = OnlinePlanner::new(config, qos_for(PoolId(0)));
    for pool in 3..6 {
        planner.set_qos(PoolId(pool), qos_for(PoolId(pool)));
    }
    planner.run(&mut sim, windows);

    // The batch optimizer sees the identical telemetry, all at once.
    let range = WindowRange::new(WindowIndex(0), sim.current_window());
    let store = sim.store();
    let availability = sim.availability();

    let sizings = planner.sizings();
    assert_eq!(sizings.len(), 6, "all six pools planned online");
    for sizing in sizings {
        let batch = optimize_pool(
            store,
            availability,
            sizing.pool,
            range,
            &qos_for(sizing.pool),
            days.ceil() as u64,
        )
        .expect("batch plan");
        assert_eq!(
            batch.current_servers, sizing.current_servers,
            "pool {:?}: same view of current allocation",
            sizing.pool
        );
        let diff = batch.min_servers.abs_diff(sizing.min_servers);
        assert!(
            diff <= 1,
            "pool {:?}: online min {} vs batch min {} (peak online {:.0}, batch {:.0})",
            sizing.pool,
            sizing.min_servers,
            batch.min_servers,
            sizing.peak_total_rps,
            batch.peak_total_rps,
        );
        // Both planners must actually find the built-in ~1/3 headroom.
        assert!(
            sizing.min_servers < sizing.current_servers,
            "pool {:?}: headroom exists and is found",
            sizing.pool
        );
    }
}

#[test]
fn online_matches_batch_small_fleet_two_days() {
    run_comparison(21, 2.0);
}

#[test]
fn online_matches_batch_other_seed() {
    run_comparison(77, 2.0);
}

#[test]
fn online_planner_emits_shrink_recommendations() {
    let mut sim = FleetScenario::small(5).into_simulation();
    let config = OnlinePlannerConfig { min_fit_windows: 180, ..OnlinePlannerConfig::default() };
    let mut planner =
        OnlinePlanner::new(config, QosRequirement::latency(32.5).with_cpu_ceiling(90.0));
    for pool in 3..6 {
        planner.set_qos(PoolId(pool), QosRequirement::latency(58.0).with_cpu_ceiling(90.0));
    }
    let recs = planner.run(&mut sim, 720);
    assert!(!recs.is_empty(), "overprovisioned fleet yields recommendations");
    assert!(recs
        .iter()
        .all(|r| r.to_servers >= 1 && r.from_servers >= r.to_servers.min(r.from_servers)));
    // Assessments carry exhaustion context.
    for assessment in planner.assessments().values() {
        assert!(assessment.cpu_r_squared > 0.9, "clean linear response");
        assert!(assessment.slo_reachable);
        assert!(assessment.latency_p95_stream_ms.is_some());
    }
}

#[test]
fn closed_loop_resizes_converge_within_qos() {
    // Let the planner actually apply its shrink decisions, then verify the
    // pool still meets its SLO at the reduced size.
    let mut sim = FleetScenario::small(33).into_simulation();
    let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
    let config = OnlinePlannerConfig {
        min_fit_windows: 360,
        deadband_servers: 2,
        ..OnlinePlannerConfig::default()
    };
    let mut planner = OnlinePlanner::new(config, qos);
    for pool in 3..6 {
        planner.set_qos(PoolId(pool), QosRequirement::latency(58.0).with_cpu_ceiling(90.0));
    }
    let applied = planner.run_closed_loop(&mut sim, 1440);
    assert!(!applied.is_empty(), "closed loop applied resizes");
    assert!(
        applied.iter().any(|r| r.to_servers < r.from_servers),
        "at least one shrink was applied"
    );

    // Post-convergence telemetry: over the final half day, every pool's
    // per-window mean p95 latency stays within its SLO (with a small
    // allowance for windows straddling a resize).
    let end = sim.current_window();
    let recent = WindowRange::new(WindowIndex(end.0 - 360), end);
    for pool in sim.store().pools() {
        let slo = if pool.0 < 3 { 32.5 } else { 58.0 };
        let series = sim.store().pool_mean_series(
            pool,
            headroom_telemetry::counter::CounterKind::LatencyP95Ms,
            recent,
        );
        let values: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
        let p95 = headroom_stats::percentile::percentile(&values, 95.0).unwrap();
        assert!(
            p95 <= slo * 1.10,
            "pool {pool:?}: recent p95-of-windows {p95:.1} ms within SLO {slo}"
        );
    }
    // The fleet genuinely shrank: at least one pool serves with fewer
    // active servers than it was built with.
    let shrunk = sim
        .store()
        .pools()
        .iter()
        .any(|&p| sim.store().pool_active_servers(p, WindowIndex(end.0 - 1)) < 20);
    assert!(shrunk, "resize took effect in the simulator");
}
