//! Property tests for the metric store and availability log.

use headroom_telemetry::availability::AvailabilityLog;
use headroom_telemetry::counter::CounterKind;
use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
use headroom_telemetry::series::TimeSeries;
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::{WindowIndex, WindowRange};
use proptest::prelude::*;

proptest! {
    /// A pool-window mean always lies within the recorded values' range and
    /// only covers servers that actually recorded.
    #[test]
    fn pool_mean_is_bounded(values in prop::collection::vec(0.0f64..100.0, 1..20)) {
        let mut store = MetricStore::new();
        for (i, &v) in values.iter().enumerate() {
            let s = ServerId(i as u32);
            store.register_server(s, PoolId(0), DatacenterId(0));
            store.record(s, CounterKind::CpuPercent, WindowIndex(0), v);
        }
        let mean = store
            .pool_window_mean(PoolId(0), CounterKind::CpuPercent, WindowIndex(0))
            .unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    /// Every value pushed into a series is read back exactly; gaps stay gaps.
    #[test]
    fn series_round_trip(
        entries in prop::collection::btree_map(0u64..500, -1e6f64..1e6, 1..60)
    ) {
        let mut series = TimeSeries::new(WindowIndex(*entries.keys().next().unwrap()));
        for (&w, &v) in &entries {
            series.push(WindowIndex(w), v);
        }
        for (&w, &v) in &entries {
            prop_assert_eq!(series.value_at(WindowIndex(w)), Some(v));
        }
        prop_assert_eq!(series.recorded_count(), entries.len());
        // Windows not in the map are gaps.
        for w in 0..500u64 {
            if !entries.contains_key(&w) {
                prop_assert_eq!(series.value_at(WindowIndex(w)), None);
            }
        }
    }

    /// values_in over the full range returns values in window order.
    #[test]
    fn values_in_ordered(
        entries in prop::collection::btree_map(0u64..200, -1e3f64..1e3, 1..40)
    ) {
        let series: TimeSeries =
            entries.iter().map(|(&w, &v)| (WindowIndex(w), v)).collect();
        let all = series.values_in(WindowRange::new(WindowIndex(0), WindowIndex(200)));
        let expected: Vec<f64> = entries.values().copied().collect();
        prop_assert_eq!(all, expected);
    }

    /// Daily availability is the exact fraction of online windows.
    #[test]
    fn availability_fraction_exact(flags in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut log = AvailabilityLog::new();
        for (i, &online) in flags.iter().enumerate() {
            log.record(ServerId(0), WindowIndex(i as u64), online);
        }
        let expected = flags.iter().filter(|&&o| o).count() as f64 / flags.len() as f64;
        let got = log.daily_availability(ServerId(0), 0).unwrap();
        prop_assert!((got - expected).abs() < 1e-12);
    }

    /// Fleet mean availability is an average of per-server-day records, so
    /// it stays within [min, max] of them.
    #[test]
    fn fleet_mean_bounded(
        rows in prop::collection::vec((0u32..8, prop::collection::vec(any::<bool>(), 1..50)), 1..8)
    ) {
        let mut log = AvailabilityLog::new();
        for (server, flags) in &rows {
            for (i, &online) in flags.iter().enumerate() {
                log.record(ServerId(*server), WindowIndex(i as u64), online);
            }
        }
        let records = log.daily_records();
        let mean = log.fleet_mean_availability().unwrap();
        let lo = records.iter().map(|(_, _, a)| *a).fold(f64::INFINITY, f64::min);
        let hi = records.iter().map(|(_, _, a)| *a).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
    }
}
