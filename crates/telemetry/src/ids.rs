//! Typed identifiers for fleet entities.
//!
//! Newtypes keep datacenter, pool and server identifiers from being mixed up
//! in the planner's bookkeeping (the classic "passed the pool id where the
//! server id goes" bug class).

use std::fmt;

/// Identifier of a datacenter (the paper's service spans 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DatacenterId(pub u16);

/// Identifier of a server pool (one pool per micro-service per datacenter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PoolId(pub u32);

/// Identifier of an individual server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(pub u32);

impl fmt::Display for DatacenterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DC{}", self.0 + 1)
    }
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool-{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv-{}", self.0)
    }
}

impl From<u16> for DatacenterId {
    fn from(v: u16) -> Self {
        DatacenterId(v)
    }
}

impl From<u32> for PoolId {
    fn from(v: u32) -> Self {
        PoolId(v)
    }
}

impl From<u32> for ServerId {
    fn from(v: u32) -> Self {
        ServerId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_matches_paper_convention() {
        // The paper labels datacenters DC 1..DC 9 (one-based).
        assert_eq!(DatacenterId(0).to_string(), "DC1");
        assert_eq!(DatacenterId(4).to_string(), "DC5");
        assert_eq!(PoolId(3).to_string(), "pool-3");
        assert_eq!(ServerId(17).to_string(), "srv-17");
    }

    #[test]
    fn usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(ServerId(1));
        set.insert(ServerId(1));
        set.insert(ServerId(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(ServerId(2) < ServerId(10));
        assert!(DatacenterId(0) < DatacenterId(1));
    }

    #[test]
    fn from_impls() {
        assert_eq!(DatacenterId::from(3u16), DatacenterId(3));
        assert_eq!(PoolId::from(9u32), PoolId(9));
        assert_eq!(ServerId::from(8u32), ServerId(8));
    }
}
