//! The performance-counter vocabulary.
//!
//! Fig. 2 of the paper plots six per-server counters against workload:
//! processor utilisation, disk read bytes/s, disk queue length, memory
//! pages/s, network bytes and packets. The workload itself (requests per
//! second) and the QoS signals (latency percentiles) are recorded through
//! the same machinery so every analysis draws from one store.
//!
//! §II-A1's central observation is that counters must be *partitioned by
//! workload*: a server runs its primary micro-service plus background tasks
//! (log uploads, system processes), and only the primary workload's share
//! correlates linearly with request volume. [`WorkloadTag`] carries that
//! partition.

use std::fmt;

/// One performance counter or derived per-window metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CounterKind {
    /// Processor utilisation, percent of one server's capacity (0–100).
    CpuPercent,
    /// Disk read bytes per second.
    DiskReadBytesPerSec,
    /// Disk write bytes per second.
    DiskWriteBytesPerSec,
    /// Instantaneous disk queue length.
    DiskQueueLength,
    /// Memory pages per second (paging activity).
    MemoryPagesPerSec,
    /// Total network bytes per second (in + out).
    NetworkBytesPerSec,
    /// Network packets per second.
    NetworkPacketsPerSec,
    /// Requests processed per second by the server (the workload metric).
    RequestsPerSec,
    /// Mean request latency in milliseconds over the window.
    LatencyAvgMs,
    /// 95th-percentile request latency in milliseconds over the window.
    LatencyP95Ms,
    /// Request failures per second.
    ErrorsPerSec,
    /// Resident memory in megabytes.
    MemoryResidentMb,
}

impl CounterKind {
    /// All counters, in a stable display order (the Fig. 2 panel order
    /// followed by workload/QoS metrics).
    pub const ALL: [CounterKind; 12] = [
        CounterKind::CpuPercent,
        CounterKind::DiskReadBytesPerSec,
        CounterKind::DiskWriteBytesPerSec,
        CounterKind::DiskQueueLength,
        CounterKind::MemoryPagesPerSec,
        CounterKind::NetworkBytesPerSec,
        CounterKind::NetworkPacketsPerSec,
        CounterKind::RequestsPerSec,
        CounterKind::LatencyAvgMs,
        CounterKind::LatencyP95Ms,
        CounterKind::ErrorsPerSec,
        CounterKind::MemoryResidentMb,
    ];

    /// The six resource panels of Fig. 2 (everything except workload/QoS).
    pub const FIG2_RESOURCES: [CounterKind; 6] = [
        CounterKind::CpuPercent,
        CounterKind::DiskReadBytesPerSec,
        CounterKind::DiskQueueLength,
        CounterKind::MemoryPagesPerSec,
        CounterKind::NetworkBytesPerSec,
        CounterKind::NetworkPacketsPerSec,
    ];

    /// Human-readable counter name as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            CounterKind::CpuPercent => "Processor Utilization",
            CounterKind::DiskReadBytesPerSec => "Disk Read Bytes/sec",
            CounterKind::DiskWriteBytesPerSec => "Disk Write Bytes/sec",
            CounterKind::DiskQueueLength => "Disk Queue Length",
            CounterKind::MemoryPagesPerSec => "Memory Pages/sec",
            CounterKind::NetworkBytesPerSec => "Network Bytes Total",
            CounterKind::NetworkPacketsPerSec => "Network Packets/sec",
            CounterKind::RequestsPerSec => "Requests/sec",
            CounterKind::LatencyAvgMs => "Latency (avg ms)",
            CounterKind::LatencyP95Ms => "Latency (p95 ms)",
            CounterKind::ErrorsPerSec => "Errors/sec",
            CounterKind::MemoryResidentMb => "Memory Resident (MB)",
        }
    }

    /// Whether this counter measures a *resource* (true) as opposed to
    /// workload volume or QoS (false).
    pub fn is_resource(&self) -> bool {
        !matches!(
            self,
            CounterKind::RequestsPerSec
                | CounterKind::LatencyAvgMs
                | CounterKind::LatencyP95Ms
                | CounterKind::ErrorsPerSec
        )
    }
}

impl fmt::Display for CounterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A sizeable server resource — one axis along which a pool can run out of
/// capacity.
///
/// §II-A1 sizes each pool against its *limiting resource*: whichever of the
/// Fig. 2 counters first crosses its safety threshold as workload grows.
/// This enum is the fixed vocabulary the planner fits one response curve
/// per entry for; the indices are stable, so per-resource state can live in
/// plain `[T; Resource::COUNT]` arrays with no per-window allocation.
///
/// # Example
///
/// ```
/// use headroom_telemetry::counter::{CounterKind, Resource};
///
/// let mut utilization = [0.0f64; Resource::COUNT];
/// utilization[Resource::DiskQueue.index()] = 3.5;
/// assert_eq!(Resource::ALL[Resource::DiskQueue.index()], Resource::DiskQueue);
/// assert_eq!(Resource::Cpu.counter(), CounterKind::CpuPercent);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Processor utilisation, percent (0–100).
    Cpu,
    /// Instantaneous disk queue length.
    DiskQueue,
    /// Memory paging activity, pages per second.
    MemoryPages,
    /// Network throughput, megabits per second (in + out).
    Network,
}

impl Resource {
    /// Number of resources — the length of every per-resource array.
    pub const COUNT: usize = 4;

    /// Every resource, in index order (`ALL[r.index()] == r`).
    pub const ALL: [Resource; Resource::COUNT] =
        [Resource::Cpu, Resource::DiskQueue, Resource::MemoryPages, Resource::Network];

    /// The stable array index of this resource.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The raw counter this resource's utilization is *derived* from.
    ///
    /// For [`Resource::Network`] the planner-side utilization unit is
    /// megabits per second, not the raw [`CounterKind::NetworkBytesPerSec`]
    /// reading: convert with `mbps = bytes_per_sec * 8 / 1e6` before
    /// feeding planner aggregates or comparing against a
    /// network limit. The other resources use their counter's unit as-is.
    pub fn counter(self) -> CounterKind {
        match self {
            Resource::Cpu => CounterKind::CpuPercent,
            Resource::DiskQueue => CounterKind::DiskQueueLength,
            Resource::MemoryPages => CounterKind::MemoryPagesPerSec,
            Resource::Network => CounterKind::NetworkBytesPerSec,
        }
    }

    /// Short name used in reports and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::DiskQueue => "disk-queue",
            Resource::MemoryPages => "memory-pages",
            Resource::Network => "network",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifies the workload a counter sample is attributed to.
///
/// `Total` is the raw whole-server counter the operating system exposes.
/// `Workload(i)` is the share attributed to workload `i` on that server —
/// index 0 is conventionally the primary micro-service; higher indices are
/// secondary workloads such as the per-table split of the memcached-like
/// service or background log uploads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum WorkloadTag {
    /// Whole-server counter, all workloads mixed (the noisy default).
    #[default]
    Total,
    /// Counter partitioned to one instrumented workload.
    Workload(u8),
}

impl WorkloadTag {
    /// The primary micro-service workload on a server.
    pub const PRIMARY: WorkloadTag = WorkloadTag::Workload(0);
}

impl fmt::Display for WorkloadTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadTag::Total => write!(f, "total"),
            WorkloadTag::Workload(i) => write!(f, "workload-{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_fig2_titles() {
        assert_eq!(CounterKind::CpuPercent.label(), "Processor Utilization");
        assert_eq!(CounterKind::NetworkBytesPerSec.label(), "Network Bytes Total");
        assert_eq!(CounterKind::MemoryPagesPerSec.label(), "Memory Pages/sec");
    }

    #[test]
    fn fig2_panels_are_resources() {
        for c in CounterKind::FIG2_RESOURCES {
            assert!(c.is_resource(), "{c} should be a resource counter");
        }
        assert!(!CounterKind::RequestsPerSec.is_resource());
        assert!(!CounterKind::LatencyP95Ms.is_resource());
    }

    #[test]
    fn all_contains_every_fig2_panel() {
        for c in CounterKind::FIG2_RESOURCES {
            assert!(CounterKind::ALL.contains(&c));
        }
    }

    #[test]
    fn workload_tag_default_is_total() {
        assert_eq!(WorkloadTag::default(), WorkloadTag::Total);
        assert_eq!(WorkloadTag::PRIMARY, WorkloadTag::Workload(0));
        assert_eq!(WorkloadTag::PRIMARY.to_string(), "workload-0");
        assert_eq!(WorkloadTag::Total.to_string(), "total");
    }

    #[test]
    fn resource_indices_are_stable() {
        for (i, r) in Resource::ALL.iter().enumerate() {
            assert_eq!(r.index(), i, "{r} index drifted");
            assert!(r.counter().is_resource(), "{r} maps to a resource counter");
        }
        assert_eq!(Resource::ALL.len(), Resource::COUNT);
        assert_eq!(Resource::Network.to_string(), "network");
    }

    #[test]
    fn counters_usable_as_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(CounterKind::CpuPercent, 1);
        m.insert(CounterKind::CpuPercent, 2);
        assert_eq!(m.len(), 1);
    }
}
