//! Measurement substrate for the `headroom` capacity planner.
//!
//! The ICDCS'18 paper's dataset is 30 PB of performance counters "sampled
//! every 100 ns and averaged over a 120 s window" from hundreds of thousands
//! of production servers. This crate reproduces that measurement layer for
//! the simulated fleet:
//!
//! - [`time`] — simulated time and the canonical 120-second windows;
//! - [`ids`] — typed identifiers for datacenters, pools and servers;
//! - [`counter`] — the performance-counter vocabulary of Fig. 2, including
//!   *per-workload* metric partitioning (§II-A1's key lesson: blind
//!   whole-server counters are too noisy for capacity planning);
//! - [`series`] — dense window-aligned time series;
//! - [`store`] — the queryable metric store fed by the fleet simulator;
//! - [`availability`] — per-server online/offline accounting behind the
//!   paper's availability study (Figs. 14–15).
//!
//! # Example
//!
//! ```
//! use headroom_telemetry::counter::CounterKind;
//! use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
//! use headroom_telemetry::store::MetricStore;
//! use headroom_telemetry::time::WindowIndex;
//!
//! let mut store = MetricStore::new();
//! let server = ServerId(0);
//! store.register_server(server, PoolId(0), DatacenterId(0));
//! store.record(server, CounterKind::CpuPercent, WindowIndex(0), 12.5);
//! let series = store.series(server, CounterKind::CpuPercent).unwrap();
//! assert_eq!(series.value_at(WindowIndex(0)), Some(12.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod counter;
pub mod ids;
pub mod series;
pub mod store;
pub mod time;

pub use counter::{CounterKind, Resource};
pub use ids::{DatacenterId, PoolId, ServerId};
pub use store::MetricStore;
pub use time::{SimTime, WindowIndex, WINDOW_SECONDS};
