//! Per-server availability accounting.
//!
//! §III-B2 of the paper measures "the percentage of time each server was
//! online daily" and finds an overall average of 83%, a large population at
//! 85% and 98%, and pools whose availability is consistent across their
//! servers (Fig. 15). Well-managed maintenance needs only ~2% downtime.
//!
//! Storage is aggregated per `(server, day)` so a 90-day fleet run fits in
//! memory: one pair of counters per server-day rather than one flag per
//! 120-second window.

use std::collections::HashMap;

use crate::ids::ServerId;
use crate::time::WindowIndex;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DayCounters {
    online: u32,
    total: u32,
}

/// Accumulates online/offline windows per server per day.
///
/// # Example
///
/// ```
/// use headroom_telemetry::availability::AvailabilityLog;
/// use headroom_telemetry::ids::ServerId;
/// use headroom_telemetry::time::WindowIndex;
///
/// let mut log = AvailabilityLog::new();
/// // Three windows on day 0: online, online, offline.
/// log.record(ServerId(0), WindowIndex(0), true);
/// log.record(ServerId(0), WindowIndex(1), true);
/// log.record(ServerId(0), WindowIndex(2), false);
/// let avail = log.daily_availability(ServerId(0), 0).unwrap();
/// assert!((avail - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AvailabilityLog {
    days: HashMap<(ServerId, u64), DayCounters>,
    servers: Vec<ServerId>,
}

impl AvailabilityLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AvailabilityLog::default()
    }

    /// Records one window of a server's life.
    pub fn record(&mut self, server: ServerId, window: WindowIndex, online: bool) {
        let key = (server, window.day());
        let entry = self.days.entry(key).or_insert_with(|| {
            if !self.servers.contains(&server) {
                self.servers.push(server);
            }
            DayCounters::default()
        });
        entry.total += 1;
        if online {
            entry.online += 1;
        }
    }

    /// Fraction of recorded windows the server was online on `day`.
    pub fn daily_availability(&self, server: ServerId, day: u64) -> Option<f64> {
        self.days.get(&(server, day)).and_then(|c| {
            if c.total == 0 {
                None
            } else {
                Some(c.online as f64 / c.total as f64)
            }
        })
    }

    /// Mean availability of the server across all recorded days.
    pub fn mean_availability(&self, server: ServerId) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for ((s, _), c) in &self.days {
            if *s == server && c.total > 0 {
                sum += c.online as f64 / c.total as f64;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Every `(server, day, availability)` record — the Fig. 14 sample set.
    pub fn daily_records(&self) -> Vec<(ServerId, u64, f64)> {
        let mut records: Vec<(ServerId, u64, f64)> = self
            .days
            .iter()
            .filter(|(_, c)| c.total > 0)
            .map(|((s, d), c)| (*s, *d, c.online as f64 / c.total as f64))
            .collect();
        records.sort_by_key(|(s, d, _)| (*s, *d));
        records
    }

    /// Mean availability across a set of servers on one day — the Fig. 15
    /// per-pool daily series, given the pool's member list.
    pub fn pool_daily_availability(&self, members: &[ServerId], day: u64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &s in members {
            if let Some(a) = self.daily_availability(s, day) {
                sum += a;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Per-day pool availability over `days` days.
    pub fn pool_daily_series(&self, members: &[ServerId], days: u64) -> Vec<(u64, f64)> {
        (0..days).filter_map(|d| self.pool_daily_availability(members, d).map(|a| (d, a))).collect()
    }

    /// Fleet-wide mean of all per-server-day availabilities (the paper's
    /// headline "overall average availability was 83%").
    pub fn fleet_mean_availability(&self) -> Option<f64> {
        let records = self.daily_records();
        if records.is_empty() {
            return None;
        }
        Some(records.iter().map(|(_, _, a)| a).sum::<f64>() / records.len() as f64)
    }

    /// Servers with at least one recorded window, in first-seen order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// Number of recorded server-days.
    pub fn record_count(&self) -> usize {
        self.days.len()
    }
}

/// A summary of fleet availability split by cause, used by the optimizer's
/// "savings from improving server availability" analysis (§III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvailabilityBreakdown {
    /// Mean fleet availability (0..=1).
    pub mean: f64,
    /// Availability of the best-managed population (the paper's 98%).
    pub well_managed: f64,
    /// Estimated overhead of unavoidable infrastructure maintenance
    /// (`1 - well_managed`, the paper's 2%).
    pub infrastructure_overhead: f64,
    /// Capacity reclaimable by lifting every pool to the well-managed level
    /// (`well_managed - mean`).
    pub improvable: f64,
}

impl AvailabilityBreakdown {
    /// Computes the breakdown from a log, taking the 90th percentile of
    /// per-server mean availability as the "well-managed" level (high
    /// enough to represent the best-run population, low enough that a few
    /// servers that happened to dodge every rotation don't pin the level at
    /// a meaningless 100%).
    ///
    /// Returns `None` when the log is empty.
    pub fn from_log(log: &AvailabilityLog) -> Option<Self> {
        let mut per_server: Vec<f64> =
            log.servers().iter().filter_map(|&s| log.mean_availability(s)).collect();
        if per_server.is_empty() {
            return None;
        }
        per_server.sort_by(|a, b| a.partial_cmp(b).expect("availability is finite"));
        let well_managed = headroom_stats::percentile::percentile_of_sorted(&per_server, 90.0);
        let mean = log.fleet_mean_availability()?;
        Some(AvailabilityBreakdown {
            mean,
            well_managed,
            infrastructure_overhead: 1.0 - well_managed,
            improvable: (well_managed - mean).max(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::WINDOWS_PER_DAY;

    #[test]
    fn daily_availability_fraction() {
        let mut log = AvailabilityLog::new();
        for w in 0..10u64 {
            log.record(ServerId(1), WindowIndex(w), w < 8);
        }
        assert_eq!(log.daily_availability(ServerId(1), 0), Some(0.8));
        assert_eq!(log.daily_availability(ServerId(1), 1), None);
        assert_eq!(log.daily_availability(ServerId(9), 0), None);
    }

    #[test]
    fn windows_split_across_days() {
        let mut log = AvailabilityLog::new();
        log.record(ServerId(0), WindowIndex(WINDOWS_PER_DAY - 1), true);
        log.record(ServerId(0), WindowIndex(WINDOWS_PER_DAY), false);
        assert_eq!(log.daily_availability(ServerId(0), 0), Some(1.0));
        assert_eq!(log.daily_availability(ServerId(0), 1), Some(0.0));
    }

    #[test]
    fn mean_availability_across_days() {
        let mut log = AvailabilityLog::new();
        // Day 0: 100%, day 1: 50%.
        log.record(ServerId(0), WindowIndex(0), true);
        log.record(ServerId(0), WindowIndex(WINDOWS_PER_DAY), true);
        log.record(ServerId(0), WindowIndex(WINDOWS_PER_DAY + 1), false);
        assert_eq!(log.mean_availability(ServerId(0)), Some(0.75));
    }

    #[test]
    fn pool_daily_series() {
        let mut log = AvailabilityLog::new();
        let members = [ServerId(0), ServerId(1)];
        for day in 0..3u64 {
            for &s in &members {
                let w = WindowIndex(day * WINDOWS_PER_DAY);
                log.record(s, w, true);
                log.record(s, WindowIndex(w.0 + 1), s == ServerId(0));
            }
        }
        let series = log.pool_daily_series(&members, 3);
        assert_eq!(series.len(), 3);
        for (_, a) in series {
            assert!((a - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn fleet_mean() {
        let mut log = AvailabilityLog::new();
        log.record(ServerId(0), WindowIndex(0), true);
        log.record(ServerId(1), WindowIndex(0), false);
        assert_eq!(log.fleet_mean_availability(), Some(0.5));
        assert_eq!(log.record_count(), 2);
        assert_eq!(log.servers().len(), 2);
    }

    #[test]
    fn empty_log_returns_none() {
        let log = AvailabilityLog::new();
        assert_eq!(log.fleet_mean_availability(), None);
        assert!(AvailabilityBreakdown::from_log(&log).is_none());
    }

    #[test]
    fn breakdown_matches_paper_structure() {
        let mut log = AvailabilityLog::new();
        // 18 well-managed servers at 98%, 2 poorly-managed at 60%.
        for i in 0..20u32 {
            let target = if i < 18 { 0.98 } else { 0.60 };
            for w in 0..100u64 {
                let online = (w as f64 / 100.0) < target;
                log.record(ServerId(i), WindowIndex(w), online);
            }
        }
        let b = AvailabilityBreakdown::from_log(&log).unwrap();
        assert!((b.well_managed - 0.98).abs() < 0.01);
        assert!((b.infrastructure_overhead - 0.02).abs() < 0.01);
        assert!(b.mean < b.well_managed);
        assert!(b.improvable > 0.0);
    }

    #[test]
    fn daily_records_sorted() {
        let mut log = AvailabilityLog::new();
        log.record(ServerId(1), WindowIndex(WINDOWS_PER_DAY), true);
        log.record(ServerId(0), WindowIndex(0), true);
        let records = log.daily_records();
        assert_eq!(records[0].0, ServerId(0));
        assert_eq!(records[1].0, ServerId(1));
    }
}
