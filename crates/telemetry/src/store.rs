//! The queryable metric store fed by the fleet simulator.
//!
//! Stores one [`TimeSeries`] per `(server, counter, workload)` triple plus a
//! registry mapping servers into pools and datacenters, and answers the
//! aggregate queries the planner asks: per-pool per-window means, paired
//! workload/resource observations, and per-server sample sets.

use std::collections::HashMap;

use crate::counter::{CounterKind, WorkloadTag};
use crate::ids::{DatacenterId, PoolId, ServerId};
use crate::series::TimeSeries;
use crate::time::{WindowIndex, WindowRange};

/// Pool/datacenter membership of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerMeta {
    /// Pool the server belongs to.
    pub pool: PoolId,
    /// Datacenter hosting the server.
    pub datacenter: DatacenterId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SeriesKey {
    server: ServerId,
    counter: CounterKind,
    workload: WorkloadTag,
}

/// In-memory store of windowed counter series for a fleet.
///
/// # Example
///
/// ```
/// use headroom_telemetry::counter::CounterKind;
/// use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
/// use headroom_telemetry::store::MetricStore;
/// use headroom_telemetry::time::{WindowIndex, WindowRange};
///
/// let mut store = MetricStore::new();
/// for i in 0..3 {
///     let s = ServerId(i);
///     store.register_server(s, PoolId(0), DatacenterId(0));
///     store.record(s, CounterKind::CpuPercent, WindowIndex(0), 10.0 + i as f64);
/// }
/// let mean = store
///     .pool_window_mean(PoolId(0), CounterKind::CpuPercent, WindowIndex(0))
///     .unwrap();
/// assert_eq!(mean, 11.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricStore {
    servers: HashMap<ServerId, ServerMeta>,
    pool_members: HashMap<PoolId, Vec<ServerId>>,
    pool_datacenters: HashMap<PoolId, DatacenterId>,
    series: HashMap<SeriesKey, TimeSeries>,
}

impl MetricStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MetricStore::default()
    }

    /// Registers a server's pool/datacenter membership.
    ///
    /// Registering the same server twice is idempotent; re-registering with
    /// a *different* pool moves the server (its series are kept).
    pub fn register_server(&mut self, server: ServerId, pool: PoolId, datacenter: DatacenterId) {
        if let Some(prev) = self.servers.insert(server, ServerMeta { pool, datacenter }) {
            if prev.pool != pool {
                if let Some(members) = self.pool_members.get_mut(&prev.pool) {
                    members.retain(|&s| s != server);
                }
            } else {
                self.pool_datacenters.insert(pool, datacenter);
                return;
            }
        }
        let members = self.pool_members.entry(pool).or_default();
        if !members.contains(&server) {
            members.push(server);
        }
        self.pool_datacenters.insert(pool, datacenter);
    }

    /// Metadata for a server, if registered.
    pub fn server_meta(&self, server: ServerId) -> Option<ServerMeta> {
        self.servers.get(&server).copied()
    }

    /// Records a whole-server ([`WorkloadTag::Total`]) counter value.
    pub fn record(
        &mut self,
        server: ServerId,
        counter: CounterKind,
        window: WindowIndex,
        value: f64,
    ) {
        self.record_tagged(server, counter, WorkloadTag::Total, window, value);
    }

    /// Records a counter value attributed to a specific workload.
    pub fn record_tagged(
        &mut self,
        server: ServerId,
        counter: CounterKind,
        workload: WorkloadTag,
        window: WindowIndex,
        value: f64,
    ) {
        let key = SeriesKey { server, counter, workload };
        self.series.entry(key).or_insert_with(|| TimeSeries::new(window)).push(window, value);
    }

    /// The whole-server series for a counter.
    pub fn series(&self, server: ServerId, counter: CounterKind) -> Option<&TimeSeries> {
        self.series_tagged(server, counter, WorkloadTag::Total)
    }

    /// The per-workload series for a counter.
    pub fn series_tagged(
        &self,
        server: ServerId,
        counter: CounterKind,
        workload: WorkloadTag,
    ) -> Option<&TimeSeries> {
        self.series.get(&SeriesKey { server, counter, workload })
    }

    /// Every pool with at least one registered server, sorted.
    pub fn pools(&self) -> Vec<PoolId> {
        let mut pools: Vec<PoolId> = self.pool_members.keys().copied().collect();
        pools.sort();
        pools
    }

    /// Datacenter of a pool (pools never span datacenters).
    pub fn pool_datacenter(&self, pool: PoolId) -> Option<DatacenterId> {
        self.pool_datacenters.get(&pool).copied()
    }

    /// Servers registered to a pool (empty slice when unknown).
    pub fn servers_in_pool(&self, pool: PoolId) -> &[ServerId] {
        self.pool_members.get(&pool).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mean of a whole-server counter across pool members with data at `window`.
    pub fn pool_window_mean(
        &self,
        pool: PoolId,
        counter: CounterKind,
        window: WindowIndex,
    ) -> Option<f64> {
        self.pool_window_mean_tagged(pool, counter, WorkloadTag::Total, window)
    }

    /// Mean of a tagged counter across pool members with data at `window`.
    ///
    /// Servers without a recorded value in that window (offline, drained)
    /// are excluded rather than treated as zero — this is what makes pool
    /// averages correct through reduction experiments.
    pub fn pool_window_mean_tagged(
        &self,
        pool: PoolId,
        counter: CounterKind,
        workload: WorkloadTag,
        window: WindowIndex,
    ) -> Option<f64> {
        let members = self.pool_members.get(&pool)?;
        let mut sum = 0.0;
        let mut n = 0usize;
        for &server in members {
            if let Some(v) =
                self.series_tagged(server, counter, workload).and_then(|s| s.value_at(window))
            {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Number of pool members with a recorded [`CounterKind::RequestsPerSec`]
    /// value at `window` — i.e. servers actively serving traffic.
    pub fn pool_active_servers(&self, pool: PoolId, window: WindowIndex) -> usize {
        self.pool_members
            .get(&pool)
            .map(|members| {
                members
                    .iter()
                    .filter(|&&s| {
                        self.series(s, CounterKind::RequestsPerSec)
                            .and_then(|ts| ts.value_at(window))
                            .is_some()
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Per-window pool means of a counter over `range`, skipping windows
    /// with no data.
    pub fn pool_mean_series(
        &self,
        pool: PoolId,
        counter: CounterKind,
        range: WindowRange,
    ) -> Vec<(WindowIndex, f64)> {
        range
            .iter()
            .filter_map(|w| self.pool_window_mean(pool, counter, w).map(|v| (w, v)))
            .collect()
    }

    /// Paired per-window pool means `(x̄, ȳ)` of two counters over `range`.
    ///
    /// This is the paper's scatter-plot primitive: each Fig. 2/8/9 point is
    /// "the 1-minute average across servers in the pool" of workload on x
    /// and a resource or QoS metric on y.
    pub fn pool_paired_observations(
        &self,
        pool: PoolId,
        x: CounterKind,
        y: CounterKind,
        range: WindowRange,
    ) -> Vec<(f64, f64)> {
        range
            .iter()
            .filter_map(|w| {
                let xv = self.pool_window_mean(pool, x, w)?;
                let yv = self.pool_window_mean(pool, y, w)?;
                Some((xv, yv))
            })
            .collect()
    }

    /// All recorded values of a counter for one server within `range`.
    pub fn server_values(
        &self,
        server: ServerId,
        counter: CounterKind,
        range: WindowRange,
    ) -> Vec<f64> {
        self.series(server, counter).map(|s| s.values_in(range)).unwrap_or_default()
    }

    /// Per-server value vectors for every member of a pool within `range`.
    ///
    /// Servers with no data in range map to empty vectors.
    pub fn pool_server_values(
        &self,
        pool: PoolId,
        counter: CounterKind,
        range: WindowRange,
    ) -> Vec<(ServerId, Vec<f64>)> {
        self.servers_in_pool(pool)
            .iter()
            .map(|&s| (s, self.server_values(s, counter, range)))
            .collect()
    }

    /// Total number of recorded samples across all series (diagnostics).
    pub fn sample_count(&self) -> usize {
        self.series.values().map(|s| s.recorded_count()).sum()
    }

    /// All registered servers, sorted.
    pub fn servers(&self) -> Vec<ServerId> {
        let mut servers: Vec<ServerId> = self.servers.keys().copied().collect();
        servers.sort();
        servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_pool(n: u32) -> MetricStore {
        let mut store = MetricStore::new();
        for i in 0..n {
            store.register_server(ServerId(i), PoolId(0), DatacenterId(0));
        }
        store
    }

    #[test]
    fn register_is_idempotent() {
        let mut store = store_with_pool(1);
        store.register_server(ServerId(0), PoolId(0), DatacenterId(0));
        assert_eq!(store.servers_in_pool(PoolId(0)).len(), 1);
    }

    #[test]
    fn reregister_moves_pool() {
        let mut store = store_with_pool(2);
        store.register_server(ServerId(0), PoolId(1), DatacenterId(1));
        assert_eq!(store.servers_in_pool(PoolId(0)), &[ServerId(1)]);
        assert_eq!(store.servers_in_pool(PoolId(1)), &[ServerId(0)]);
        assert_eq!(store.server_meta(ServerId(0)).unwrap().datacenter, DatacenterId(1));
    }

    #[test]
    fn pool_mean_skips_missing_servers() {
        let mut store = store_with_pool(3);
        store.record(ServerId(0), CounterKind::CpuPercent, WindowIndex(0), 10.0);
        store.record(ServerId(1), CounterKind::CpuPercent, WindowIndex(0), 20.0);
        // Server 2 offline: no sample.
        let mean = store.pool_window_mean(PoolId(0), CounterKind::CpuPercent, WindowIndex(0));
        assert_eq!(mean, Some(15.0));
    }

    #[test]
    fn pool_mean_none_when_no_data() {
        let store = store_with_pool(3);
        assert_eq!(
            store.pool_window_mean(PoolId(0), CounterKind::CpuPercent, WindowIndex(0)),
            None
        );
        assert_eq!(
            store.pool_window_mean(PoolId(9), CounterKind::CpuPercent, WindowIndex(0)),
            None
        );
    }

    #[test]
    fn active_servers_counts_rps_reporters() {
        let mut store = store_with_pool(4);
        for i in 0..3 {
            store.record(ServerId(i), CounterKind::RequestsPerSec, WindowIndex(5), 100.0);
        }
        assert_eq!(store.pool_active_servers(PoolId(0), WindowIndex(5)), 3);
        assert_eq!(store.pool_active_servers(PoolId(0), WindowIndex(6)), 0);
    }

    #[test]
    fn paired_observations_require_both_counters() {
        let mut store = store_with_pool(1);
        let s = ServerId(0);
        store.record(s, CounterKind::RequestsPerSec, WindowIndex(0), 100.0);
        store.record(s, CounterKind::CpuPercent, WindowIndex(0), 4.0);
        store.record(s, CounterKind::RequestsPerSec, WindowIndex(1), 200.0);
        // window 1 has no CPU → excluded.
        let obs = store.pool_paired_observations(
            PoolId(0),
            CounterKind::RequestsPerSec,
            CounterKind::CpuPercent,
            WindowRange::new(WindowIndex(0), WindowIndex(10)),
        );
        assert_eq!(obs, vec![(100.0, 4.0)]);
    }

    #[test]
    fn tagged_series_are_separate() {
        let mut store = store_with_pool(1);
        let s = ServerId(0);
        store.record_tagged(
            s,
            CounterKind::CpuPercent,
            WorkloadTag::Workload(0),
            WindowIndex(0),
            8.0,
        );
        store.record_tagged(
            s,
            CounterKind::CpuPercent,
            WorkloadTag::Workload(1),
            WindowIndex(0),
            2.0,
        );
        store.record(s, CounterKind::CpuPercent, WindowIndex(0), 10.5);
        assert_eq!(
            store
                .series_tagged(s, CounterKind::CpuPercent, WorkloadTag::Workload(0))
                .unwrap()
                .value_at(WindowIndex(0)),
            Some(8.0)
        );
        assert_eq!(
            store.series(s, CounterKind::CpuPercent).unwrap().value_at(WindowIndex(0)),
            Some(10.5)
        );
    }

    #[test]
    fn pool_mean_series_over_range() {
        let mut store = store_with_pool(2);
        for w in 0..5u64 {
            store.record(ServerId(0), CounterKind::CpuPercent, WindowIndex(w), w as f64);
            store.record(ServerId(1), CounterKind::CpuPercent, WindowIndex(w), w as f64 + 2.0);
        }
        let series = store.pool_mean_series(
            PoolId(0),
            CounterKind::CpuPercent,
            WindowRange::new(WindowIndex(1), WindowIndex(4)),
        );
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (WindowIndex(1), 2.0));
    }

    #[test]
    fn server_values_and_pool_server_values() {
        let mut store = store_with_pool(2);
        store.record(ServerId(0), CounterKind::CpuPercent, WindowIndex(0), 5.0);
        store.record(ServerId(0), CounterKind::CpuPercent, WindowIndex(1), 7.0);
        let r = WindowRange::new(WindowIndex(0), WindowIndex(10));
        assert_eq!(store.server_values(ServerId(0), CounterKind::CpuPercent, r), vec![5.0, 7.0]);
        let per_server = store.pool_server_values(PoolId(0), CounterKind::CpuPercent, r);
        assert_eq!(per_server.len(), 2);
        assert!(per_server.iter().any(|(s, v)| *s == ServerId(1) && v.is_empty()));
    }

    #[test]
    fn sample_count_and_listings() {
        let mut store = store_with_pool(2);
        store.record(ServerId(0), CounterKind::CpuPercent, WindowIndex(0), 1.0);
        store.record(ServerId(1), CounterKind::RequestsPerSec, WindowIndex(0), 2.0);
        assert_eq!(store.sample_count(), 2);
        assert_eq!(store.pools(), vec![PoolId(0)]);
        assert_eq!(store.servers(), vec![ServerId(0), ServerId(1)]);
        assert_eq!(store.pool_datacenter(PoolId(0)), Some(DatacenterId(0)));
    }
}
