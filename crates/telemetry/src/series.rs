//! Dense, window-aligned time series.
//!
//! Counter values are recorded once per 120-second window. A series stores a
//! contiguous run of windows; gaps (server offline) are explicit `None`s so
//! downstream statistics never silently treat missing windows as zeros.

use crate::time::{WindowIndex, WindowRange};

/// A dense time series of per-window values starting at a fixed window.
///
/// # Example
///
/// ```
/// use headroom_telemetry::series::TimeSeries;
/// use headroom_telemetry::time::WindowIndex;
///
/// let mut s = TimeSeries::new(WindowIndex(10));
/// s.push(WindowIndex(10), 1.0);
/// s.push(WindowIndex(12), 3.0); // window 11 becomes an explicit gap
/// assert_eq!(s.value_at(WindowIndex(10)), Some(1.0));
/// assert_eq!(s.value_at(WindowIndex(11)), None);
/// assert_eq!(s.value_at(WindowIndex(12)), Some(3.0));
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    start: WindowIndex,
    /// Dense storage; gaps are NaN (half the memory of `Option<f64>`, which
    /// matters at fleet scale). NaN never enters via `push`: recorded values
    /// are sanitised.
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series anchored at `start`.
    pub fn new(start: WindowIndex) -> Self {
        TimeSeries { start, values: Vec::new() }
    }

    /// First window of the series.
    pub fn start(&self) -> WindowIndex {
        self.start
    }

    /// One past the last window with storage (equals `start` when empty).
    pub fn end(&self) -> WindowIndex {
        WindowIndex(self.start.0 + self.values.len() as u64)
    }

    /// Number of window slots (present or gap).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no windows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a value at `window`.
    ///
    /// Windows between the current end and `window` become explicit gaps.
    /// Recording into a window before `start` or overwriting an existing
    /// window replaces the stored value.
    pub fn push(&mut self, window: WindowIndex, value: f64) {
        let value = if value.is_nan() { 0.0 } else { value };
        if window < self.start {
            // Re-anchor: prepend gap slots.
            let shift = (self.start.0 - window.0) as usize;
            let mut new_values = vec![f64::NAN; shift];
            new_values.append(&mut self.values);
            self.values = new_values;
            self.start = window;
        }
        let idx = (window.0 - self.start.0) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, f64::NAN);
        }
        self.values[idx] = value;
    }

    /// Value recorded at `window`, if any.
    pub fn value_at(&self, window: WindowIndex) -> Option<f64> {
        if window < self.start {
            return None;
        }
        let idx = (window.0 - self.start.0) as usize;
        self.values.get(idx).copied().filter(|v| !v.is_nan())
    }

    /// Iterates `(window, value)` over recorded (non-gap) windows.
    pub fn iter(&self) -> impl Iterator<Item = (WindowIndex, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .map(move |(i, v)| (WindowIndex(self.start.0 + i as u64), *v))
    }

    /// Recorded values (gaps skipped) within `range`.
    pub fn values_in(&self, range: WindowRange) -> Vec<f64> {
        self.iter().filter(|(w, _)| range.contains(*w)).map(|(_, v)| v).collect()
    }

    /// `(window, value)` pairs within `range`.
    pub fn samples_in(&self, range: WindowRange) -> Vec<(WindowIndex, f64)> {
        self.iter().filter(|(w, _)| range.contains(*w)).collect()
    }

    /// Mean of recorded values in `range`, or `None` when no data.
    pub fn mean_in(&self, range: WindowRange) -> Option<f64> {
        let vals = self.values_in(range);
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Number of recorded (non-gap) windows.
    pub fn recorded_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }
}

impl FromIterator<(WindowIndex, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (WindowIndex, f64)>>(iter: I) -> Self {
        let mut items: Vec<(WindowIndex, f64)> = iter.into_iter().collect();
        items.sort_by_key(|(w, _)| *w);
        let mut s = TimeSeries::new(items.first().map(|(w, _)| *w).unwrap_or_default());
        for (w, v) in items {
            s.push(w, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new(WindowIndex(0));
        s.push(WindowIndex(0), 1.0);
        s.push(WindowIndex(1), 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.recorded_count(), 2);
        assert_eq!(s.value_at(WindowIndex(1)), Some(2.0));
        assert_eq!(s.value_at(WindowIndex(5)), None);
    }

    #[test]
    fn gaps_are_explicit() {
        let mut s = TimeSeries::new(WindowIndex(0));
        s.push(WindowIndex(0), 1.0);
        s.push(WindowIndex(3), 4.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.recorded_count(), 2);
        assert_eq!(s.value_at(WindowIndex(1)), None);
        assert_eq!(s.value_at(WindowIndex(2)), None);
    }

    #[test]
    fn overwrite_same_window() {
        let mut s = TimeSeries::new(WindowIndex(0));
        s.push(WindowIndex(0), 1.0);
        s.push(WindowIndex(0), 9.0);
        assert_eq!(s.value_at(WindowIndex(0)), Some(9.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn push_before_start_reanchors() {
        let mut s = TimeSeries::new(WindowIndex(10));
        s.push(WindowIndex(10), 1.0);
        s.push(WindowIndex(8), 0.5);
        assert_eq!(s.start(), WindowIndex(8));
        assert_eq!(s.value_at(WindowIndex(8)), Some(0.5));
        assert_eq!(s.value_at(WindowIndex(9)), None);
        assert_eq!(s.value_at(WindowIndex(10)), Some(1.0));
    }

    #[test]
    fn before_start_query_is_none() {
        let s = TimeSeries::new(WindowIndex(10));
        assert_eq!(s.value_at(WindowIndex(3)), None);
    }

    #[test]
    fn mean_in_range() {
        let mut s = TimeSeries::new(WindowIndex(0));
        for i in 0..10 {
            s.push(WindowIndex(i), i as f64);
        }
        let r = WindowRange::new(WindowIndex(2), WindowIndex(5));
        assert_eq!(s.mean_in(r), Some(3.0));
        let empty = WindowRange::new(WindowIndex(100), WindowIndex(110));
        assert_eq!(s.mean_in(empty), None);
    }

    #[test]
    fn iter_skips_gaps() {
        let mut s = TimeSeries::new(WindowIndex(0));
        s.push(WindowIndex(0), 1.0);
        s.push(WindowIndex(2), 3.0);
        let collected: Vec<(u64, f64)> = s.iter().map(|(w, v)| (w.0, v)).collect();
        assert_eq!(collected, vec![(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn from_iterator_sorts() {
        let s: TimeSeries =
            vec![(WindowIndex(5), 5.0), (WindowIndex(2), 2.0)].into_iter().collect();
        assert_eq!(s.start(), WindowIndex(2));
        assert_eq!(s.value_at(WindowIndex(5)), Some(5.0));
        assert_eq!(s.recorded_count(), 2);
    }

    #[test]
    fn end_and_empty() {
        let s = TimeSeries::new(WindowIndex(4));
        assert!(s.is_empty());
        assert_eq!(s.end(), WindowIndex(4));
    }
}
