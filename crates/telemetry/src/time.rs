//! Simulated time and the canonical 120-second measurement window.
//!
//! The paper's counters are "averaged over a 120 s window. The window size
//! was selected to be as large as possible to minimize the cost of storage"
//! (§III). All telemetry in this workspace is aligned to those windows.

use std::fmt;
use std::ops::{Add, Sub};

/// Seconds per measurement window (matches the paper's 120 s).
pub const WINDOW_SECONDS: u64 = 120;

/// Windows per simulated day.
pub const WINDOWS_PER_DAY: u64 = 86_400 / WINDOW_SECONDS; // 720

/// A point in simulated time, in whole seconds since the simulation epoch.
///
/// # Example
///
/// ```
/// use headroom_telemetry::time::{SimTime, WindowIndex};
///
/// let t = SimTime::from_hours(25.0);
/// assert_eq!(t.day(), 1);
/// assert_eq!(t.window(), WindowIndex(750));
/// assert!((t.hour_of_day() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from fractional hours since the epoch.
    pub fn from_hours(hours: f64) -> Self {
        SimTime((hours * 3600.0).round().max(0.0) as u64)
    }

    /// Creates a time from fractional days since the epoch.
    pub fn from_days(days: f64) -> Self {
        SimTime::from_hours(days * 24.0)
    }

    /// Seconds since epoch.
    pub fn seconds(&self) -> u64 {
        self.0
    }

    /// Zero-based simulated day index.
    pub fn day(&self) -> u64 {
        self.0 / 86_400
    }

    /// Fractional hour within the current day, `[0, 24)`.
    pub fn hour_of_day(&self) -> f64 {
        (self.0 % 86_400) as f64 / 3600.0
    }

    /// Zero-based day-of-week (day 0 is a Monday by convention).
    pub fn day_of_week(&self) -> u64 {
        self.day() % 7
    }

    /// The measurement window containing this instant.
    pub fn window(&self) -> WindowIndex {
        WindowIndex(self.0 / WINDOW_SECONDS)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, seconds: u64) -> SimTime {
        SimTime(self.0 + seconds)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, other: SimTime) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day();
        let h = (self.0 % 86_400) / 3600;
        let m = (self.0 % 3600) / 60;
        let s = self.0 % 60;
        write!(f, "d{day} {h:02}:{m:02}:{s:02}")
    }
}

/// Index of a 120-second measurement window since the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WindowIndex(pub u64);

impl WindowIndex {
    /// Start time of this window.
    pub fn start(&self) -> SimTime {
        SimTime(self.0 * WINDOW_SECONDS)
    }

    /// Midpoint time of this window (used when mapping windows to diurnal
    /// demand).
    pub fn midpoint(&self) -> SimTime {
        SimTime(self.0 * WINDOW_SECONDS + WINDOW_SECONDS / 2)
    }

    /// Zero-based day this window belongs to.
    pub fn day(&self) -> u64 {
        self.0 / WINDOWS_PER_DAY
    }

    /// The next window.
    pub fn next(&self) -> WindowIndex {
        WindowIndex(self.0 + 1)
    }
}

impl Add<u64> for WindowIndex {
    type Output = WindowIndex;
    fn add(self, windows: u64) -> WindowIndex {
        WindowIndex(self.0 + windows)
    }
}

impl Sub<WindowIndex> for WindowIndex {
    type Output = u64;
    fn sub(self, other: WindowIndex) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for WindowIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Half-open range of windows `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WindowRange {
    /// First window in the range.
    pub start: WindowIndex,
    /// One past the last window.
    pub end: WindowIndex,
}

impl WindowRange {
    /// Creates a range; `end` is clamped to at least `start`.
    pub fn new(start: WindowIndex, end: WindowIndex) -> Self {
        WindowRange { start, end: WindowIndex(end.0.max(start.0)) }
    }

    /// All windows of zero-based day `day`.
    pub fn day(day: u64) -> Self {
        WindowRange {
            start: WindowIndex(day * WINDOWS_PER_DAY),
            end: WindowIndex((day + 1) * WINDOWS_PER_DAY),
        }
    }

    /// The first `days` simulated days.
    pub fn days(days: f64) -> Self {
        WindowRange {
            start: WindowIndex(0),
            end: WindowIndex((days * WINDOWS_PER_DAY as f64).round() as u64),
        }
    }

    /// Number of windows in the range.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True when the range contains no windows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `w` falls inside the range.
    pub fn contains(&self, w: WindowIndex) -> bool {
        w >= self.start && w < self.end
    }

    /// Iterator over every window in the range.
    pub fn iter(&self) -> impl Iterator<Item = WindowIndex> + '_ {
        (self.start.0..self.end.0).map(WindowIndex)
    }
}

impl IntoIterator for WindowRange {
    type Item = WindowIndex;
    type IntoIter = std::iter::Map<std::ops::Range<u64>, fn(u64) -> WindowIndex>;

    fn into_iter(self) -> Self::IntoIter {
        (self.start.0..self.end.0).map(WindowIndex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_per_day_is_720() {
        assert_eq!(WINDOWS_PER_DAY, 720);
    }

    #[test]
    fn window_of_time() {
        assert_eq!(SimTime(0).window(), WindowIndex(0));
        assert_eq!(SimTime(119).window(), WindowIndex(0));
        assert_eq!(SimTime(120).window(), WindowIndex(1));
        assert_eq!(SimTime(86_400).window(), WindowIndex(720));
    }

    #[test]
    fn hour_and_day_arithmetic() {
        let t = SimTime::from_days(2.5);
        assert_eq!(t.day(), 2);
        assert!((t.hour_of_day() - 12.0).abs() < 1e-9);
        assert_eq!(t.day_of_week(), 2);
        let t2 = SimTime::from_days(9.0);
        assert_eq!(t2.day_of_week(), 2);
    }

    #[test]
    fn window_start_and_midpoint() {
        let w = WindowIndex(10);
        assert_eq!(w.start(), SimTime(1200));
        assert_eq!(w.midpoint(), SimTime(1260));
        assert_eq!(w.day(), 0);
        assert_eq!(WindowIndex(720).day(), 1);
    }

    #[test]
    fn time_add_sub() {
        let t = SimTime(100) + 50;
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), 50);
        assert_eq!(SimTime(10) - SimTime(100), 0, "saturating");
    }

    #[test]
    fn range_day_covers_full_day() {
        let r = WindowRange::day(1);
        assert_eq!(r.len(), 720);
        assert!(r.contains(WindowIndex(720)));
        assert!(r.contains(WindowIndex(1439)));
        assert!(!r.contains(WindowIndex(1440)));
        assert!(!r.contains(WindowIndex(719)));
    }

    #[test]
    fn range_days_fractional() {
        let r = WindowRange::days(0.5);
        assert_eq!(r.len(), 360);
        assert!(!r.is_empty());
    }

    #[test]
    fn range_iteration() {
        let r = WindowRange::new(WindowIndex(5), WindowIndex(8));
        let ws: Vec<u64> = r.into_iter().map(|w| w.0).collect();
        assert_eq!(ws, vec![5, 6, 7]);
    }

    #[test]
    fn range_end_clamped() {
        let r = WindowRange::new(WindowIndex(9), WindowIndex(3));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(90_061).to_string(), "d1 01:01:01");
        assert_eq!(WindowIndex(7).to_string(), "w7");
    }

    #[test]
    fn from_hours_rounds() {
        assert_eq!(SimTime::from_hours(1.0), SimTime(3600));
        assert_eq!(SimTime::from_hours(0.0), SimTime(0));
    }
}
