//! # headroom-exec — persistent deterministic fan-out
//!
//! The sweep engine's unit of parallelism is "run this function over
//! disjoint contiguous chunks of one slice, one chunk per worker, and be
//! done before returning". `std::thread::scope` expresses that exactly but
//! pays a thread spawn + join per call — ~100µs per window at the 81-pool
//! paper shape, an order of magnitude more than the planning work itself.
//!
//! [`WorkerPool`] keeps the workers alive instead: they are spawned once
//! (lazily, on first use), parked on a per-worker mailbox between windows,
//! and handed the next window's chunk through that mailbox. The steady-state
//! hand-off allocates nothing — the job is a fat pointer written into a
//! pre-existing slot, the completion signal is an atomic countdown — so a
//! pool-driven sweep can run allocation-free window after window.
//!
//! **Determinism contract.** The pool only decides *where* a chunk runs,
//! never *what* it computes: chunk boundaries are a pure function of
//! `(len, chunk_len)`, every chunk is handed to the worker with the same
//! index each call, and [`WorkerPool::run_chunks`] does not return until all
//! chunks completed. Callers that keep their per-chunk outputs in
//! index-addressed buffers (as the sweep engine does) therefore observe
//! results identical to a sequential loop — regardless of thread count,
//! scheduling, or how often the pool is resized. [`scoped_chunks`] is the
//! legacy spawn-per-call shape with the same chunk geometry, kept so
//! equivalence of the two executors (and of both against sequential) stays
//! property-testable.
//!
//! The [`alloc_track`] module carries the counting allocator used by the
//! zero-allocation regression tests and the `repro sweep` experiment.
//!
//! # Example
//!
//! Sum disjoint chunks of a slice across parked workers — chunk geometry,
//! and therefore every result, is identical to a sequential loop:
//!
//! ```
//! use headroom_exec::WorkerPool;
//!
//! let mut pool = WorkerPool::new();
//! let mut items: Vec<u64> = (0..100).collect();
//! let mut sums = [0u64; 4];
//! // 4 chunks of 25: chunk 0 runs on the calling thread, 3 on workers.
//! pool.run_chunks(&mut items, 25, &mut sums, |_chunk, items, out| {
//!     *out = items.iter().sum();
//! });
//! assert_eq!(sums.iter().sum::<u64>(), (0..100).sum());
//! assert_eq!(pool.spawned_workers(), 3);
//! // The same pool serves every subsequent window without respawning.
//! pool.run_chunks(&mut items, 25, &mut sums, |_c, items, out| {
//!     *out = items.len() as u64;
//! });
//! assert_eq!(sums, [25; 4]);
//! assert_eq!(pool.spawned_workers(), 3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

pub mod alloc_track;

/// The canonical chunk length for fanning `len` items across `threads`
/// computing threads: one contiguous chunk per thread, the remainder
/// spread by ceiling division.
///
/// Chunk geometry is *the* determinism anchor of the sweep engine — a
/// chunk boundary decides which worker's sequential loop evaluates a pool,
/// never what it computes — and it is also the scaling knob at fleet
/// scale: chunks must grow with `len / threads` (coarse chunks keep each
/// worker streaming one long contiguous run of shards per window) rather
/// than being fixed-size, which at tens of thousands of pools would mean
/// hundreds of hand-offs per window and a mailbox wake per hand-off. This
/// function is the single source of that geometry; a unit test pins it.
///
/// Guarantees, for any `len > 0`:
///
/// - `chunk_len(len, threads) >= 1` (threads `0` is treated as `1`);
/// - the chunk count `len.div_ceil(chunk_len)` equals `min(threads, len)`
///   — never more chunks than threads, no idle chunk slots;
/// - geometry depends only on `(len, threads)` — never on scheduling.
pub fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1)).max(1)
}

/// One parked worker's hand-off slot.
#[derive(Default)]
struct Slot {
    /// Bumped once per dispatched job; the worker sleeps until it moves.
    epoch: u64,
    job: Option<Job>,
    quit: bool,
}

/// A dispatched job: the parallel region's closure plus this worker's chunk
/// index. Plain pointers so writing one into a mailbox never allocates.
#[derive(Clone, Copy)]
struct Job {
    /// Borrowed from the `run_raw` caller's stack; guaranteed to outlive the
    /// job because `run_raw` blocks on the completion latch before returning.
    f: *const (dyn Fn(usize) + Sync),
    index: usize,
}

// SAFETY: the pointee is `Sync` (bound enforced at construction in
// `run_raw`) and outlives the job (the dispatching call blocks until every
// worker finished running it).
unsafe impl Send for Job {}

struct Mailbox {
    slot: Mutex<Slot>,
    signal: Condvar,
}

/// Completion countdown shared by one pool's workers.
struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
    panicked: AtomicBool,
}

struct Worker {
    mailbox: Arc<Mailbox>,
    handle: Option<JoinHandle<()>>,
}

/// Blocks until the latch reaches zero — in `drop`, so it runs on both the
/// normal path and the unwind path of a dispatching call. Must never panic
/// (it may run during an unwind), hence the poison-tolerant locking.
struct WaitIdle<'a> {
    latch: &'a Latch,
}

impl Drop for WaitIdle<'_> {
    fn drop(&mut self) {
        while self.latch.remaining.load(Ordering::Acquire) != 0 {
            match self.latch.lock.lock() {
                Ok(mut guard) => {
                    while self.latch.remaining.load(Ordering::Acquire) != 0 {
                        guard = match self.latch.done.wait(guard) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                }
                // A poisoned latch lock cannot be waited on; fall back to
                // polling the atomic — correctness over elegance here.
                Err(_) => std::hint::spin_loop(),
            }
        }
    }
}

/// A long-lived worker pool for deterministic chunked fan-out.
///
/// Workers are spawned lazily (the pool starts empty and grows to the
/// largest width ever requested) and parked between calls; dropping the
/// pool shuts them down. See the crate docs for the determinism contract.
///
/// # Example
///
/// ```
/// use headroom_exec::WorkerPool;
///
/// let mut pool = WorkerPool::new();
/// let mut data = vec![0u64; 10];
/// let mut outs = vec![0u64; 4];
/// // 10 items at chunk_len 3 → chunks [0..3], [3..6], [6..9], [9..10].
/// pool.run_chunks(&mut data, 3, &mut outs, |i, chunk, out| {
///     for v in chunk.iter_mut() {
///         *v = i as u64;
///     }
///     *out = chunk.len() as u64;
/// });
/// assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
/// assert_eq!(outs, [3, 3, 3, 1]);
/// ```
#[derive(Default)]
pub struct WorkerPool {
    workers: Vec<Worker>,
    latch: Option<Arc<Latch>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers.len()).finish()
    }
}

/// Raw mutable slice base that may cross into worker threads.
///
/// Each worker derives a *disjoint* sub-slice from it (chunk geometry is
/// checked by the dispatching call), so aliasing never occurs.
struct SendPtr<T>(*mut T);
// SAFETY: only disjoint regions are dereferenced, and only for the duration
// of a parallel region that the owning call outlives.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send + Sync` wrapper, not the bare pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl WorkerPool {
    /// An empty pool; workers are spawned on first use.
    pub fn new() -> Self {
        WorkerPool::default()
    }

    /// Workers currently alive (grows to the widest fan-out requested).
    pub fn spawned_workers(&self) -> usize {
        self.workers.len()
    }

    fn latch(&mut self) -> Arc<Latch> {
        self.latch
            .get_or_insert_with(|| {
                Arc::new(Latch {
                    remaining: AtomicUsize::new(0),
                    lock: Mutex::new(()),
                    done: Condvar::new(),
                    panicked: AtomicBool::new(false),
                })
            })
            .clone()
    }

    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            let mailbox =
                Arc::new(Mailbox { slot: Mutex::new(Slot::default()), signal: Condvar::new() });
            let latch = self.latch();
            let worker_mailbox = mailbox.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sweep-worker-{}", self.workers.len()))
                .spawn(move || worker_loop(&worker_mailbox, &latch))
                .expect("spawning a sweep worker");
            self.workers.push(Worker { mailbox, handle: Some(handle) });
        }
    }

    /// Runs `f(0)..f(tasks-1)` concurrently: task 0 on the calling thread,
    /// the rest on pool workers. Blocks until every task returned. The
    /// steady-state hand-off performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic on the calling thread) when any task panicked.
    fn run_raw(&mut self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks <= 1 {
            if tasks == 1 {
                f(0);
            }
            return;
        }
        self.ensure_workers(tasks - 1);
        let latch = self.latch.as_ref().expect("ensure_workers installed the latch").clone();
        // SAFETY: workers dereference this pointer only inside the parallel
        // region below, which this call outlives (it blocks on the latch).
        let job_f: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        latch.panicked.store(false, Ordering::Relaxed);
        // From the first dispatch until every dispatched worker reports
        // done, the closure and the borrows behind it are shared with the
        // workers — this frame must not unwind past them. The guard waits
        // on the latch in `drop`, so even a panic below (the calling
        // thread's own chunk, or mid-dispatch) keeps the frame alive until
        // the workers are idle, mirroring `thread::scope`. Jobs are counted
        // into the latch *as they are dispatched* (not up front), so an
        // unwind after a partial dispatch waits for exactly the workers
        // that actually hold the closure.
        let wait = WaitIdle { latch: &latch };
        for (i, worker) in self.workers[..tasks - 1].iter().enumerate() {
            latch.remaining.fetch_add(1, Ordering::AcqRel);
            // Poison-tolerant: the slot holds plain data and the dispatch
            // path must not panic while other workers share the closure.
            let mut slot = match worker.mailbox.slot.lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.epoch += 1;
            slot.job = Some(Job { f: job_f, index: i + 1 });
            drop(slot);
            worker.mailbox.signal.notify_one();
        }
        // The dispatching thread is a full participant: it takes chunk 0, so
        // `threads = n` means n computing threads, not n+1.
        f(0);
        drop(wait);
        if latch.panicked.load(Ordering::Relaxed) {
            panic!("sweep worker panicked");
        }
    }

    /// Splits `items` into contiguous chunks of `chunk_len` and runs
    /// `f(chunk_index, chunk, &mut outs[chunk_index])` for every chunk, one
    /// per thread (chunk 0 on the calling thread). Blocks until all chunks
    /// completed; chunk geometry is identical to
    /// `items.chunks_mut(chunk_len)`, so results are position-deterministic.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_len == 0`, when `outs` is shorter than the number
    /// of chunks, or when any chunk's `f` panicked.
    pub fn run_chunks<T, U, F>(&mut self, items: &mut [T], chunk_len: usize, outs: &mut [U], f: F)
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T], &mut U) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = items.len();
        let tasks = len.div_ceil(chunk_len);
        if tasks == 0 {
            return;
        }
        assert!(outs.len() >= tasks, "need one output slot per chunk: {} < {tasks}", outs.len());
        if tasks == 1 {
            f(0, items, &mut outs[0]);
            return;
        }
        let items_base = SendPtr(items.as_mut_ptr());
        let outs_base = SendPtr(outs.as_mut_ptr());
        let f = &f;
        let task = move |i: usize| {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: tasks are indexed 0..tasks exactly once each, so the
            // [start, end) ranges (and the out slots) are pairwise disjoint
            // and in bounds; the underlying borrows outlive `run_raw`.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(items_base.get().add(start), end - start) };
            let out = unsafe { &mut *outs_base.get().add(i) };
            f(i, chunk, out);
        };
        self.run_raw(tasks, &task);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for worker in &self.workers {
            let mut slot = worker.mailbox.slot.lock().expect("worker mailbox poisoned");
            slot.quit = true;
            drop(slot);
            worker.mailbox.signal.notify_one();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(mailbox: &Mailbox, latch: &Latch) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = mailbox.slot.lock().expect("worker mailbox poisoned");
            loop {
                if slot.quit {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    if let Some(job) = slot.job.take() {
                        break job;
                    }
                }
                slot = mailbox.signal.wait(slot).expect("worker mailbox poisoned");
            }
        };
        // SAFETY: the dispatcher blocks on the latch until this worker
        // decrements it, so the closure outlives this call.
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let f = unsafe { &*job.f };
            f(job.index);
        }));
        if run.is_err() {
            latch.panicked.store(true, Ordering::Relaxed);
        }
        if latch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Publish under the latch lock so the dispatcher cannot check
            // the count and sleep between our decrement and our notify.
            let _guard = latch.lock.lock().expect("latch poisoned");
            latch.done.notify_one();
        }
    }
}

/// The legacy spawn-per-call fan-out: identical chunk geometry and output
/// placement to [`WorkerPool::run_chunks`], but with scoped threads created
/// (and joined) inside the call — the shape the sweep engine used before
/// workers became persistent. Kept for A/B property tests and as a
/// dependency-free fallback.
///
/// # Panics
///
/// Panics when `chunk_len == 0`, when `outs` is shorter than the number of
/// chunks, or when any chunk's `f` panicked.
pub fn scoped_chunks<T, U, F>(items: &mut [T], chunk_len: usize, outs: &mut [U], f: &F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut U) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let tasks = items.len().div_ceil(chunk_len);
    if tasks == 0 {
        return;
    }
    assert!(outs.len() >= tasks, "need one output slot per chunk: {} < {tasks}", outs.len());
    if tasks == 1 {
        f(0, items, &mut outs[0]);
        return;
    }
    std::thread::scope(|scope| {
        for (i, (chunk, out)) in items.chunks_mut(chunk_len).zip(outs.iter_mut()).enumerate() {
            scope.spawn(move || f(i, chunk, out));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_geometry_scales_with_len_over_threads() {
        // One chunk per computing thread, remainder ceiling-spread.
        assert_eq!(chunk_len(4096, 4), 1024);
        assert_eq!(chunk_len(16384, 4), 4096);
        assert_eq!(chunk_len(81, 4), 21);
        assert_eq!(chunk_len(6, 4), 2);
        // Degenerate widths clamp sanely.
        assert_eq!(chunk_len(10, 0), 10);
        assert_eq!(chunk_len(10, 1), 10);
        assert_eq!(chunk_len(3, 8), 1);
        // The invariant the sweep engine leans on: the chunk count never
        // exceeds the fan-out width (so growing the fleet grows chunk size,
        // never the number of per-window hand-offs), covers every item, and
        // hits the width exactly when the width divides the fleet.
        for len in [1usize, 2, 5, 7, 81, 512, 4096, 16384] {
            for threads in [1usize, 2, 3, 4, 8] {
                let cl = chunk_len(len, threads);
                let chunks = len.div_ceil(cl);
                assert!(
                    (1..=threads.min(len)).contains(&chunks),
                    "chunks {chunks} at len {len} x threads {threads}"
                );
                assert!(cl * chunks >= len, "chunks cover the fleet");
                if threads > 0 && len % threads == 0 {
                    assert_eq!(chunks, threads.min(len), "even split uses the full width");
                }
            }
        }
    }

    #[test]
    fn runs_every_chunk_exactly_once() {
        let mut pool = WorkerPool::new();
        let mut items: Vec<u32> = (0..97).collect();
        let mut outs = vec![0u32; 25];
        pool.run_chunks(&mut items, 4, &mut outs, |_, chunk, out| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
            *out = chunk.iter().sum();
        });
        let expect: Vec<u32> = (1..98).collect();
        assert_eq!(items, expect);
        assert_eq!(outs.iter().map(|&s| s as u64).sum::<u64>(), (1..98u64).sum::<u64>());
        // Chunk geometry: 97 items at 4 → 24 full chunks + one of 1.
        assert_eq!(outs[24], 97);
    }

    #[test]
    fn matches_scoped_and_sequential() {
        let run = |mode: u8| {
            let mut items: Vec<u64> = (0..53).map(|i| i * 7 % 13).collect();
            let mut outs = vec![0u64; 11];
            let f = |i: usize, chunk: &mut [u64], out: &mut u64| {
                for v in chunk.iter_mut() {
                    *v = v.wrapping_mul(31).wrapping_add(i as u64);
                }
                *out = chunk.iter().sum();
            };
            match mode {
                0 => {
                    // Sequential reference: same geometry, one thread.
                    for (i, (chunk, out)) in items.chunks_mut(5).zip(outs.iter_mut()).enumerate() {
                        f(i, chunk, out);
                    }
                }
                1 => scoped_chunks(&mut items, 5, &mut outs, &f),
                _ => WorkerPool::new().run_chunks(&mut items, 5, &mut outs, f),
            }
            (items, outs)
        };
        let sequential = run(0);
        assert_eq!(sequential, run(1), "scoped == sequential");
        assert_eq!(sequential, run(2), "persistent == sequential");
    }

    #[test]
    fn workers_are_reused_across_calls() {
        let mut pool = WorkerPool::new();
        let mut items = vec![0u64; 64];
        let mut outs = vec![0u64; 4];
        for round in 0..2_000u64 {
            pool.run_chunks(&mut items, 16, &mut outs, |_, chunk, out| {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
                *out = round;
            });
        }
        assert_eq!(pool.spawned_workers(), 3, "three workers serve chunks 1..4 forever");
        assert!(items.iter().all(|&v| v == 2_000));
        assert!(outs.iter().all(|&o| o == 1_999));
    }

    #[test]
    fn width_changes_grow_the_pool_lazily() {
        let mut pool = WorkerPool::new();
        let mut items = vec![1u8; 32];
        let mut outs = vec![0u8; 8];
        pool.run_chunks(&mut items, 16, &mut outs, |_, _, _| {});
        assert_eq!(pool.spawned_workers(), 1);
        pool.run_chunks(&mut items, 4, &mut outs, |_, _, _| {});
        assert_eq!(pool.spawned_workers(), 7);
        // Narrowing again leaves the extra workers parked, not dead.
        pool.run_chunks(&mut items, 16, &mut outs, |_, _, _| {});
        assert_eq!(pool.spawned_workers(), 7);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut pool = WorkerPool::new();
        let mut items: Vec<u8> = Vec::new();
        let mut outs: Vec<u8> = Vec::new();
        pool.run_chunks(&mut items, 3, &mut outs, |_, _, _| panic!("no chunks to run"));
        assert_eq!(pool.spawned_workers(), 0);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let mut pool = WorkerPool::new();
        let mut items = vec![0u8; 8];
        let mut outs = vec![0u8; 4];
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(&mut items, 2, &mut outs, |i, _, _| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        }));
        assert!(boom.is_err(), "the panic reached the caller");
        // The pool still works after a task panicked.
        pool.run_chunks(&mut items, 2, &mut outs, |_, chunk, _| {
            for v in chunk.iter_mut() {
                *v = 9;
            }
        });
        assert!(items.iter().all(|&v| v == 9));
    }

    #[test]
    fn caller_chunk_panic_still_waits_for_workers() {
        // Chunk 0 runs on the dispatching thread; if it panics, the unwind
        // must not escape run_chunks until every worker finished with the
        // shared borrows (otherwise they would write freed stack memory).
        let mut pool = WorkerPool::new();
        let mut items = vec![0u64; 8];
        let mut outs = vec![0u64; 4];
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(&mut items, 2, &mut outs, |i, chunk, _| {
                if i == 0 {
                    panic!("chunk 0 exploded");
                }
                // Keep the workers demonstrably still running while the
                // caller's chunk is already unwinding.
                std::thread::sleep(std::time::Duration::from_millis(20));
                for v in chunk.iter_mut() {
                    *v = 7;
                }
            });
        }));
        assert!(boom.is_err(), "the caller-side panic surfaced");
        assert!(
            items[2..].iter().all(|&v| v == 7),
            "every worker chunk completed before the unwind escaped: {items:?}"
        );
        assert_eq!(&items[..2], &[0, 0], "the panicked chunk wrote nothing");
        // And the pool remains serviceable.
        pool.run_chunks(&mut items, 2, &mut outs, |_, chunk, _| {
            for v in chunk.iter_mut() {
                *v = 1;
            }
        });
        assert!(items.iter().all(|&v| v == 1));
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_rejected() {
        WorkerPool::new().run_chunks(&mut [0u8; 4], 0, &mut [0u8; 4], |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "one output slot per chunk")]
    fn short_outs_rejected() {
        WorkerPool::new().run_chunks(&mut [0u8; 9], 2, &mut [0u8; 2], |_, _, _| {});
    }
}
