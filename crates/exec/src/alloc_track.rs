//! Allocation counting for zero-allocation regression tests.
//!
//! The steady-state window path (simulator step → sweep) is contractually
//! allocation-free once warmed. That contract is only worth anything if it
//! is *measured*: [`CountingAllocator`] wraps the system allocator and
//! counts every `alloc`/`realloc` call, so a test (or the `repro sweep`
//! experiment) can snapshot the counter around a window and assert the
//! delta is zero.
//!
//! Install it as the global allocator in the *binary* under test:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: headroom_exec::alloc_track::CountingAllocator =
//!     headroom_exec::alloc_track::CountingAllocator;
//! ```
//!
//! When it is not installed, [`allocations`] stays at zero forever; use
//! [`is_tracking`] to tell "zero because clean" from "zero because
//! unmeasured" (any running Rust program has allocated long before user
//! code runs, so a zero counter at measurement time means not installed).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator counting every allocation from any thread.
///
/// Deallocations are not counted: the zero-allocation contract is about
/// steady-state churn, and every steady-state `dealloc` is paired with an
/// earlier counted `alloc` anyway.
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations observed so far (0 when the allocator is not installed).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Whether [`CountingAllocator`] is actually installed as the global
/// allocator — a program cannot reach user code without allocating, so a
/// non-zero counter is the installation proof.
pub fn is_tracking() -> bool {
    allocations() > 0
}
