//! Property tests for the baseline planners.

use headroom_baselines::queueing::{ErlangC, QueueingPlanner};
use headroom_baselines::static_peak::StaticPeakPlanner;
use headroom_baselines::ReactiveAutoscaler;
use proptest::prelude::*;

proptest! {
    /// Erlang-C wait probability decreases monotonically with servers and
    /// stays a probability.
    #[test]
    fn erlang_c_monotone(lambda in 1.0f64..500.0, mu in 1.0f64..50.0) {
        let system = ErlangC::new(lambda, mu).unwrap();
        let min_c = (lambda / mu).ceil() as usize + 1;
        let mut prev = 1.0f64;
        for c in min_c..min_c + 10 {
            let p = system.wait_probability(c);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-12, "c {c}: {p} > {prev}");
            prev = p;
        }
    }

    /// Sojourn quantiles are monotone in the quantile and in load.
    #[test]
    fn sojourn_monotone(lambda in 10.0f64..200.0, mu in 5.0f64..20.0) {
        let system = ErlangC::new(lambda, mu).unwrap();
        let c = (lambda / mu).ceil() as usize + 2;
        let p50 = system.sojourn_quantile(c, 0.5).unwrap();
        let p95 = system.sojourn_quantile(c, 0.95).unwrap();
        prop_assert!(p95 >= p50);
        // More servers, faster p95.
        let p95_more = system.sojourn_quantile(c + 3, 0.95).unwrap();
        prop_assert!(p95_more <= p95 + 1e-12);
    }

    /// The queueing planner's answer is minimal: one fewer server violates.
    #[test]
    fn queueing_planner_minimal(peak in 100.0f64..20_000.0, mu in 50.0f64..500.0) {
        let planner = QueueingPlanner::new(mu).unwrap();
        let slo_ms = 1000.0 * 3.0 / mu; // comfortably above service time
        if let Ok(c) = planner.required_servers(peak, slo_ms) {
            let system = ErlangC::new(peak, mu).unwrap();
            prop_assert!(system.sojourn_quantile(c, 0.95).unwrap() <= slo_ms / 1000.0 + 1e-12);
            if c > 1 {
                let worse = system.sojourn_quantile(c - 1, 0.95);
                prop_assert!(
                    worse.is_err() || worse.unwrap() > slo_ms / 1000.0 - 1e-12,
                    "c-1 should violate"
                );
            }
        }
    }

    /// Static peak provisioning never underprovisions relative to its own
    /// capacity assumption, and a larger factor is never cheaper.
    #[test]
    fn static_peak_monotone(
        demand in prop::collection::vec(0.0f64..10_000.0, 1..100),
        capacity in 10.0f64..1_000.0,
    ) {
        let lean = StaticPeakPlanner::new(1.0, capacity).unwrap();
        let fat = StaticPeakPlanner::new(1.8, capacity).unwrap();
        let n_lean = lean.required_servers(&demand);
        let n_fat = fat.required_servers(&demand);
        prop_assert!(n_fat >= n_lean);
        let peak = demand.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(n_lean as f64 * capacity >= peak - 1e-9);
        // Utilisation never exceeds 1 for factor >= 1.
        prop_assert!(lean.mean_utilization(&demand) <= 1.0 + 1e-9);
    }

    /// The autoscaler respects its bounds and capacity stays positive.
    #[test]
    fn autoscaler_bounds(
        demand in prop::collection::vec(0.0f64..50_000.0, 1..300),
        lag in 0usize..40,
        min in 1usize..5,
    ) {
        let max = min + 200;
        let scaler = ReactiveAutoscaler::new(100.0, 140.0)
            .unwrap()
            .with_lag(lag, 2)
            .with_bounds(min, max);
        let outcome = scaler.simulate(&demand);
        prop_assert_eq!(outcome.capacity.len(), demand.len());
        for &c in &outcome.capacity {
            prop_assert!((min..=max).contains(&c));
        }
        prop_assert!(outcome.qos_violation_windows <= demand.len());
    }

    /// With zero lag, generous bounds and a sub-QoS target, the autoscaler
    /// only violates on instantaneous jumps larger than its target margin.
    #[test]
    fn autoscaler_zero_lag_tracks_smooth_demand(peak in 1_000.0f64..100_000.0) {
        let demand: Vec<f64> = (0..720)
            .map(|w| {
                let phase = (w as f64 / 720.0) * std::f64::consts::TAU;
                peak * (0.55 + 0.45 * phase.cos())
            })
            .collect();
        let scaler = ReactiveAutoscaler::new(100.0, 150.0).unwrap().with_lag(0, 0);
        let outcome = scaler.simulate(&demand);
        prop_assert_eq!(outcome.qos_violation_windows, 0);
    }
}
