//! Reactive autoscaling (the paper's "dynamic approach").
//!
//! The paper's three objections (§I) are all modelled:
//!
//! 1. diurnal swings need "1,000s of servers" — the scaler's step size and
//!    pool bounds are explicit;
//! 2. "prior work underestimated the time required to change the capacity" —
//!    a provisioning lag plus a service start-up delay separate the decision
//!    from usable capacity;
//! 3. reactive decisions trail demand, so surges land on yesterday's
//!    capacity.
//!
//! [`ReactiveAutoscaler::simulate`] replays a demand series and reports QoS
//! violations and the average capacity carried, so the ablation bench can
//! compare it against right-sized static headroom.

use std::error::Error;
use std::fmt;

/// Error from autoscaler configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AutoscalerError {
    /// A parameter was out of domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for AutoscalerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoscalerError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for AutoscalerError {}

/// A target-tracking reactive autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactiveAutoscaler {
    /// Per-server workload the scaler tries to hold (RPS/server).
    pub target_rps_per_server: f64,
    /// Per-server workload above which QoS is considered violated.
    pub qos_rps_per_server: f64,
    /// Windows between a scale-out decision and servers being requested
    /// (control-loop period).
    pub decision_interval: usize,
    /// Windows between requesting capacity and it being allocated
    /// (provisioning lag).
    pub provisioning_lag: usize,
    /// Windows a new server spends warming up (JIT, cache priming) before
    /// it can serve.
    pub startup_windows: usize,
    /// Smallest allowed pool size.
    pub min_servers: usize,
    /// Largest allowed pool size.
    pub max_servers: usize,
}

impl ReactiveAutoscaler {
    /// Creates a scaler with the given target and QoS thresholds.
    ///
    /// # Errors
    ///
    /// [`AutoscalerError::InvalidParameter`] for inconsistent thresholds or
    /// bounds.
    pub fn new(
        target_rps_per_server: f64,
        qos_rps_per_server: f64,
    ) -> Result<Self, AutoscalerError> {
        if target_rps_per_server <= 0.0 || target_rps_per_server.is_nan() {
            return Err(AutoscalerError::InvalidParameter("target must be positive"));
        }
        if qos_rps_per_server < target_rps_per_server {
            return Err(AutoscalerError::InvalidParameter("qos threshold below target"));
        }
        Ok(ReactiveAutoscaler {
            target_rps_per_server,
            qos_rps_per_server,
            decision_interval: 5,
            provisioning_lag: 30,
            startup_windows: 5,
            min_servers: 1,
            max_servers: 1_000_000,
        })
    }

    /// Sets the provisioning lag and startup delay (in windows).
    pub fn with_lag(mut self, provisioning_lag: usize, startup_windows: usize) -> Self {
        self.provisioning_lag = provisioning_lag;
        self.startup_windows = startup_windows;
        self
    }

    /// Sets pool-size bounds.
    ///
    /// # Panics
    ///
    /// Panics when `min == 0` or `min > max`.
    pub fn with_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= max, "bounds must satisfy 0 < min <= max");
        self.min_servers = min;
        self.max_servers = max;
        self
    }

    /// Replays a per-window demand series (total RPS) and returns the
    /// capacity trajectory plus QoS accounting.
    ///
    /// The scaler starts at the capacity matching the first window's demand.
    pub fn simulate(&self, demand: &[f64]) -> AutoscalerOutcome {
        let mut serving = ((demand.first().copied().unwrap_or(0.0) / self.target_rps_per_server)
            .ceil() as usize)
            .clamp(self.min_servers, self.max_servers);
        // Queue of (ready_window, count) for capacity in flight.
        let mut in_flight: Vec<(usize, usize)> = Vec::new();
        let mut capacity = Vec::with_capacity(demand.len());
        let mut violations = 0usize;
        let mut served_sum = 0.0f64;

        for (w, &d) in demand.iter().enumerate() {
            // Capacity arriving this window.
            in_flight.retain(|&(ready, count)| {
                if ready <= w {
                    serving += count;
                    false
                } else {
                    true
                }
            });
            serving = serving.clamp(self.min_servers, self.max_servers);

            let rps_per_server = d / serving as f64;
            if rps_per_server > self.qos_rps_per_server {
                violations += 1;
            }
            served_sum += serving as f64;
            capacity.push(serving);

            // Periodic control decision based on *current* observation.
            if w % self.decision_interval.max(1) == 0 {
                let desired = ((d / self.target_rps_per_server).ceil() as usize)
                    .clamp(self.min_servers, self.max_servers);
                let pending: usize = in_flight.iter().map(|&(_, c)| c).sum();
                let projected = serving + pending;
                if desired > projected {
                    in_flight.push((
                        w + self.provisioning_lag + self.startup_windows,
                        desired - projected,
                    ));
                } else if desired < serving && pending == 0 {
                    // Scale-in is immediate (draining is fast).
                    serving = desired;
                }
            }
        }

        AutoscalerOutcome {
            capacity,
            qos_violation_windows: violations,
            mean_servers: if demand.is_empty() { 0.0 } else { served_sum / demand.len() as f64 },
        }
    }
}

/// Result of replaying demand through the autoscaler.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerOutcome {
    /// Serving capacity per window.
    pub capacity: Vec<usize>,
    /// Windows whose per-server workload exceeded the QoS threshold.
    pub qos_violation_windows: usize,
    /// Mean serving capacity (cost proxy).
    pub mean_servers: f64,
}

impl AutoscalerOutcome {
    /// Fraction of windows in violation.
    pub fn violation_fraction(&self) -> f64 {
        if self.capacity.is_empty() {
            return 0.0;
        }
        self.qos_violation_windows as f64 / self.capacity.len() as f64
    }

    /// Peak capacity used.
    pub fn peak_servers(&self) -> usize {
        self.capacity.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_demand(days: usize, peak: f64) -> Vec<f64> {
        (0..days * 720)
            .map(|w| {
                let phase = (w as f64 / 720.0) * std::f64::consts::TAU;
                peak * (0.55 + 0.45 * phase.cos()).max(0.05)
            })
            .collect()
    }

    #[test]
    fn tracks_slow_demand_with_zero_lag() {
        let scaler = ReactiveAutoscaler::new(100.0, 150.0).unwrap().with_lag(0, 0);
        let outcome = scaler.simulate(&diurnal_demand(2, 10_000.0));
        assert_eq!(outcome.qos_violation_windows, 0);
        // Capacity follows the diurnal wave: peak ≈ 100 servers, trough ≈ 10.
        assert!(outcome.peak_servers() >= 95);
        assert!(outcome.mean_servers < 90.0);
    }

    #[test]
    fn lag_causes_violations_on_surge() {
        let scaler = ReactiveAutoscaler::new(100.0, 130.0).unwrap().with_lag(30, 5);
        let mut demand = diurnal_demand(1, 10_000.0);
        // A failover surge: demand doubles instantly for two hours.
        for d in demand[400..460].iter_mut() {
            *d *= 2.0;
        }
        let outcome = scaler.simulate(&demand);
        assert!(
            outcome.qos_violation_windows > 10,
            "lagged scaler must violate during the surge: {}",
            outcome.qos_violation_windows
        );
    }

    #[test]
    fn longer_lag_is_worse() {
        let fast = ReactiveAutoscaler::new(100.0, 130.0).unwrap().with_lag(5, 1);
        let slow = ReactiveAutoscaler::new(100.0, 130.0).unwrap().with_lag(60, 15);
        let mut demand = diurnal_demand(1, 10_000.0);
        for d in demand[300..420].iter_mut() {
            *d *= 1.8;
        }
        let fast_out = fast.simulate(&demand);
        let slow_out = slow.simulate(&demand);
        assert!(slow_out.qos_violation_windows >= fast_out.qos_violation_windows);
    }

    #[test]
    fn bounds_respected() {
        let scaler =
            ReactiveAutoscaler::new(100.0, 150.0).unwrap().with_lag(0, 0).with_bounds(20, 50);
        let outcome = scaler.simulate(&diurnal_demand(1, 10_000.0));
        assert!(outcome.capacity.iter().all(|&c| (20..=50).contains(&c)));
        // Capped at 50 while peak needs 100 ⇒ violations at peak.
        assert!(outcome.qos_violation_windows > 0);
    }

    #[test]
    fn empty_demand() {
        let scaler = ReactiveAutoscaler::new(100.0, 150.0).unwrap();
        let outcome = scaler.simulate(&[]);
        assert!(outcome.capacity.is_empty());
        assert_eq!(outcome.violation_fraction(), 0.0);
        assert_eq!(outcome.mean_servers, 0.0);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(ReactiveAutoscaler::new(0.0, 100.0).is_err());
        assert!(ReactiveAutoscaler::new(100.0, 50.0).is_err());
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn bad_bounds_panic() {
        let _ = ReactiveAutoscaler::new(1.0, 2.0).unwrap().with_bounds(0, 10);
    }
}
