//! Baseline capacity planners the paper argues against (§I, §IV).
//!
//! - [`queueing`] — the *modeling approach*: an M/M/c Erlang-C planner.
//!   Accurate when its service-rate parameter is right, but "models based on
//!   simplified assumptions are either inaccurate, or are quickly
//!   invalidated as the system evolves"; the ablation experiments quantify
//!   its sensitivity to calibration drift.
//! - [`autoscaler`] — the *dynamic approach*: a reactive autoscaler with
//!   realistic provisioning lag and service start-up time. The paper's
//!   critique: diurnal swings need thousands of servers on timescales the
//!   provisioning loop cannot meet, so the autoscaler either violates QoS or
//!   carries permanent headroom anyway.
//! - [`static_peak`] — status quo: provision for peak times a fixed
//!   headroom factor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscaler;
pub mod queueing;
pub mod static_peak;

pub use autoscaler::{AutoscalerOutcome, ReactiveAutoscaler};
pub use queueing::{ErlangC, QueueingPlanner};
pub use static_peak::StaticPeakPlanner;
