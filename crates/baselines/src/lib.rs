//! Baseline capacity planners the paper argues against (§I, §IV).
//!
//! - [`queueing`] — the *modeling approach*: an M/M/c Erlang-C planner.
//!   Accurate when its service-rate parameter is right, but "models based on
//!   simplified assumptions are either inaccurate, or are quickly
//!   invalidated as the system evolves"; the ablation experiments quantify
//!   its sensitivity to calibration drift.
//! - [`autoscaler`] — the *dynamic approach*: a reactive autoscaler with
//!   realistic provisioning lag and service start-up time. The paper's
//!   critique: diurnal swings need thousands of servers on timescales the
//!   provisioning loop cannot meet, so the autoscaler either violates QoS or
//!   carries permanent headroom anyway.
//! - [`static_peak`] — status quo: provision for peak times a fixed
//!   headroom factor.
//!
//! # Example
//!
//! The status-quo planner sizes for peak × headroom and pays for it in
//! mean utilization:
//!
//! ```
//! use headroom_baselines::StaticPeakPlanner;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1.5× headroom over peak, 500 RPS/server at the SLO.
//! let planner = StaticPeakPlanner::new(1.5, 500.0)?;
//! let demand = [40_000.0, 90_000.0, 100_000.0, 60_000.0];
//! assert_eq!(planner.required_servers(&demand), 300); // 100k × 1.5 / 500
//! assert!(planner.mean_utilization(&demand) < 0.5, "headroom sits idle");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscaler;
pub mod queueing;
pub mod static_peak;

pub use autoscaler::{AutoscalerOutcome, ReactiveAutoscaler};
pub use queueing::{ErlangC, QueueingPlanner};
pub use static_peak::StaticPeakPlanner;
