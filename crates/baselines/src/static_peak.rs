//! Static peak provisioning (the status quo the paper quantifies).
//!
//! Service owners "over allocate capacity to absorb unexpected increases in
//! traffic and unplanned capacity outages" (§III-B1): size for peak demand,
//! then multiply by a safety factor. Simple, robust, and the source of the
//! 2–4× idle capacity the paper measures.

use std::error::Error;
use std::fmt;

/// Error from static planning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StaticPlanError {
    /// A parameter was out of domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for StaticPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticPlanError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for StaticPlanError {}

/// Peak-times-factor provisioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPeakPlanner {
    /// Multiplicative headroom on top of peak (e.g. `1.5` = 50% spare).
    pub headroom_factor: f64,
    /// RPS one server can carry at the QoS limit.
    pub rps_per_server_at_slo: f64,
}

impl StaticPeakPlanner {
    /// Creates a planner.
    ///
    /// # Errors
    ///
    /// [`StaticPlanError::InvalidParameter`] when the factor is below 1 or
    /// the per-server capacity is non-positive.
    pub fn new(headroom_factor: f64, rps_per_server_at_slo: f64) -> Result<Self, StaticPlanError> {
        if headroom_factor < 1.0 || !headroom_factor.is_finite() {
            return Err(StaticPlanError::InvalidParameter("headroom factor must be >= 1"));
        }
        if rps_per_server_at_slo <= 0.0 || !rps_per_server_at_slo.is_finite() {
            return Err(StaticPlanError::InvalidParameter("per-server capacity must be positive"));
        }
        Ok(StaticPeakPlanner { headroom_factor, rps_per_server_at_slo })
    }

    /// Servers allocated for a demand series (sizes to the series peak).
    pub fn required_servers(&self, demand: &[f64]) -> usize {
        let peak = demand.iter().copied().fold(0.0f64, f64::max);
        ((peak * self.headroom_factor / self.rps_per_server_at_slo).ceil() as usize).max(1)
    }

    /// Mean utilisation of that allocation over the series (the headline
    /// "23% global CPU" inefficiency in planner terms).
    pub fn mean_utilization(&self, demand: &[f64]) -> f64 {
        if demand.is_empty() {
            return 0.0;
        }
        let servers = self.required_servers(demand) as f64;
        let capacity = servers * self.rps_per_server_at_slo;
        demand.iter().map(|d| d / capacity).sum::<f64>() / demand.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_to_peak_times_factor() {
        let planner = StaticPeakPlanner::new(1.5, 100.0).unwrap();
        let demand = vec![1000.0, 5000.0, 3000.0];
        // peak 5000 × 1.5 / 100 = 75.
        assert_eq!(planner.required_servers(&demand), 75);
    }

    #[test]
    fn utilization_reflects_diurnal_idle() {
        let planner = StaticPeakPlanner::new(1.5, 100.0).unwrap();
        let demand: Vec<f64> = (0..720)
            .map(|w| {
                let phase = (w as f64 / 720.0) * std::f64::consts::TAU;
                5000.0 * (0.55 + 0.45 * phase.cos())
            })
            .collect();
        let util = planner.mean_utilization(&demand);
        // Mean demand ≈ 55% of peak; headroom 1.5 ⇒ ~37% utilisation.
        assert!((util - 0.366).abs() < 0.02, "util {util}");
    }

    #[test]
    fn no_headroom_factor_one() {
        let planner = StaticPeakPlanner::new(1.0, 50.0).unwrap();
        assert_eq!(planner.required_servers(&[100.0]), 2);
    }

    #[test]
    fn empty_demand_minimal() {
        let planner = StaticPeakPlanner::new(2.0, 10.0).unwrap();
        assert_eq!(planner.required_servers(&[]), 1);
        assert_eq!(planner.mean_utilization(&[]), 0.0);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(StaticPeakPlanner::new(0.9, 10.0).is_err());
        assert!(StaticPeakPlanner::new(1.5, 0.0).is_err());
        assert!(StaticPeakPlanner::new(f64::INFINITY, 1.0).is_err());
    }
}
