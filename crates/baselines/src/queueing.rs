//! M/M/c queueing-model capacity planning (the paper's "modeling approach").
//!
//! Given arrival rate λ, per-server service rate μ and c servers, Erlang C
//! gives the probability an arriving request queues, and the waiting-time
//! distribution tail `P(W > t) = P_wait · e^{-(cμ−λ)t}`. Inverting the tail
//! yields the smallest `c` whose p95 sojourn time meets the SLO.
//!
//! The planner is exact for a textbook M/M/c system — and wrong in
//! production whenever μ drifts (new code, new request mix, background
//! work). The ablation benches measure exactly that fragility.

use std::error::Error;
use std::fmt;

/// Error produced by queueing computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueueingError {
    /// Offered load requires more servers than the search bound.
    Unstable {
        /// The λ/μ offered load in Erlangs.
        offered_load: f64,
    },
    /// A parameter was non-positive or non-finite.
    InvalidParameter(&'static str),
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::Unstable { offered_load } => {
                write!(f, "system unstable at offered load {offered_load:.1} erlangs")
            }
            QueueingError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for QueueingError {}

/// An M/M/c system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErlangC {
    /// Request arrival rate λ (per second).
    pub arrival_rate: f64,
    /// Per-server service rate μ (requests per second).
    pub service_rate: f64,
}

impl ErlangC {
    /// Creates a system description.
    ///
    /// # Errors
    ///
    /// [`QueueingError::InvalidParameter`] for non-positive rates.
    pub fn new(arrival_rate: f64, service_rate: f64) -> Result<Self, QueueingError> {
        if arrival_rate <= 0.0 || !arrival_rate.is_finite() {
            return Err(QueueingError::InvalidParameter("arrival rate must be positive"));
        }
        if service_rate <= 0.0 || !service_rate.is_finite() {
            return Err(QueueingError::InvalidParameter("service rate must be positive"));
        }
        Ok(ErlangC { arrival_rate, service_rate })
    }

    /// Offered load `a = λ/μ` in Erlangs.
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Utilisation `ρ = λ/(cμ)` with `c` servers.
    pub fn utilization(&self, servers: usize) -> f64 {
        self.offered_load() / servers as f64
    }

    /// Erlang-C probability that an arriving request waits, with `c`
    /// servers. Returns `1.0` for an unstable system (ρ ≥ 1).
    pub fn wait_probability(&self, servers: usize) -> f64 {
        let c = servers as f64;
        let a = self.offered_load();
        if a >= c {
            return 1.0;
        }
        // Numerically stable iterative Erlang-B, then convert to Erlang-C.
        let mut inv_b = 1.0f64;
        for k in 1..=servers {
            inv_b = 1.0 + inv_b * k as f64 / a;
        }
        let b = 1.0 / inv_b;
        let rho = a / c;
        b / (1.0 - rho + rho * b)
    }

    /// Mean waiting time in queue (seconds) with `c` servers.
    ///
    /// # Errors
    ///
    /// [`QueueingError::Unstable`] when ρ ≥ 1.
    pub fn mean_wait(&self, servers: usize) -> Result<f64, QueueingError> {
        let a = self.offered_load();
        let c = servers as f64;
        if a >= c {
            return Err(QueueingError::Unstable { offered_load: a });
        }
        Ok(self.wait_probability(servers) / (c * self.service_rate - self.arrival_rate))
    }

    /// The `q`-quantile of the *sojourn* time (wait + service) in seconds,
    /// using the exponential tail of the M/M/c waiting time plus the mean
    /// service time.
    ///
    /// # Errors
    ///
    /// - [`QueueingError::Unstable`] when ρ ≥ 1.
    /// - [`QueueingError::InvalidParameter`] when `q` outside (0, 1).
    pub fn sojourn_quantile(&self, servers: usize, q: f64) -> Result<f64, QueueingError> {
        if !(0.0 < q && q < 1.0) {
            return Err(QueueingError::InvalidParameter("quantile must be within (0, 1)"));
        }
        let a = self.offered_load();
        let c = servers as f64;
        if a >= c {
            return Err(QueueingError::Unstable { offered_load: a });
        }
        let p_wait = self.wait_probability(servers);
        let drain = c * self.service_rate - self.arrival_rate;
        // P(W > t) = p_wait * exp(-drain * t); invert for the q-quantile.
        let wait_q = if p_wait <= 1.0 - q { 0.0 } else { (p_wait / (1.0 - q)).ln() / drain };
        Ok(wait_q + 1.0 / self.service_rate)
    }
}

/// Capacity planner built on the M/M/c model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingPlanner {
    /// The per-server service rate μ the planner *believes* (requests/sec).
    pub assumed_service_rate: f64,
    /// The latency quantile planned for (e.g. `0.95`).
    pub quantile: f64,
}

impl QueueingPlanner {
    /// Creates a planner for p95 latency.
    ///
    /// # Errors
    ///
    /// [`QueueingError::InvalidParameter`] for a non-positive rate.
    pub fn new(assumed_service_rate: f64) -> Result<Self, QueueingError> {
        if assumed_service_rate <= 0.0 || !assumed_service_rate.is_finite() {
            return Err(QueueingError::InvalidParameter("service rate must be positive"));
        }
        Ok(QueueingPlanner { assumed_service_rate, quantile: 0.95 })
    }

    /// Smallest server count whose modelled p-quantile sojourn time meets
    /// `slo_ms` at arrival rate `peak_rps`.
    ///
    /// # Errors
    ///
    /// - [`QueueingError::Unstable`] when no count up to 1,000,000 works.
    /// - [`QueueingError::InvalidParameter`] for bad inputs.
    pub fn required_servers(&self, peak_rps: f64, slo_ms: f64) -> Result<usize, QueueingError> {
        if slo_ms <= 0.0 || !slo_ms.is_finite() {
            return Err(QueueingError::InvalidParameter("slo must be positive"));
        }
        let system = ErlangC::new(peak_rps, self.assumed_service_rate)?;
        let slo_secs = slo_ms / 1000.0;
        if 1.0 / self.assumed_service_rate > slo_secs {
            // Service time alone exceeds the SLO: no count helps.
            return Err(QueueingError::InvalidParameter("slo below mean service time"));
        }
        let min_c = system.offered_load().ceil() as usize;
        for c in min_c.max(1)..1_000_000 {
            match system.sojourn_quantile(c, self.quantile) {
                Ok(t) if t <= slo_secs => return Ok(c),
                Ok(_) => continue,
                Err(QueueingError::Unstable { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(QueueingError::Unstable { offered_load: system.offered_load() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_wait_probability_is_rho() {
        // For M/M/1, Erlang C reduces to ρ.
        let s = ErlangC::new(5.0, 10.0).unwrap();
        assert!((s.wait_probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_erlang_c_value() {
        // Classic check: a = 2 erlangs, c = 3 ⇒ P_wait ≈ 0.4444.
        let s = ErlangC::new(2.0, 1.0).unwrap();
        assert!((s.wait_probability(3) - 4.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn wait_probability_decreases_with_servers() {
        let s = ErlangC::new(100.0, 10.0).unwrap();
        let p11 = s.wait_probability(11);
        let p15 = s.wait_probability(15);
        let p25 = s.wait_probability(25);
        assert!(p11 > p15 && p15 > p25);
        assert!(p25 < 0.01);
    }

    #[test]
    fn unstable_system_detected() {
        let s = ErlangC::new(100.0, 10.0).unwrap();
        assert_eq!(s.wait_probability(9), 1.0);
        assert!(matches!(s.mean_wait(10), Err(QueueingError::Unstable { .. })));
    }

    #[test]
    fn mean_wait_matches_formula() {
        let s = ErlangC::new(2.0, 1.0).unwrap();
        // W_q = C(c,a) / (cμ - λ) = (4/9) / (3 - 2).
        assert!((s.mean_wait(3).unwrap() - 4.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn sojourn_quantile_sane() {
        let s = ErlangC::new(50.0, 10.0).unwrap();
        let p50 = s.sojourn_quantile(8, 0.5).unwrap();
        let p95 = s.sojourn_quantile(8, 0.95).unwrap();
        let p99 = s.sojourn_quantile(8, 0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        // At minimum, the service time itself.
        assert!(p50 >= 0.1 - 1e-12);
    }

    #[test]
    fn quantile_zero_wait_regime() {
        // Massively overprovisioned: p95 wait is zero, sojourn = service time.
        let s = ErlangC::new(1.0, 10.0).unwrap();
        let p95 = s.sojourn_quantile(50, 0.95).unwrap();
        assert!((p95 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn planner_meets_slo() {
        let planner = QueueingPlanner::new(20.0).unwrap(); // 50 ms service time
        let c = planner.required_servers(1000.0, 80.0).unwrap();
        let system = ErlangC::new(1000.0, 20.0).unwrap();
        assert!(system.sojourn_quantile(c, 0.95).unwrap() <= 0.080);
        if c > 1 {
            // One fewer server must violate (minimality).
            let t = system.sojourn_quantile(c - 1, 0.95);
            assert!(t.is_err() || t.unwrap() > 0.080);
        }
    }

    #[test]
    fn planner_with_wrong_mu_misprovisions() {
        // Truth: μ = 20/s. Planner believes μ = 30/s (stale calibration).
        let truth = QueueingPlanner::new(20.0).unwrap();
        let stale = QueueingPlanner::new(30.0).unwrap();
        let honest = truth.required_servers(2000.0, 80.0).unwrap();
        let optimistic = stale.required_servers(2000.0, 80.0).unwrap();
        assert!(optimistic < honest, "optimistic model underprovisions: {optimistic} vs {honest}");
        // And the optimistic allocation really does violate the SLO.
        let real = ErlangC::new(2000.0, 20.0).unwrap();
        let at_optimistic = real.sojourn_quantile(optimistic, 0.95);
        assert!(at_optimistic.is_err() || at_optimistic.unwrap() > 0.080);
    }

    #[test]
    fn impossible_slo_rejected() {
        let planner = QueueingPlanner::new(10.0).unwrap(); // 100 ms service
        assert!(matches!(
            planner.required_servers(100.0, 50.0),
            Err(QueueingError::InvalidParameter(_))
        ));
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(ErlangC::new(0.0, 1.0).is_err());
        assert!(ErlangC::new(1.0, f64::NAN).is_err());
        assert!(QueueingPlanner::new(-5.0).is_err());
    }
}
