//! Property tests for planner invariants.

use headroom_core::curves::{CpuModel, LatencyModel, PoolObservations};
use headroom_core::forecast::CapacityForecaster;
use headroom_core::partitions::partition_by_total_load;
use headroom_core::slo::QosRequirement;
use headroom_stats::{LinearFit, Polynomial};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;
use proptest::prelude::*;

fn pool_b_forecaster() -> CapacityForecaster {
    CapacityForecaster {
        cpu: CpuModel { fit: LinearFit { slope: 0.028, intercept: 1.37, r_squared: 0.98, n: 100 } },
        latency: LatencyModel {
            poly: Polynomial::new(vec![36.68, -0.031, 4.028e-5]),
            r_squared: 0.9,
            n: 100,
            inlier_fraction: 1.0,
        },
    }
}

fn synthetic_obs(n: usize, servers: f64) -> PoolObservations {
    let rps: Vec<f64> = (0..n).map(|i| 100.0 + (i % 67) as f64 * 6.0).collect();
    PoolObservations {
        pool: PoolId(0),
        windows: (0..n as u64).map(WindowIndex).collect(),
        cpu_pct: rps.iter().map(|r| 0.028 * r + 1.37).collect(),
        latency_p95_ms: rps.iter().map(|r| 4.028e-5 * r * r - 0.031 * r + 36.68).collect(),
        active_servers: vec![servers; n],
        rps_per_server: rps,
    }
}

proptest! {
    /// min_servers is monotone in peak workload and in failure headroom.
    #[test]
    fn min_servers_monotone(
        peak_a in 1_000.0f64..200_000.0,
        delta in 1_000.0f64..100_000.0,
        headroom in 0.0f64..0.3,
    ) {
        let f = pool_b_forecaster();
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let small = f.min_servers(peak_a, &qos, headroom).unwrap();
        let large = f.min_servers(peak_a + delta, &qos, headroom).unwrap();
        prop_assert!(large >= small);
        let more_headroom = f.min_servers(peak_a, &qos, (headroom + 0.2).min(0.9)).unwrap();
        prop_assert!(more_headroom >= small);
    }

    /// A tighter latency SLO never needs fewer servers.
    #[test]
    fn tighter_slo_needs_more(peak in 10_000.0f64..100_000.0) {
        let f = pool_b_forecaster();
        let loose = QosRequirement::latency(34.0).with_cpu_ceiling(90.0);
        let tight = QosRequirement::latency(31.5).with_cpu_ceiling(90.0);
        let n_loose = f.min_servers(peak, &loose, 0.0).unwrap();
        let n_tight = f.min_servers(peak, &tight, 0.0).unwrap();
        prop_assert!(n_tight >= n_loose);
    }

    /// Partitions cover every observation exactly once, with ascending
    /// workload bounds.
    #[test]
    fn partitions_cover_exactly(n in 16usize..200, j in 1usize..8) {
        prop_assume!(n >= 2 * j);
        let obs = synthetic_obs(n, 10.0);
        let parts = partition_by_total_load(&obs, j).unwrap();
        let total: usize = parts.iter().map(|p| p.observations.len()).sum();
        prop_assert_eq!(total, n);
        let mut seen: Vec<u64> =
            parts.iter().flat_map(|p| p.observations.iter().map(|o| o.window.0)).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n, "no observation may appear twice");
        for w in parts.windows(2) {
            prop_assert!(w[0].hi <= w[1].lo + 1e-9);
        }
    }

    /// CPU and latency model fits on clean synthetic pools are accurate at
    /// any pool size.
    #[test]
    fn fits_insensitive_to_pool_size(servers in 1.0f64..500.0) {
        let obs = synthetic_obs(120, servers);
        let cpu = CpuModel::fit(&obs).unwrap();
        prop_assert!((cpu.fit.slope - 0.028).abs() < 1e-9);
        let lat = LatencyModel::fit(&obs).unwrap();
        prop_assert!((lat.predict(540.0) - 31.69).abs() < 0.5);
    }

    /// after_reduction degrades gracefully: reduction 0 is the identity.
    #[test]
    fn zero_reduction_is_identity(rps in 50.0f64..600.0) {
        let f = pool_b_forecaster();
        let same = f.after_reduction(rps, 0.0).unwrap();
        prop_assert!((same.rps_per_server - rps).abs() < 1e-12);
        let direct = f.at_rps(rps);
        prop_assert_eq!(same, direct);
    }
}
