//! Natural-experiment analysis (§II-B1).
//!
//! Unplanned capacity events — failovers, viral surges — push pools far
//! beyond their normal workload envelope *for free*: "analyzing the effect
//! of unplanned events is a useful way to learn more about the
//! characteristics of the system, and if there is sufficient data from
//! these there may be no need to experiment". This module detects such
//! windows in historical telemetry and checks whether the fitted response
//! models hold through them (Figs. 4–6).

use crate::curves::{CpuModel, LatencyModel, PoolObservations};
use crate::error::PlanError;

/// A detected span of abnormally high workload.
#[derive(Debug, Clone, PartialEq)]
pub struct NaturalExperiment {
    /// Indices into the observation vectors that belong to the event.
    pub indices: Vec<usize>,
    /// Baseline (envelope) per-server workload that was exceeded.
    pub baseline_rps: f64,
    /// Peak per-server workload during the event.
    pub peak_rps: f64,
}

impl NaturalExperiment {
    /// Workload increase factor at the event peak.
    pub fn surge_factor(&self) -> f64 {
        if self.baseline_rps <= 0.0 {
            return 0.0;
        }
        self.peak_rps / self.baseline_rps
    }
}

/// Finds natural experiments: windows whose per-server workload exceeds
/// `threshold_factor` × the pool's normal envelope (95th percentile of
/// RPS/server).
///
/// # Errors
///
/// Propagates percentile errors for empty observations.
pub fn find_natural_experiments(
    obs: &PoolObservations,
    threshold_factor: f64,
) -> Result<Vec<NaturalExperiment>, PlanError> {
    let envelope = obs.rps_percentile(95.0)?;
    let threshold = envelope * threshold_factor;
    let mut events: Vec<NaturalExperiment> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for i in 0..obs.len() {
        if obs.rps_per_server[i] > threshold {
            current.push(i);
        } else if !current.is_empty() {
            events.push(close_event(obs, std::mem::take(&mut current), envelope));
        }
    }
    if !current.is_empty() {
        events.push(close_event(obs, current, envelope));
    }
    Ok(events)
}

fn close_event(obs: &PoolObservations, indices: Vec<usize>, envelope: f64) -> NaturalExperiment {
    let peak = indices.iter().map(|&i| obs.rps_per_server[i]).fold(f64::NEG_INFINITY, f64::max);
    NaturalExperiment { indices, baseline_rps: envelope, peak_rps: peak }
}

/// Whether a fitted model keeps predicting through an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldReport {
    /// Mean absolute prediction error over the event windows.
    pub mean_abs_error: f64,
    /// Worst absolute prediction error.
    pub max_abs_error: f64,
    /// Mean observed value during the event (for relative judgement).
    pub mean_observed: f64,
    /// Whether the mean error stays under the tolerance.
    pub holds: bool,
}

/// Verifies the CPU line extrapolates through an event (Fig. 5).
///
/// `tolerance_rel` bounds the acceptable mean |error| relative to the mean
/// observed CPU (e.g. `0.1` = 10%).
pub fn verify_cpu_model_holds(
    model: &CpuModel,
    obs: &PoolObservations,
    event: &NaturalExperiment,
    tolerance_rel: f64,
) -> HoldReport {
    verify_holds(
        event.indices.iter().map(|&i| (obs.rps_per_server[i], obs.cpu_pct[i])),
        |rps| model.predict(rps),
        tolerance_rel,
    )
}

/// Verifies the latency quadratic extrapolates through an event (Fig. 6).
pub fn verify_latency_model_holds(
    model: &LatencyModel,
    obs: &PoolObservations,
    event: &NaturalExperiment,
    tolerance_rel: f64,
) -> HoldReport {
    verify_holds(
        event.indices.iter().map(|&i| (obs.rps_per_server[i], obs.latency_p95_ms[i])),
        |rps| model.predict(rps),
        tolerance_rel,
    )
}

fn verify_holds<I, F>(pairs: I, predict: F, tolerance_rel: f64) -> HoldReport
where
    I: Iterator<Item = (f64, f64)>,
    F: Fn(f64) -> f64,
{
    let mut n = 0usize;
    let mut sum_abs = 0.0;
    let mut max_abs_error = 0.0f64;
    let mut sum_obs = 0.0;
    for (x, y) in pairs {
        let err = (y - predict(x)).abs();
        sum_abs += err;
        max_abs_error = max_abs_error.max(err);
        sum_obs += y;
        n += 1;
    }
    if n == 0 {
        return HoldReport {
            mean_abs_error: 0.0,
            max_abs_error: 0.0,
            mean_observed: 0.0,
            holds: false,
        };
    }
    let mean_abs_error = sum_abs / n as f64;
    let mean_observed = sum_obs / n as f64;
    let holds = mean_observed > 0.0 && mean_abs_error / mean_observed <= tolerance_rel;
    HoldReport { mean_abs_error, max_abs_error, mean_observed, holds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::ids::PoolId;
    use headroom_telemetry::time::WindowIndex;

    /// Observations with a calm diurnal baseline and a scripted surge.
    fn obs_with_surge(surge_at: std::ops::Range<usize>, surge_factor: f64) -> PoolObservations {
        let n = 400;
        let mut rps = Vec::with_capacity(n);
        for i in 0..n {
            let base = 200.0 + 80.0 * ((i as f64 / n as f64) * 2.0 * std::f64::consts::TAU).sin();
            let factor = if surge_at.contains(&i) { surge_factor } else { 1.0 };
            rps.push(base * factor);
        }
        let cpu: Vec<f64> = rps.iter().map(|r| 0.028 * r + 1.37).collect();
        let lat: Vec<f64> = rps.iter().map(|r| 4.028e-5 * r * r - 0.031 * r + 36.68).collect();
        PoolObservations {
            pool: PoolId(0),
            windows: (0..n as u64).map(WindowIndex).collect(),
            rps_per_server: rps,
            cpu_pct: cpu,
            latency_p95_ms: lat,
            active_servers: vec![10.0; n],
        }
    }

    #[test]
    fn detects_the_surge_span() {
        // Keep the event rare (<5% of windows) so the p95 envelope reflects
        // normal operations, as it would over months of history.
        let obs = obs_with_surge(100..115, 2.0);
        let events = find_natural_experiments(&obs, 1.3).unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert!(e.indices.contains(&105));
        assert!(e.surge_factor() > 1.3, "factor {}", e.surge_factor());
    }

    #[test]
    fn no_event_in_calm_data() {
        let obs = obs_with_surge(0..0, 1.0);
        let events = find_natural_experiments(&obs, 1.3).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn separate_surges_are_separate_events() {
        let mut obs = obs_with_surge(50..60, 2.5);
        // Add a second surge manually.
        for i in 200..210 {
            obs.rps_per_server[i] *= 2.5;
            obs.cpu_pct[i] = 0.028 * obs.rps_per_server[i] + 1.37;
        }
        let events = find_natural_experiments(&obs, 1.5).unwrap();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn cpu_model_holds_through_event() {
        let obs = obs_with_surge(100..130, 2.0);
        // Fit on calm windows only — the event is out-of-sample.
        let calm = obs.filter_by(|i| !(100..130).contains(&i));
        let model = CpuModel::fit(&calm).unwrap();
        let events = find_natural_experiments(&obs, 1.3).unwrap();
        let report = verify_cpu_model_holds(&model, &obs, &events[0], 0.05);
        assert!(report.holds, "linear CPU extrapolates: {report:?}");
    }

    #[test]
    fn latency_model_holds_through_4x_event() {
        let obs = obs_with_surge(100..120, 4.0);
        let calm = obs.filter_by(|i| !(100..120).contains(&i));
        let model = LatencyModel::fit(&calm).unwrap();
        let events = find_natural_experiments(&obs, 1.5).unwrap();
        let report = verify_latency_model_holds(&model, &obs, &events[0], 0.10);
        assert!(report.holds, "quadratic extrapolates through 4x: {report:?}");
    }

    #[test]
    fn broken_model_detected() {
        let obs = obs_with_surge(100..130, 2.0);
        // A deliberately wrong model.
        let wrong = CpuModel {
            fit: headroom_stats::LinearFit { slope: 0.2, intercept: 50.0, r_squared: 1.0, n: 2 },
        };
        let events = find_natural_experiments(&obs, 1.3).unwrap();
        let report = verify_cpu_model_holds(&wrong, &obs, &events[0], 0.10);
        assert!(!report.holds);
    }

    #[test]
    fn empty_event_does_not_hold() {
        let obs = obs_with_surge(0..0, 1.0);
        let model = CpuModel::fit(&obs).unwrap();
        let fake = NaturalExperiment { indices: vec![], baseline_rps: 1.0, peak_rps: 1.0 };
        let report = verify_cpu_model_holds(&model, &obs, &fake, 0.1);
        assert!(!report.holds);
    }
}
