//! Server-group identification (methodology step 1b, §II-A2).
//!
//! Capacity is planned per group of servers with the same workload→resource
//! response. Pools are *usually* such groups, but hardware refreshes and
//! role asymmetries create sub-populations (Fig. 3). This module:
//!
//! - builds the paper's feature vectors (per-server CPU percentiles plus the
//!   pool-level percentile-regression features);
//! - trains the paper's decision tree (pool → "tightly bound CPU range?")
//!   with 5-fold cross-validation and AUC;
//! - splits pools into server groups via (p5, p95) clustering;
//! - implements the scatter-stability rule for choosing the observation
//!   window ("expand the range of data considered until the resulting
//!   scatter plot no longer changes").

use headroom_stats::dtree::{cross_validate, CvReport, DecisionTree, TreeConfig};
use headroom_stats::kmeans::{kmeans, silhouette_score, KMeansConfig};
use headroom_stats::percentile::PercentileProfile;
use headroom_stats::LinearFit;
use headroom_telemetry::counter::CounterKind;
use headroom_telemetry::ids::{PoolId, ServerId};
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::WindowRange;

use crate::error::PlanError;

/// Per-server CPU percentile profile plus identity.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerProfile {
    /// The server.
    pub server: ServerId,
    /// Its CPU percentile profile over the observation range.
    pub profile: PercentileProfile,
}

/// The paper's pool-level feature vector: the five CPU percentiles averaged
/// across servers, plus slope/intercept/R² of a linear regression across
/// `(percentile rank, CPU value)` pairs for every server in the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolFeatures {
    /// The pool.
    pub pool: PoolId,
    /// Mean p5/p25/p50/p75/p95 across servers.
    pub mean_percentiles: [f64; 5],
    /// Slope of the percentile-rank regression.
    pub slope: f64,
    /// Intercept of the percentile-rank regression.
    pub intercept: f64,
    /// R² of the percentile-rank regression.
    pub r_squared: f64,
    /// Per-server profiles (kept for group splitting).
    pub servers: Vec<ServerProfile>,
}

impl PoolFeatures {
    /// Collects features for a pool over `range`.
    ///
    /// # Errors
    ///
    /// [`PlanError::InsufficientData`] when no server has at least 8 CPU
    /// samples in range.
    pub fn collect(
        store: &MetricStore,
        pool: PoolId,
        range: WindowRange,
    ) -> Result<Self, PlanError> {
        let mut servers = Vec::new();
        let mut reg_x = Vec::new();
        let mut reg_y = Vec::new();
        for (server, values) in store.pool_server_values(pool, CounterKind::CpuPercent, range) {
            if values.len() < 8 {
                continue;
            }
            let profile = PercentileProfile::from_values(&values)?;
            for (p, c) in
                headroom_stats::percentile::FEATURE_PERCENTILES.iter().zip(profile.as_features())
            {
                reg_x.push(*p);
                reg_y.push(c);
            }
            servers.push(ServerProfile { server, profile });
        }
        if servers.is_empty() {
            return Err(PlanError::InsufficientData {
                what: "server CPU profiles",
                needed: 1,
                got: 0,
            });
        }
        let n = servers.len() as f64;
        let mut mean = [0.0f64; 5];
        for s in &servers {
            for (m, v) in mean.iter_mut().zip(s.profile.as_features()) {
                *m += v / n;
            }
        }
        let fit = LinearFit::fit(&reg_x, &reg_y)?;
        Ok(PoolFeatures {
            pool,
            mean_percentiles: mean,
            slope: fit.slope,
            intercept: fit.intercept,
            r_squared: fit.r_squared,
            servers,
        })
    }

    /// The 8-dimensional feature vector fed to the decision tree.
    pub fn as_vec(&self) -> Vec<f64> {
        let mut v = self.mean_percentiles.to_vec();
        v.push(self.slope);
        v.push(self.intercept);
        v.push(self.r_squared);
        v
    }

    /// The paper's "tightly bound CPU utilisation range" heuristic: the mean
    /// p95−p5 band relative to the mean p95.
    pub fn relative_band(&self) -> f64 {
        let p95 = self.mean_percentiles[4];
        if p95 <= 0.0 {
            return 0.0;
        }
        (p95 - self.mean_percentiles[0]) / p95
    }
}

/// A trained pool classifier plus its cross-validation report.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolClassifier {
    /// The trained tree.
    pub tree: DecisionTree,
    /// 5-fold CV metrics (the paper reports R²=0.746, AUC=0.9804, 34 splits).
    pub cv: CvReport,
}

/// Trains the §II-A2 decision tree on labelled pools.
///
/// `min_leaf` is the minimum machines per leaf — the paper used 2000 at
/// production scale; scaled-down datasets pass proportionally smaller
/// values.
///
/// # Errors
///
/// Propagates tree-training and cross-validation failures.
pub fn train_pool_classifier(
    rows: &[(PoolFeatures, bool)],
    min_leaf: usize,
    seed: u64,
) -> Result<PoolClassifier, PlanError> {
    let features: Vec<Vec<f64>> = rows.iter().map(|(f, _)| f.as_vec()).collect();
    let labels: Vec<bool> = rows.iter().map(|(_, l)| *l).collect();
    let config = TreeConfig { max_depth: 10, min_leaf_size: min_leaf.max(1), min_gain: 1e-6 };
    let cv = cross_validate(&features, &labels, &config, 5, seed)?;
    let tree = DecisionTree::train(&features, &labels, &config)?;
    Ok(PoolClassifier { tree, cv })
}

/// The result of splitting one pool into server groups.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSplit {
    /// Server groups (1 = homogeneous pool, 2 = e.g. two hardware
    /// generations).
    pub groups: Vec<Vec<ServerId>>,
    /// Silhouette score of the 2-way split (meaningful only when 2 groups
    /// were considered).
    pub silhouette: f64,
    /// The (p5, p95) scatter used (one point per server) — the Fig. 3 data.
    pub scatter: Vec<(ServerId, f64, f64)>,
}

/// Minimum silhouette at which a 2-way split is accepted.
///
/// Calibrated against the simulator: genuinely bimodal pools (two hardware
/// generations, e.g. service I) score ≈0.99, while homogeneous diurnal
/// pools with realistic load-balancer and maintenance noise range up to
/// ≈0.65 depending on the seed. 0.75 sits safely between the populations.
pub const SPLIT_SILHOUETTE_THRESHOLD: f64 = 0.75;

/// Splits a pool into capacity-planning groups from its (p5, p95) CPU
/// scatter (Fig. 3): k-means with k=2, accepted only when the silhouette
/// shows genuinely separate populations.
///
/// # Errors
///
/// Propagates [`PoolFeatures::collect`] errors.
pub fn split_pool_groups(
    store: &MetricStore,
    pool: PoolId,
    range: WindowRange,
) -> Result<GroupSplit, PlanError> {
    let features = PoolFeatures::collect(store, pool, range)?;
    let scatter: Vec<(ServerId, f64, f64)> =
        features.servers.iter().map(|s| (s.server, s.profile.p5, s.profile.p95)).collect();
    if scatter.len() < 4 {
        return Ok(GroupSplit {
            groups: vec![scatter.iter().map(|(s, _, _)| *s).collect()],
            silhouette: 0.0,
            scatter,
        });
    }
    let points: Vec<Vec<f64>> = scatter.iter().map(|(_, p5, p95)| vec![*p5, *p95]).collect();
    let clustering = kmeans(&points, &KMeansConfig::new(2))?;
    let silhouette = silhouette_score(&points, &clustering.assignments).unwrap_or(0.0);
    if silhouette >= SPLIT_SILHOUETTE_THRESHOLD {
        let mut groups = vec![Vec::new(), Vec::new()];
        for ((server, _, _), &cluster) in scatter.iter().zip(&clustering.assignments) {
            groups[cluster].push(*server);
        }
        groups.retain(|g| !g.is_empty());
        Ok(GroupSplit { groups, silhouette, scatter })
    } else {
        Ok(GroupSplit {
            groups: vec![scatter.iter().map(|(s, _, _)| *s).collect()],
            silhouette,
            scatter,
        })
    }
}

/// Implements the scatter-stability rule: returns the smallest number of
/// days whose (p5, p95) scatter differs from the next-larger window by less
/// than `tolerance` (relative), or `max_days` if never stable.
///
/// # Errors
///
/// Propagates [`PoolFeatures::collect`] errors for the first window.
pub fn stable_observation_days(
    store: &MetricStore,
    pool: PoolId,
    max_days: u64,
    tolerance: f64,
) -> Result<u64, PlanError> {
    let mut prev: Option<Vec<(f64, f64)>> = None;
    for days in 1..=max_days {
        let range = WindowRange::days(days as f64);
        let features = PoolFeatures::collect(store, pool, range)?;
        let scatter: Vec<(f64, f64)> =
            features.servers.iter().map(|s| (s.profile.p5, s.profile.p95)).collect();
        if let Some(prev_scatter) = &prev {
            if prev_scatter.len() == scatter.len() {
                let scale =
                    scatter.iter().map(|(_, p95)| p95.abs()).fold(f64::MIN_POSITIVE, f64::max);
                let max_delta = prev_scatter
                    .iter()
                    .zip(&scatter)
                    .map(|((a5, a95), (b5, b95))| (a5 - b5).abs().max((a95 - b95).abs()))
                    .fold(0.0, f64::max);
                if max_delta / scale <= tolerance {
                    return Ok(days - 1);
                }
            }
        }
        prev = Some(scatter);
    }
    Ok(max_days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::ids::DatacenterId;
    use headroom_telemetry::time::{WindowIndex, WINDOWS_PER_DAY};

    /// Builds a store where a pool has `hot` slow servers and `cool` fast
    /// ones (two hardware generations), each with a diurnal CPU cycle.
    fn two_generation_store(hot: u32, cool: u32, windows: u64) -> (MetricStore, PoolId) {
        let mut store = MetricStore::new();
        let pool = PoolId(0);
        for s in 0..(hot + cool) {
            store.register_server(ServerId(s), pool, DatacenterId(0));
        }
        for w in 0..windows {
            let phase = (w as f64 / WINDOWS_PER_DAY as f64) * std::f64::consts::TAU;
            let load = 0.5 + 0.45 * phase.sin().max(-1.0);
            for s in 0..(hot + cool) {
                let scale = if s < hot { 20.0 } else { 8.0 };
                let jitter = ((w.wrapping_mul(31).wrapping_add(s as u64 * 17)) % 13) as f64 * 0.05;
                store.record(
                    ServerId(s),
                    CounterKind::CpuPercent,
                    WindowIndex(w),
                    scale * load + jitter + 2.0,
                );
            }
        }
        (store, pool)
    }

    fn homogeneous_store(n: u32, windows: u64) -> (MetricStore, PoolId) {
        two_generation_store(n, 0, windows)
    }

    #[test]
    fn features_have_eight_dims() {
        let (store, pool) = homogeneous_store(6, 720);
        let f = PoolFeatures::collect(&store, pool, WindowRange::days(1.0)).unwrap();
        assert_eq!(f.as_vec().len(), 8);
        assert_eq!(f.servers.len(), 6);
        // Percentiles ascend.
        for w in f.mean_percentiles.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(f.r_squared > 0.5, "percentile regression should be strong");
    }

    #[test]
    fn split_detects_two_generations() {
        let (store, pool) = two_generation_store(8, 8, 720);
        let split = split_pool_groups(&store, pool, WindowRange::days(1.0)).unwrap();
        assert_eq!(split.groups.len(), 2, "silhouette {}", split.silhouette);
        assert_eq!(split.groups[0].len() + split.groups[1].len(), 16);
        // Hot servers (ids 0..8) must end up together.
        let g0_hot = split.groups[0].iter().filter(|s| s.0 < 8).count();
        assert!(g0_hot == 0 || g0_hot == split.groups[0].len());
    }

    #[test]
    fn homogeneous_pool_stays_whole() {
        let (store, pool) = homogeneous_store(16, 720);
        let split = split_pool_groups(&store, pool, WindowRange::days(1.0)).unwrap();
        assert_eq!(split.groups.len(), 1, "silhouette {}", split.silhouette);
    }

    #[test]
    fn tiny_pool_not_split() {
        let (store, pool) = two_generation_store(1, 2, 100);
        let split = split_pool_groups(&store, pool, WindowRange::days(0.2)).unwrap();
        assert_eq!(split.groups.len(), 1);
    }

    #[test]
    fn classifier_learns_tight_vs_noisy() {
        // Tight pools: small band; noisy pools: wide band.
        let mut rows = Vec::new();
        for i in 0..60u32 {
            let tight = i % 2 == 0;
            let (hot, cool) = if tight { (6, 0) } else { (3, 3) };
            let (store, pool) = two_generation_store(hot, cool, 360);
            let mut f = PoolFeatures::collect(&store, pool, WindowRange::days(0.5)).unwrap();
            // Decorate with mild per-pool variation so rows are not identical.
            f.mean_percentiles[4] += (i % 7) as f64 * 0.1;
            rows.push((f, tight));
        }
        let classifier = train_pool_classifier(&rows, 2, 5).unwrap();
        assert!(classifier.cv.auc > 0.9, "auc {}", classifier.cv.auc);
        assert!(classifier.cv.accuracy > 0.85, "accuracy {}", classifier.cv.accuracy);
        assert!(classifier.tree.split_count() >= 1);
    }

    #[test]
    fn empty_pool_rejected() {
        let store = MetricStore::new();
        assert!(matches!(
            PoolFeatures::collect(&store, PoolId(4), WindowRange::days(1.0)),
            Err(PlanError::InsufficientData { .. })
        ));
    }

    #[test]
    fn scatter_stabilises_for_periodic_load() {
        let (store, pool) = homogeneous_store(5, 5 * WINDOWS_PER_DAY);
        let days = stable_observation_days(&store, pool, 5, 0.05).unwrap();
        assert!(days <= 3, "diurnal load stabilises within a few days, got {days}");
    }

    #[test]
    fn relative_band_reflects_spread() {
        let (store, pool) = homogeneous_store(4, 720);
        let f = PoolFeatures::collect(&store, pool, WindowRange::days(1.0)).unwrap();
        assert!(f.relative_band() > 0.3, "diurnal pools have a wide band");
    }
}
