//! Error type for the capacity planner.

use std::error::Error;
use std::fmt;

use headroom_cluster::ClusterError;
use headroom_stats::StatsError;
use headroom_telemetry::ids::PoolId;

/// Error produced by planning operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// A statistical routine failed (propagated).
    Stats(StatsError),
    /// The simulator rejected an experiment action (propagated).
    Cluster(ClusterError),
    /// Not enough telemetry for the requested analysis.
    InsufficientData {
        /// What the planner was trying to estimate.
        what: &'static str,
        /// Observations required.
        needed: usize,
        /// Observations available.
        got: usize,
    },
    /// The workload metric did not correlate with the limiting resource —
    /// the §II-A1 validation loop must iterate (split metrics, remove
    /// background noise) before planning can proceed.
    NoLinearCorrelation {
        /// Best R² achieved.
        r_squared: f64,
        /// Minimum acceptable R².
        required: f64,
    },
    /// No pool size satisfies the QoS requirement (the SLO is below the
    /// service's floor latency).
    SloUnreachable(PoolId),
    /// A parameter was out of its valid domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Stats(e) => write!(f, "statistics error: {e}"),
            PlanError::Cluster(e) => write!(f, "cluster error: {e}"),
            PlanError::InsufficientData { what, needed, got } => {
                write!(f, "insufficient data for {what}: need {needed}, got {got}")
            }
            PlanError::NoLinearCorrelation { r_squared, required } => write!(
                f,
                "workload metric fails linear validation (R² {r_squared:.3} < {required:.3})"
            ),
            PlanError::SloUnreachable(pool) => {
                write!(f, "no server count satisfies the QoS requirement for {pool}")
            }
            PlanError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Stats(e) => Some(e),
            PlanError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for PlanError {
    fn from(e: StatsError) -> Self {
        PlanError::Stats(e)
    }
}

impl From<ClusterError> for PlanError {
    fn from(e: ClusterError) -> Self {
        PlanError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PlanError::from(StatsError::EmptyInput);
        assert!(e.to_string().contains("input is empty"));
        assert!(Error::source(&e).is_some());
        let e2 = PlanError::NoLinearCorrelation { r_squared: 0.4, required: 0.9 };
        assert!(e2.to_string().contains("0.400"));
        assert!(Error::source(&e2).is_none());
    }

    #[test]
    fn from_cluster_error() {
        let e = PlanError::from(ClusterError::UnknownPool(PoolId(1)));
        assert!(e.to_string().contains("pool-1"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanError>();
    }
}
