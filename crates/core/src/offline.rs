//! Offline synthetic-workload validation and A/B regression analysis
//! (methodology steps 3–4, §II-C/D, §III-C).
//!
//! Two gates guard production:
//!
//! 1. [`validate_synthetic`] — does the offline pool, driven by the
//!    synthetic workload, exhibit the *same* workload→CPU and
//!    workload→latency response as production? Only then can offline
//!    results be trusted to predict production magnitudes.
//! 2. [`analyze_ab`] — given a twin-pool A/B run under stepped load, did
//!    the change regress latency, capacity, or fix/introduce a leak?
//!    (The paper's memory-leak fix that secretly added a high-load latency
//!    regression, Fig. 16.)

use headroom_cluster::hardware::HardwareGeneration;
use headroom_cluster::pool::LoadBalancer;
use headroom_cluster::regression_lab::AbRunResult;
use headroom_cluster::ServiceModel;
use headroom_stats::{LinearFit, Polynomial};
use headroom_telemetry::counter::CounterKind;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::{WindowIndex, WindowRange};
use headroom_workload::trace::{TraceWindow, WorkloadTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::curves::PoolObservations;
use crate::error::PlanError;

/// Outcome of comparing offline (synthetic-driven) response curves against
/// production.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticValidation {
    /// Relative difference of the CPU slope.
    pub cpu_slope_error: f64,
    /// Mean relative difference of latency predictions across the shared
    /// workload range.
    pub latency_curve_error: f64,
    /// Whether both errors fall inside the tolerance.
    pub equivalent: bool,
}

/// Compares production and offline observations (step 3's gate).
///
/// # Errors
///
/// Propagates fitting errors for either observation set.
pub fn validate_synthetic(
    production: &PoolObservations,
    offline: &PoolObservations,
    tolerance: f64,
) -> Result<SyntheticValidation, PlanError> {
    let prod_cpu = LinearFit::fit(&production.rps_per_server, &production.cpu_pct)?;
    let off_cpu = LinearFit::fit(&offline.rps_per_server, &offline.cpu_pct)?;
    let cpu_slope_error = if prod_cpu.slope.abs() > 1e-12 {
        (off_cpu.slope - prod_cpu.slope).abs() / prod_cpu.slope.abs()
    } else {
        0.0
    };

    let prod_lat = Polynomial::fit(&production.rps_per_server, &production.latency_p95_ms, 2)?;
    let off_lat = Polynomial::fit(&offline.rps_per_server, &offline.latency_p95_ms, 2)?;

    // Compare predictions across the overlapping workload range.
    let lo = production
        .rps_per_server
        .iter()
        .chain(&offline.rps_per_server)
        .fold(f64::INFINITY, |a, &b| a.min(b));
    let hi = production
        .rps_per_server
        .iter()
        .chain(&offline.rps_per_server)
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut err = 0.0;
    let probes = 20;
    for i in 0..probes {
        let x = lo + (hi - lo) * i as f64 / (probes - 1) as f64;
        let p = prod_lat.poly.eval(x);
        let o = off_lat.poly.eval(x);
        if p.abs() > 1e-9 {
            err += (o - p).abs() / p.abs();
        }
    }
    let latency_curve_error = err / probes as f64;
    Ok(SyntheticValidation {
        cpu_slope_error,
        latency_curve_error,
        equivalent: cpu_slope_error <= tolerance && latency_curve_error <= tolerance,
    })
}

/// Captures a pool's *total* workload as a replayable trace — the
/// "production workload" input to [`SyntheticWorkload::fit`].
///
/// # Errors
///
/// [`PlanError::InsufficientData`] when the pool has no complete windows.
///
/// [`SyntheticWorkload::fit`]: headroom_workload::synthetic::SyntheticWorkload::fit
pub fn capture_trace(
    store: &MetricStore,
    pool: PoolId,
    range: WindowRange,
) -> Result<WorkloadTrace, PlanError> {
    let mut trace = WorkloadTrace::new();
    for w in range.iter() {
        if let Some(rps) = store.pool_window_mean(pool, CounterKind::RequestsPerSec, w) {
            let servers = store.pool_active_servers(pool, w) as f64;
            trace.push(TraceWindow { window: w, rps: rps * servers, class_fractions: Vec::new() });
        }
    }
    if trace.is_empty() {
        return Err(PlanError::InsufficientData { what: "trace capture", needed: 1, got: 0 });
    }
    Ok(trace)
}

/// Replays a workload trace against an *offline* pool — methodology step 3's
/// test rig. The offline pool runs the given build (service model) on
/// identical hardware; the trace drives its load balancer exactly as
/// production traffic would.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineReplay {
    /// The build under test.
    pub model: ServiceModel,
    /// Offline pool size.
    pub pool_size: usize,
    /// Hardware of the offline pool.
    pub generation: HardwareGeneration,
    /// Noise seed (deterministic replays).
    pub seed: u64,
}

impl OfflineReplay {
    /// Creates a replay rig.
    ///
    /// # Panics
    ///
    /// Panics when `pool_size == 0`.
    pub fn new(model: ServiceModel, pool_size: usize, seed: u64) -> Self {
        assert!(pool_size > 0, "offline pool needs at least one server");
        OfflineReplay { model, pool_size, generation: HardwareGeneration::Gen1, seed }
    }

    /// Runs the trace through the offline pool and returns pool-mean
    /// observations directly comparable (via [`validate_synthetic`]) to the
    /// production observations.
    pub fn run(&self, trace: &WorkloadTrace) -> PoolObservations {
        let lb = LoadBalancer::default();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut obs = PoolObservations {
            pool: PoolId(u32::MAX), // offline rig, not a production pool
            ..PoolObservations::default()
        };
        for (i, tw) in trace.windows().iter().enumerate() {
            let shares = lb.distribute(tw.rps, self.pool_size, &mut rng);
            let mut cpu = 0.0;
            let mut lat = 0.0;
            for &share in &shares {
                let (c, _, l95) = self.model.window_metrics_lite(share, self.generation, &mut rng);
                cpu += c;
                lat += l95;
            }
            obs.windows.push(WindowIndex(i as u64));
            obs.rps_per_server.push(tw.rps / self.pool_size as f64);
            obs.cpu_pct.push(cpu / self.pool_size as f64);
            obs.latency_p95_ms.push(lat / self.pool_size as f64);
            obs.active_servers.push(self.pool_size as f64);
        }
        obs
    }
}

/// Per-step comparison of the A/B pools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDelta {
    /// Per-server workload at this step.
    pub rps_per_server: f64,
    /// Baseline mean p95 latency (ms).
    pub baseline_ms: f64,
    /// Candidate mean p95 latency (ms).
    pub candidate_ms: f64,
    /// Candidate − baseline (ms).
    pub delta_ms: f64,
    /// Whether the delta exceeds three standard errors (real, not noise).
    pub significant: bool,
}

/// The offline regression verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct AbReport {
    /// Per-step latency comparison (the Fig. 16 box-pair series).
    pub steps: Vec<StepDelta>,
    /// True when any high-load step shows a significant latency increase.
    pub latency_regression: bool,
    /// Baseline memory growth per step (MB) — positive slope = leak.
    pub baseline_leak_mb_per_step: f64,
    /// Candidate memory growth per step (MB).
    pub candidate_leak_mb_per_step: f64,
    /// Relative change in the workload the pool can carry at the latency
    /// SLO (negative = capacity regression).
    pub capacity_change: f64,
}

impl AbReport {
    /// Whether the change fixed a leak that the baseline had.
    pub fn leak_fixed(&self) -> bool {
        self.baseline_leak_mb_per_step > 1.0
            && self.candidate_leak_mb_per_step < 0.2 * self.baseline_leak_mb_per_step
    }

    /// Whether the change should be blocked from production.
    pub fn should_block(&self) -> bool {
        self.latency_regression || self.capacity_change < -0.05
    }
}

/// Analyses a twin-pool A/B run (step 4's gate).
///
/// `latency_slo_ms` defines the capacity point: the workload at which the
/// fitted latency curve crosses the SLO.
///
/// # Errors
///
/// [`PlanError::InsufficientData`] for runs with fewer than 3 steps.
pub fn analyze_ab(result: &AbRunResult, latency_slo_ms: f64) -> Result<AbReport, PlanError> {
    let n_steps = result.baseline.len().min(result.candidate.len());
    if n_steps < 3 {
        return Err(PlanError::InsufficientData {
            what: "A/B regression analysis",
            needed: 3,
            got: n_steps,
        });
    }

    let mut steps = Vec::with_capacity(n_steps);
    for i in 0..n_steps {
        let b = &result.baseline[i];
        let c = &result.candidate[i];
        let (bm, bs) = mean_std(&b.latency_p95_ms);
        let (cm, cs) = mean_std(&c.latency_p95_ms);
        let nb = b.latency_p95_ms.len().max(1) as f64;
        let nc = c.latency_p95_ms.len().max(1) as f64;
        let se = (bs * bs / nb + cs * cs / nc).sqrt();
        let delta = cm - bm;
        steps.push(StepDelta {
            rps_per_server: b.rps_per_server,
            baseline_ms: bm,
            candidate_ms: cm,
            delta_ms: delta,
            significant: se > 0.0 && delta.abs() > 3.0 * se,
        });
    }

    // A latency regression = significant positive delta in the top half of
    // the load range (low-load deltas are startup noise).
    let latency_regression =
        steps.iter().skip(n_steps / 2).any(|s| s.significant && s.delta_ms > 0.0);

    // Memory leak slopes (MB per step).
    let xs: Vec<f64> = (0..n_steps).map(|i| i as f64).collect();
    let base_mem: Vec<f64> = result.baseline[..n_steps].iter().map(|s| s.memory_mb).collect();
    let cand_mem: Vec<f64> = result.candidate[..n_steps].iter().map(|s| s.memory_mb).collect();
    let baseline_leak = LinearFit::fit(&xs, &base_mem).map(|f| f.slope).unwrap_or(0.0);
    let candidate_leak = LinearFit::fit(&xs, &cand_mem).map(|f| f.slope).unwrap_or(0.0);

    // Capacity at the SLO from fitted latency quadratics.
    let rps: Vec<f64> = steps.iter().map(|s| s.rps_per_server).collect();
    let base_lat: Vec<f64> = steps.iter().map(|s| s.baseline_ms).collect();
    let cand_lat: Vec<f64> = steps.iter().map(|s| s.candidate_ms).collect();
    let capacity_change = match (
        capacity_at_slo(&rps, &base_lat, latency_slo_ms),
        capacity_at_slo(&rps, &cand_lat, latency_slo_ms),
    ) {
        (Some(b), Some(c)) if b > 0.0 => (c - b) / b,
        _ => 0.0,
    };

    Ok(AbReport {
        steps,
        latency_regression,
        baseline_leak_mb_per_step: baseline_leak,
        candidate_leak_mb_per_step: candidate_leak,
        capacity_change,
    })
}

fn mean_std(v: &[f64]) -> (f64, f64) {
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn capacity_at_slo(rps: &[f64], latency: &[f64], slo: f64) -> Option<f64> {
    let fit = Polynomial::fit(rps, latency, 2).ok()?;
    fit.poly.solve_quadratic(slo).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_cluster::regression_lab::RegressionLab;
    use headroom_cluster::ServiceModel;
    use headroom_telemetry::ids::PoolId;
    use headroom_telemetry::time::WindowIndex;
    use headroom_workload::stepped::SteppedLoad;

    fn obs_from_curve(slope: f64, lat: [f64; 3], lo: f64, hi: f64, n: usize) -> PoolObservations {
        let rps: Vec<f64> = (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect();
        PoolObservations {
            pool: PoolId(0),
            windows: (0..n as u64).map(WindowIndex).collect(),
            cpu_pct: rps.iter().map(|r| slope * r + 1.0).collect(),
            latency_p95_ms: rps.iter().map(|r| lat[0] + lat[1] * r + lat[2] * r * r).collect(),
            active_servers: vec![10.0; n],
            rps_per_server: rps,
        }
    }

    #[test]
    fn matching_curves_validate() {
        let prod = obs_from_curve(0.028, [36.68, -0.031, 4.028e-5], 100.0, 500.0, 50);
        let off = obs_from_curve(0.028, [36.68, -0.031, 4.028e-5], 80.0, 550.0, 60);
        let v = validate_synthetic(&prod, &off, 0.05).unwrap();
        assert!(v.equivalent, "{v:?}");
    }

    #[test]
    fn wrong_mix_breaks_validation() {
        let prod = obs_from_curve(0.028, [36.68, -0.031, 4.028e-5], 100.0, 500.0, 50);
        // Offline workload with a heavier mix: steeper CPU and latency.
        let off = obs_from_curve(0.045, [40.0, -0.031, 9.0e-5], 100.0, 500.0, 50);
        let v = validate_synthetic(&prod, &off, 0.05).unwrap();
        assert!(!v.equivalent);
        assert!(v.cpu_slope_error > 0.3);
    }

    fn lab_result(candidate: ServiceModel) -> AbRunResult {
        let baseline = ServiceModel::paper_pool_b().with_leak(2.5);
        let ramp = SteppedLoad::new(50.0, 75.0, 8, 10);
        RegressionLab::new(baseline, candidate, ramp, 11).run()
    }

    #[test]
    fn clean_fix_passes() {
        // The leak is fixed with no other change.
        let report = analyze_ab(&lab_result(ServiceModel::paper_pool_b()), 40.0).unwrap();
        assert!(report.leak_fixed(), "{report:?}");
        assert!(!report.latency_regression);
        assert!(!report.should_block());
        assert!(report.capacity_change.abs() < 0.05);
    }

    #[test]
    fn hidden_latency_regression_detected() {
        // The paper's Fig. 16 case: leak fixed but a high-load latency
        // defect introduced.
        let candidate = ServiceModel::paper_pool_b().with_latency_quadratic_scaled(8.0);
        let report = analyze_ab(&lab_result(candidate), 40.0).unwrap();
        assert!(report.leak_fixed());
        assert!(report.latency_regression, "{report:?}");
        assert!(report.should_block());
        assert!(report.capacity_change < -0.05, "capacity {}", report.capacity_change);
        // Low-load steps look fine; high-load steps diverge.
        assert!(report.steps[0].delta_ms.abs() < 1.5);
        assert!(report.steps.last().unwrap().delta_ms > 5.0);
    }

    #[test]
    fn too_few_steps_rejected() {
        let baseline = ServiceModel::paper_pool_b();
        let ramp = SteppedLoad::new(50.0, 75.0, 2, 5);
        let result = RegressionLab::new(baseline.clone(), baseline, ramp, 1).run();
        assert!(matches!(analyze_ab(&result, 40.0), Err(PlanError::InsufficientData { .. })));
    }

    #[test]
    fn step3_loop_closes_end_to_end() {
        // Production run -> capture trace -> fit synthetic -> generate ->
        // replay offline -> the offline response curves match production.
        use headroom_cluster::scenario::FleetScenario;
        use headroom_workload::synthetic::SyntheticWorkload;

        let production = FleetScenario::small(23).run_days(2.0).unwrap();
        let pool = production.pools()[0];
        let prod_obs =
            PoolObservations::collect(production.store(), pool, production.range()).unwrap();
        let servers = production.fleet().pool(pool).map(|p| p.size()).expect("pool exists");

        let trace = capture_trace(production.store(), pool, production.range()).unwrap();
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        let generated = synth.generate(WindowRange::days(1.0), 77);
        // The generated trace matches production statistically.
        assert!(synth.equivalence(&generated).is_equivalent());

        // Replay it against an offline pool running the same build.
        let replay = OfflineReplay::new(headroom_cluster::ServiceModel::paper_pool_b(), servers, 3);
        let offline_obs = replay.run(&generated);
        let validation = validate_synthetic(&prod_obs, &offline_obs, 0.08).unwrap();
        assert!(validation.equivalent, "{validation:?}");
    }

    #[test]
    fn capture_trace_totals_workload() {
        use headroom_cluster::scenario::FleetScenario;
        let outcome = FleetScenario::small(29).run_days(0.5).unwrap();
        let pool = outcome.pools()[0];
        let trace = capture_trace(outcome.store(), pool, outcome.range()).unwrap();
        assert_eq!(trace.len(), 360);
        let obs = PoolObservations::collect(outcome.store(), pool, outcome.range()).unwrap();
        // Total trace workload equals rps/server x active servers.
        let expected = obs.rps_per_server[0] * obs.active_servers[0];
        assert!((trace.windows()[0].rps - expected).abs() < 1e-6);
    }

    #[test]
    fn capture_trace_empty_pool_errors() {
        let store = MetricStore::new();
        assert!(matches!(
            capture_trace(&store, PoolId(7), WindowRange::days(1.0)),
            Err(PlanError::InsufficientData { .. })
        ));
    }

    #[test]
    fn offline_replay_is_deterministic() {
        let trace: WorkloadTrace = (0..50u64)
            .map(|w| TraceWindow {
                window: WindowIndex(w),
                rps: 2000.0 + w as f64 * 10.0,
                class_fractions: Vec::new(),
            })
            .collect();
        let rig = OfflineReplay::new(headroom_cluster::ServiceModel::paper_pool_d(), 8, 5);
        assert_eq!(rig.run(&trace), rig.run(&trace));
    }

    #[test]
    fn identical_models_produce_no_significant_deltas() {
        let report =
            analyze_ab(&lab_result(ServiceModel::paper_pool_b().with_leak(2.5)), 40.0).unwrap();
        // Identical models (both leaky): deltas are exactly zero.
        for s in &report.steps {
            assert_eq!(s.delta_ms, 0.0);
            assert!(!s.significant);
        }
        assert!(!report.leak_fixed());
    }
}
