//! The end-to-end planning pipeline (paper Fig. 1).
//!
//! [`CapacityPlanner`] runs the online half of the methodology over recorded
//! telemetry, pool by pool:
//!
//! 1. **Measure** — validate the workload metric (iterating to per-table
//!    splits when the combined metric is noisy) and split the pool into
//!    server groups when the (p5, p95) scatter shows distinct populations;
//! 2. **Optimize** — fit the response curves and compute the savings row.
//!
//! Pools whose metrics never validate are reported in `skipped` with the
//! error — mirroring the paper's finding that 45% of pools needed their
//! background workloads modelled out before planning could proceed.

use headroom_telemetry::availability::AvailabilityLog;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::WindowRange;

use crate::error::PlanError;
use crate::grouping::{split_pool_groups, GroupSplit};
use crate::metric_validation::{validation_loop, CounterScreen, DEFAULT_R2_THRESHOLD};
use crate::optimizer::{optimize_pool, PoolSavings, SavingsReport};
use crate::slo::QosRequirement;

/// One pool's plan: validation evidence, grouping and savings.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolPlan {
    /// The pool.
    pub pool: PoolId,
    /// The accepted workload-metric screen.
    pub metric: CounterScreen,
    /// The server-group split.
    pub groups: GroupSplit,
    /// The savings row.
    pub savings: PoolSavings,
}

/// The full planning report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanReport {
    /// Pools successfully planned.
    pub pools: Vec<PoolPlan>,
    /// Pools that could not be planned, with the reason.
    pub skipped: Vec<(PoolId, PlanError)>,
}

impl PlanReport {
    /// The savings rows as an aggregate report.
    pub fn savings(&self) -> SavingsReport {
        SavingsReport { rows: self.pools.iter().map(|p| p.savings.clone()).collect() }
    }
}

/// End-to-end planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPlanner {
    /// Minimum R² for metric acceptance.
    pub r2_threshold: f64,
    /// Days of availability history to average.
    pub availability_days: u64,
}

impl Default for CapacityPlanner {
    fn default() -> Self {
        CapacityPlanner { r2_threshold: DEFAULT_R2_THRESHOLD, availability_days: 14 }
    }
}

impl CapacityPlanner {
    /// A planner with default thresholds.
    pub fn new() -> Self {
        CapacityPlanner::default()
    }

    /// Plans one pool.
    ///
    /// # Errors
    ///
    /// Propagates metric-validation, grouping and optimization failures.
    pub fn plan_pool(
        &self,
        store: &MetricStore,
        availability: &AvailabilityLog,
        pool: PoolId,
        range: WindowRange,
        qos: &QosRequirement,
    ) -> Result<PoolPlan, PlanError> {
        let metric = validation_loop(store, pool, range, self.r2_threshold)?;
        let groups = split_pool_groups(store, pool, range)?;
        let savings = optimize_pool(store, availability, pool, range, qos, self.availability_days)?;
        Ok(PoolPlan { pool, metric, groups, savings })
    }

    /// Plans every pool in the store, resolving each pool's QoS requirement
    /// through `qos_for`.
    pub fn plan<F>(
        &self,
        store: &MetricStore,
        availability: &AvailabilityLog,
        range: WindowRange,
        qos_for: F,
    ) -> PlanReport
    where
        F: Fn(PoolId) -> QosRequirement,
    {
        let mut report = PlanReport::default();
        for pool in store.pools() {
            match self.plan_pool(store, availability, pool, range, &qos_for(pool)) {
                Ok(plan) => report.pools.push(plan),
                Err(e) => report.skipped.push((pool, e)),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_cluster::catalog::MicroserviceKind;
    use headroom_cluster::scenario::FleetScenario;

    #[test]
    fn plans_clean_scenario_end_to_end() {
        let outcome = FleetScenario::small(11).run_days(2.0).unwrap();
        let planner = CapacityPlanner { availability_days: 2, ..CapacityPlanner::new() };
        let report =
            planner.plan(outcome.store(), outcome.availability(), outcome.range(), |pool| {
                // Pools 0..3 run service B (SLO 32.5), 3..6 service D (58).
                if pool.0 < 3 {
                    QosRequirement::latency(32.5).with_cpu_ceiling(90.0)
                } else {
                    QosRequirement::latency(58.0).with_cpu_ceiling(90.0)
                }
            });
        assert!(
            report.pools.len() >= 4,
            "most pools should plan cleanly; skipped: {:?}",
            report.skipped
        );
        let savings = report.savings();
        assert!(savings.total_savings() > 0.05, "fleet has headroom to find");
        for plan in &report.pools {
            assert!(plan.metric.r_squared >= 0.9);
            assert_eq!(plan.groups.groups.len(), 1, "homogeneous pools stay whole");
        }
    }

    #[test]
    fn mixed_hardware_pool_is_split() {
        let outcome =
            FleetScenario::single_service(MicroserviceKind::I, 1, 30, 13).run_days(1.0).unwrap();
        let planner = CapacityPlanner { availability_days: 1, ..CapacityPlanner::new() };
        let pool = outcome.pools()[0];
        let plan = planner
            .plan_pool(
                outcome.store(),
                outcome.availability(),
                pool,
                outcome.range(),
                &QosRequirement::latency(24.0).with_cpu_ceiling(90.0),
            )
            .unwrap();
        assert_eq!(plan.groups.groups.len(), 2, "two hardware generations detected");
    }

    #[test]
    fn unplannable_pool_lands_in_skipped() {
        let outcome = FleetScenario::small(17).run_days(0.5).unwrap();
        let planner = CapacityPlanner { r2_threshold: 1.1, availability_days: 1 };
        // Impossible R² bar: everything is skipped, nothing panics.
        let report = planner.plan(outcome.store(), outcome.availability(), outcome.range(), |_| {
            QosRequirement::latency(30.0)
        });
        assert!(report.pools.is_empty());
        assert_eq!(report.skipped.len(), 6);
    }
}
