//! Black-box capacity headroom planning — the primary contribution of
//! *"Right-sizing Server Capacity Headroom for Global Online Services"*
//! (Verbowski et al., ICDCS 2018).
//!
//! The methodology treats every micro-service pool as a black box described
//! only by three externally measured signals — workload, resource usage, and
//! QoS — and proceeds in four steps (paper Fig. 1):
//!
//! 1. **Measure** ([`metric_validation`], [`grouping`]) — confirm the
//!    workload metric correlates linearly with the limiting resource, and
//!    auto-group servers with the same response profile;
//! 2. **Optimize** ([`partitions`], [`curves`], [`rsm`], [`natural`],
//!    [`forecast`], [`optimizer`]) — fit the workload→CPU line and the
//!    workload→latency quadratic, exploit natural experiments, run RSM
//!    server-reduction experiments, and compute the minimum pool size
//!    meeting the QoS requirement;
//! 3. **Model** ([`offline`]) — validate a synthetic replayable workload
//!    against production response curves;
//! 4. **Validate** ([`offline`]) — A/B-test every change offline under
//!    stepped load before deployment.
//!
//! [`pipeline::CapacityPlanner`] wires the steps together end to end.
//!
//! # Example
//!
//! ```
//! use headroom_cluster::scenario::FleetScenario;
//! use headroom_core::curves::{CpuModel, PoolObservations};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let outcome = FleetScenario::small(42).run_days(1.0)?;
//! let pool = outcome.pools()[0];
//! let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
//! let cpu = CpuModel::fit(&obs)?;
//! assert!(cpu.fit.r_squared > 0.9, "CPU is linear in workload");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curves;
pub mod disaster;
pub mod error;
pub mod forecast;
pub mod grouping;
pub mod growth;
pub mod metric_validation;
pub mod natural;
pub mod offline;
pub mod optimizer;
pub mod partitions;
pub mod pipeline;
pub mod report;
pub mod rsm;
pub mod sizing;
pub mod slo;

pub use error::PlanError;
pub use forecast::CapacityForecaster;
pub use pipeline::CapacityPlanner;
pub use sizing::{PoolSizing, SizingPlanner};
pub use slo::QosRequirement;
