//! Total-load partitioning (§II-B2).
//!
//! The RSM analysis "controls for total pool workload since we are modeling
//! how pool QoS changes as a function of the number of servers processing a
//! given total workload". Observations are partitioned into bands of total
//! workload r_idj; within each band, the time points t_idj contribute
//! `(server count n_idjk, latency l_idjk)` pairs to a per-partition
//! quadratic fit (Eq. 1).

use headroom_telemetry::time::WindowIndex;

use crate::curves::{LatencyModel, PoolObservations};
use crate::error::PlanError;

/// One observation inside a load partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionObservation {
    /// The time point (the `k` in t_idjk).
    pub window: WindowIndex,
    /// Servers processing traffic at that time (n_idjk).
    pub servers: f64,
    /// Observed pool latency (l_idjk).
    pub latency_ms: f64,
}

/// A band of total pool workload with its observations.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPartition {
    /// Partition index `j`.
    pub index: usize,
    /// Inclusive lower bound of total workload (RPS).
    pub lo: f64,
    /// Exclusive upper bound of total workload (RPS).
    pub hi: f64,
    /// The member observations.
    pub observations: Vec<PartitionObservation>,
}

impl LoadPartition {
    /// Fits the Eq. 1 quadratic `latency ≈ a₂n² + a₁n + a₀` over this
    /// partition's `(servers, latency)` pairs with robust regression.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors (e.g. too few observations).
    pub fn fit_latency_vs_servers(&self, seed: u64) -> Result<LatencyModel, PlanError> {
        let xs: Vec<f64> = self.observations.iter().map(|o| o.servers).collect();
        let ys: Vec<f64> = self.observations.iter().map(|o| o.latency_ms).collect();
        LatencyModel::fit_xy(&xs, &ys, seed)
    }

    /// Mean observed latency in this partition.
    pub fn mean_latency(&self) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        self.observations.iter().map(|o| o.latency_ms).sum::<f64>() / self.observations.len() as f64
    }
}

/// Partitions observations into `j` equal-count bands of total workload.
///
/// Quantile (equal-count) banding is what lets "the first order fit values
/// not be overwhelmed by noise": each band holds the same number of
/// observations regardless of how demand is distributed.
///
/// # Errors
///
/// - [`PlanError::InvalidParameter`] when `j == 0`.
/// - [`PlanError::InsufficientData`] when fewer than `2·j` observations.
pub fn partition_by_total_load(
    obs: &PoolObservations,
    j: usize,
) -> Result<Vec<LoadPartition>, PlanError> {
    if j == 0 {
        return Err(PlanError::InvalidParameter("partition count must be positive"));
    }
    let n = obs.len();
    if n < 2 * j {
        return Err(PlanError::InsufficientData {
            what: "load partitioning",
            needed: 2 * j,
            got: n,
        });
    }
    let totals = obs.total_rps();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| totals[a].partial_cmp(&totals[b]).expect("totals are finite"));

    let mut partitions = Vec::with_capacity(j);
    for p in 0..j {
        let lo_idx = p * n / j;
        let hi_idx = ((p + 1) * n / j).min(n);
        let members = &order[lo_idx..hi_idx];
        if members.is_empty() {
            continue;
        }
        let observations: Vec<PartitionObservation> = members
            .iter()
            .map(|&i| PartitionObservation {
                window: obs.windows[i],
                servers: obs.active_servers[i],
                latency_ms: obs.latency_p95_ms[i],
            })
            .collect();
        let lo = totals[members[0]];
        let hi = totals[*members.last().expect("non-empty")];
        partitions.push(LoadPartition { index: p, lo, hi, observations });
    }
    Ok(partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::ids::PoolId;

    fn obs_with(totals: &[f64], servers: &[f64], latencies: &[f64]) -> PoolObservations {
        let n = totals.len();
        PoolObservations {
            pool: PoolId(0),
            windows: (0..n as u64).map(WindowIndex).collect(),
            rps_per_server: totals.iter().zip(servers).map(|(t, s)| t / s.max(1.0)).collect(),
            cpu_pct: vec![10.0; n],
            latency_p95_ms: latencies.to_vec(),
            active_servers: servers.to_vec(),
        }
    }

    #[test]
    fn partitions_have_equal_counts() {
        let totals: Vec<f64> = (0..90).map(|i| 1000.0 + i as f64 * 10.0).collect();
        let servers = vec![10.0; 90];
        let lat = vec![20.0; 90];
        let obs = obs_with(&totals, &servers, &lat);
        let parts = partition_by_total_load(&obs, 3).unwrap();
        assert_eq!(parts.len(), 3);
        for p in &parts {
            assert_eq!(p.observations.len(), 30);
        }
        // Boundaries ascend.
        assert!(parts[0].hi <= parts[1].lo + 1e-9);
        assert!(parts[1].hi <= parts[2].lo + 1e-9);
    }

    #[test]
    fn bands_are_by_total_not_order() {
        // Interleaved totals: partitioning must sort them.
        let totals = vec![900.0, 100.0, 800.0, 200.0, 700.0, 300.0, 600.0, 400.0];
        let servers = vec![10.0; 8];
        let lat = vec![20.0; 8];
        let obs = obs_with(&totals, &servers, &lat);
        let parts = partition_by_total_load(&obs, 2).unwrap();
        assert!(parts[0].observations.iter().all(|o| {
            let i = o.window.0 as usize;
            totals[i] <= 400.0
        }));
    }

    #[test]
    fn fit_recovers_quadratic_in_servers() {
        // Latency falls as 1/n-ish; generate from a quadratic in n directly.
        let servers: Vec<f64> = (0..60).map(|i| 10.0 + (i % 20) as f64).collect();
        let totals = vec![5000.0; 60];
        let lat: Vec<f64> = servers.iter().map(|n| 0.05 * n * n - 3.0 * n + 80.0).collect();
        let obs = obs_with(&totals, &servers, &lat);
        let parts = partition_by_total_load(&obs, 1).unwrap();
        let fit = parts[0].fit_latency_vs_servers(7).unwrap();
        assert!((fit.poly.coeffs()[2] - 0.05).abs() < 1e-6);
        assert!((fit.poly.coeffs()[1] + 3.0).abs() < 1e-4);
    }

    #[test]
    fn zero_partitions_rejected() {
        let obs = obs_with(&[1.0, 2.0], &[1.0, 1.0], &[1.0, 1.0]);
        assert!(matches!(partition_by_total_load(&obs, 0), Err(PlanError::InvalidParameter(_))));
    }

    #[test]
    fn too_few_observations_rejected() {
        let obs = obs_with(&[1.0, 2.0, 3.0], &[1.0; 3], &[1.0; 3]);
        assert!(matches!(
            partition_by_total_load(&obs, 2),
            Err(PlanError::InsufficientData { .. })
        ));
    }

    #[test]
    fn mean_latency() {
        let obs = obs_with(&[1.0, 2.0, 3.0, 4.0], &[1.0; 4], &[10.0, 20.0, 30.0, 40.0]);
        let parts = partition_by_total_load(&obs, 2).unwrap();
        assert_eq!(parts[0].mean_latency(), 15.0);
        assert_eq!(parts[1].mean_latency(), 35.0);
    }
}
