//! Workload-metric validation (methodology step 1, §II-A1).
//!
//! "We assume proper workload metrics have a tight linear correlation
//! between units of work and increases in their primary limiting resource…
//! If the metric does not correlate well with the limiting resource then we
//! likely failed to accurately capture the resources used to process a
//! request. We use this validation in a feedback loop, until an accurate
//! result is obtained."
//!
//! Two production failure modes are reproduced and detected here:
//!
//! - a *mixed-table* metric (the memcached-like service): splitting the
//!   workload per table restores linearity ([`validate_with_split`]);
//! - *background spikes* (log uploads): flagged as anomalous windows whose
//!   removal restores linearity ([`screen_counter`] reports outlier counts).

use headroom_stats::{LinearFit, StatsError};
use headroom_telemetry::counter::{CounterKind, WorkloadTag};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::WindowRange;

use crate::error::PlanError;

/// Default R² above which a workload metric is accepted as linear.
pub const DEFAULT_R2_THRESHOLD: f64 = 0.90;

/// Verdict for one workload-metric/resource pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricVerdict {
    /// Tight linear relationship — the metric isolates the workload.
    Linear,
    /// Correlated but noisy — probably contaminated by another workload.
    Noisy,
    /// No meaningful correlation — wrong metric or non-limiting resource.
    Uncorrelated,
}

/// Result of screening one counter against the workload metric.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterScreen {
    /// The resource counter screened.
    pub counter: CounterKind,
    /// OLS fit of resource vs workload (when estimable).
    pub fit: Option<LinearFit>,
    /// R² of that fit (0 when not estimable).
    pub r_squared: f64,
    /// Verdict at the default thresholds.
    pub verdict: MetricVerdict,
    /// Number of windows flagged as anomalous (beyond 4σ of the fit) —
    /// background-task spikes land here.
    pub anomalous_windows: usize,
}

/// Screens a resource counter against the pool's workload metric.
///
/// # Errors
///
/// [`PlanError::InsufficientData`] when fewer than 8 paired windows exist.
pub fn screen_counter(
    store: &MetricStore,
    pool: PoolId,
    counter: CounterKind,
    range: WindowRange,
) -> Result<CounterScreen, PlanError> {
    let pairs = store.pool_paired_observations(pool, CounterKind::RequestsPerSec, counter, range);
    if pairs.len() < 8 {
        return Err(PlanError::InsufficientData {
            what: "counter screening",
            needed: 8,
            got: pairs.len(),
        });
    }
    let xs: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
    let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
    Ok(screen_xy(counter, &xs, &ys))
}

/// Screens explicit x/y series (used for per-table screens).
pub fn screen_xy(counter: CounterKind, xs: &[f64], ys: &[f64]) -> CounterScreen {
    // A (nearly) constant counter carries no workload signal: static queues
    // and error counters are "more suitable for anomaly detection" (§II-A1).
    let y_mean = ys.iter().sum::<f64>() / ys.len().max(1) as f64;
    let y_spread = ys.iter().map(|y| (y - y_mean).abs()).fold(0.0f64, f64::max);
    if y_spread <= 1e-9 * (1.0 + y_mean.abs()) {
        return CounterScreen {
            counter,
            fit: None,
            r_squared: 0.0,
            verdict: MetricVerdict::Uncorrelated,
            anomalous_windows: 0,
        };
    }
    match LinearFit::fit(xs, ys) {
        Ok(fit) => {
            let residuals = fit.residuals(xs, ys).unwrap_or_default();
            let std = {
                let n = residuals.len().max(1) as f64;
                (residuals.iter().map(|r| r * r).sum::<f64>() / n).sqrt()
            };
            let anomalous = if std > 0.0 {
                residuals.iter().filter(|r| r.abs() > 4.0 * std).count()
            } else {
                0
            };
            let verdict = if fit.r_squared >= DEFAULT_R2_THRESHOLD {
                MetricVerdict::Linear
            } else if fit.r_squared >= 0.3 {
                MetricVerdict::Noisy
            } else {
                MetricVerdict::Uncorrelated
            };
            CounterScreen {
                counter,
                r_squared: fit.r_squared,
                fit: Some(fit),
                verdict,
                anomalous_windows: anomalous,
            }
        }
        Err(StatsError::Singular) | Err(StatsError::InsufficientData { .. }) => CounterScreen {
            counter,
            fit: None,
            r_squared: 0.0,
            verdict: MetricVerdict::Uncorrelated,
            anomalous_windows: 0,
        },
        Err(_) => CounterScreen {
            counter,
            fit: None,
            r_squared: 0.0,
            verdict: MetricVerdict::Uncorrelated,
            anomalous_windows: 0,
        },
    }
}

/// Screens every Fig. 2 resource counter of a pool — the "which resource is
/// limiting, and is our workload metric sound?" sweep.
///
/// # Errors
///
/// Propagates [`screen_counter`] errors for the CPU counter; other counters
/// missing data are reported as `Uncorrelated` rather than failing the sweep.
pub fn screen_all_counters(
    store: &MetricStore,
    pool: PoolId,
    range: WindowRange,
) -> Result<Vec<CounterScreen>, PlanError> {
    let mut screens = Vec::new();
    for counter in CounterKind::FIG2_RESOURCES {
        match screen_counter(store, pool, counter, range) {
            Ok(s) => screens.push(s),
            Err(PlanError::InsufficientData { .. }) if counter != CounterKind::CpuPercent => {
                screens.push(CounterScreen {
                    counter,
                    fit: None,
                    r_squared: 0.0,
                    verdict: MetricVerdict::Uncorrelated,
                    anomalous_windows: 0,
                });
            }
            Err(e) => return Err(e),
        }
    }
    Ok(screens)
}

/// Outcome of the §II-A1 split-by-workload validation.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitValidation {
    /// Screen of the combined (whole-server) CPU against total RPS.
    pub combined: CounterScreen,
    /// Screens of each per-table CPU against that table's RPS.
    pub per_table: Vec<CounterScreen>,
}

impl SplitValidation {
    /// Whether splitting rescued an otherwise noisy metric: the combined
    /// screen fails the linearity bar but every per-table screen passes.
    pub fn split_fixes_metric(&self) -> bool {
        self.combined.verdict != MetricVerdict::Linear
            && !self.per_table.is_empty()
            && self.per_table.iter().all(|s| s.verdict == MetricVerdict::Linear)
    }
}

/// Validates a pool's CPU metric both combined and split per table.
///
/// # Errors
///
/// [`PlanError::InsufficientData`] when the pool has too few windows, or no
/// tagged per-table series exist.
pub fn validate_with_split(
    store: &MetricStore,
    pool: PoolId,
    range: WindowRange,
) -> Result<SplitValidation, PlanError> {
    let combined = screen_counter(store, pool, CounterKind::CpuPercent, range)?;

    let mut per_table = Vec::new();
    for table in 0..8u8 {
        let tag = WorkloadTag::Workload(table);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for w in range.iter() {
            let rps = store.pool_window_mean_tagged(pool, CounterKind::RequestsPerSec, tag, w);
            let cpu = store.pool_window_mean_tagged(pool, CounterKind::CpuPercent, tag, w);
            if let (Some(r), Some(c)) = (rps, cpu) {
                xs.push(r);
                ys.push(c);
            }
        }
        if xs.len() < 8 {
            break;
        }
        per_table.push(screen_xy(CounterKind::CpuPercent, &xs, &ys));
    }
    if per_table.is_empty() {
        return Err(PlanError::InsufficientData {
            what: "per-table tagged series",
            needed: 1,
            got: 0,
        });
    }
    Ok(SplitValidation { combined, per_table })
}

/// Runs the full validation loop on a pool: accept the whole-server metric
/// if linear, otherwise try the per-table split, otherwise report failure.
///
/// Returns the screen that was finally accepted.
///
/// # Errors
///
/// [`PlanError::NoLinearCorrelation`] when no metric (combined or split)
/// reaches `r2_threshold`.
pub fn validation_loop(
    store: &MetricStore,
    pool: PoolId,
    range: WindowRange,
    r2_threshold: f64,
) -> Result<CounterScreen, PlanError> {
    let combined = screen_counter(store, pool, CounterKind::CpuPercent, range)?;
    if combined.r_squared >= r2_threshold {
        return Ok(combined);
    }
    // Iterate: try the per-table split.
    if let Ok(split) = validate_with_split(store, pool, range) {
        if let Some(best) = split
            .per_table
            .iter()
            .max_by(|a, b| a.r_squared.partial_cmp(&b.r_squared).expect("finite r2"))
        {
            if best.r_squared >= r2_threshold
                && split.per_table.iter().all(|s| s.r_squared >= r2_threshold)
            {
                return Ok(best.clone());
            }
        }
    }
    Err(PlanError::NoLinearCorrelation { r_squared: combined.r_squared, required: r2_threshold })
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::ids::{DatacenterId, ServerId};
    use headroom_telemetry::time::WindowIndex;

    fn range(n: u64) -> WindowRange {
        WindowRange::new(WindowIndex(0), WindowIndex(n))
    }

    /// Store with a clean linear CPU counter and a noisy paging counter.
    fn linear_store(n: u64) -> (MetricStore, PoolId) {
        let mut store = MetricStore::new();
        let pool = PoolId(0);
        store.register_server(ServerId(0), pool, DatacenterId(0));
        for w in 0..n {
            let rps = 50.0 + (w as f64 * 13.0) % 400.0;
            store.record(ServerId(0), CounterKind::RequestsPerSec, WindowIndex(w), rps);
            store.record(ServerId(0), CounterKind::CpuPercent, WindowIndex(w), 0.03 * rps + 1.0);
            // Paging unrelated to workload.
            store.record(
                ServerId(0),
                CounterKind::MemoryPagesPerSec,
                WindowIndex(w),
                4000.0 + ((w * 7919) % 997) as f64 * 8.0,
            );
            // Disk queue static.
            store.record(ServerId(0), CounterKind::DiskQueueLength, WindowIndex(w), 1.0);
        }
        (store, pool)
    }

    #[test]
    fn cpu_screens_linear() {
        let (store, pool) = linear_store(200);
        let s = screen_counter(&store, pool, CounterKind::CpuPercent, range(200)).unwrap();
        assert_eq!(s.verdict, MetricVerdict::Linear);
        assert!(s.r_squared > 0.99);
    }

    #[test]
    fn paging_screens_uncorrelated_or_noisy() {
        let (store, pool) = linear_store(200);
        let s = screen_counter(&store, pool, CounterKind::MemoryPagesPerSec, range(200)).unwrap();
        assert_ne!(s.verdict, MetricVerdict::Linear);
    }

    #[test]
    fn static_counter_is_uncorrelated() {
        let (store, pool) = linear_store(100);
        let s = screen_counter(&store, pool, CounterKind::DiskQueueLength, range(100)).unwrap();
        assert_eq!(s.verdict, MetricVerdict::Uncorrelated);
        assert!(s.fit.is_none());
    }

    #[test]
    fn spike_windows_flagged_anomalous() {
        let (mut store, pool) = linear_store(200);
        // Log-upload spikes in a few windows.
        for w in [20u64, 80, 140] {
            let rps = 50.0 + (w as f64 * 13.0) % 400.0;
            store.record(
                ServerId(0),
                CounterKind::CpuPercent,
                WindowIndex(w),
                0.03 * rps + 1.0 + 30.0,
            );
        }
        let s = screen_counter(&store, pool, CounterKind::CpuPercent, range(200)).unwrap();
        assert_eq!(s.anomalous_windows, 3);
    }

    #[test]
    fn too_few_windows_rejected() {
        let (store, pool) = linear_store(4);
        assert!(matches!(
            screen_counter(&store, pool, CounterKind::CpuPercent, range(4)),
            Err(PlanError::InsufficientData { .. })
        ));
    }

    #[test]
    fn screen_all_covers_fig2() {
        let (store, pool) = linear_store(100);
        let screens = screen_all_counters(&store, pool, range(100)).unwrap();
        assert_eq!(screens.len(), 6);
        let cpu = screens.iter().find(|s| s.counter == CounterKind::CpuPercent).unwrap();
        assert_eq!(cpu.verdict, MetricVerdict::Linear);
    }

    /// Store reproducing the two-table memcached case: combined CPU is
    /// noisy because the mix shifts; per-table CPU is clean.
    fn mixed_table_store(n: u64) -> (MetricStore, PoolId) {
        let mut store = MetricStore::new();
        let pool = PoolId(0);
        store.register_server(ServerId(0), pool, DatacenterId(0));
        for w in 0..n {
            let total_rps = 200.0 + (w as f64 * 17.0) % 300.0;
            // Mix oscillates between 30% and 70% table-0.
            let mix = 0.5 + 0.2 * ((w as f64) * 0.7).sin();
            let t0 = total_rps * mix;
            let t1 = total_rps * (1.0 - mix);
            let cpu0 = t0 * 0.02;
            let cpu1 = t1 * 0.20;
            store.record(ServerId(0), CounterKind::RequestsPerSec, WindowIndex(w), total_rps);
            store.record(ServerId(0), CounterKind::CpuPercent, WindowIndex(w), cpu0 + cpu1 + 1.0);
            store.record_tagged(
                ServerId(0),
                CounterKind::RequestsPerSec,
                WorkloadTag::Workload(0),
                WindowIndex(w),
                t0,
            );
            store.record_tagged(
                ServerId(0),
                CounterKind::CpuPercent,
                WorkloadTag::Workload(0),
                WindowIndex(w),
                cpu0,
            );
            store.record_tagged(
                ServerId(0),
                CounterKind::RequestsPerSec,
                WorkloadTag::Workload(1),
                WindowIndex(w),
                t1,
            );
            store.record_tagged(
                ServerId(0),
                CounterKind::CpuPercent,
                WorkloadTag::Workload(1),
                WindowIndex(w),
                cpu1,
            );
        }
        (store, pool)
    }

    #[test]
    fn split_fixes_mixed_table_metric() {
        let (store, pool) = mixed_table_store(300);
        let split = validate_with_split(&store, pool, range(300)).unwrap();
        assert_ne!(split.combined.verdict, MetricVerdict::Linear, "combined must look noisy");
        assert_eq!(split.per_table.len(), 2);
        for t in &split.per_table {
            assert_eq!(t.verdict, MetricVerdict::Linear);
        }
        assert!(split.split_fixes_metric());
    }

    #[test]
    fn validation_loop_accepts_clean_metric() {
        let (store, pool) = linear_store(100);
        let screen = validation_loop(&store, pool, range(100), DEFAULT_R2_THRESHOLD).unwrap();
        assert_eq!(screen.verdict, MetricVerdict::Linear);
    }

    #[test]
    fn validation_loop_falls_back_to_split() {
        let (store, pool) = mixed_table_store(300);
        let screen = validation_loop(&store, pool, range(300), DEFAULT_R2_THRESHOLD).unwrap();
        assert!(screen.r_squared >= DEFAULT_R2_THRESHOLD);
    }

    #[test]
    fn validation_loop_reports_failure() {
        // Pure noise CPU, no tagged series to fall back on.
        let mut store = MetricStore::new();
        let pool = PoolId(0);
        store.register_server(ServerId(0), pool, DatacenterId(0));
        for w in 0..100u64 {
            store.record(
                ServerId(0),
                CounterKind::RequestsPerSec,
                WindowIndex(w),
                (w % 10) as f64 * 50.0,
            );
            store.record(
                ServerId(0),
                CounterKind::CpuPercent,
                WindowIndex(w),
                ((w * 7919) % 997) as f64 / 10.0,
            );
        }
        let err = validation_loop(&store, pool, range(100), DEFAULT_R2_THRESHOLD).unwrap_err();
        assert!(matches!(err, PlanError::NoLinearCorrelation { .. }));
    }
}
