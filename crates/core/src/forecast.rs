//! Capacity forecasting (§III-A).
//!
//! A [`CapacityForecaster`] bundles the two fitted response curves and
//! answers the paper's two questions:
//!
//! - *forward*: "what will CPU and latency be if we remove k% of servers?"
//!   (the pool B/D experiments: predicted 16.5% CPU / 31.5 ms, measured
//!   17.4% / 30.9 ms);
//! - *inverse*: "how few servers can meet the QoS requirement at peak?"
//!   (the Table IV optimizer).

use crate::curves::{CpuModel, LatencyModel, PoolObservations};
use crate::error::PlanError;
use crate::slo::QosRequirement;

/// Forecast of a pool's state after a capacity change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionForecast {
    /// Per-server workload after the change (RPS).
    pub rps_per_server: f64,
    /// Forecast mean CPU percent.
    pub cpu_pct: f64,
    /// Forecast p95 latency (ms).
    pub latency_p95_ms: f64,
}

/// Forecast accuracy against a measured value (the Tables in §III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastAccuracy {
    /// What the model predicted.
    pub predicted: f64,
    /// What was measured after the change.
    pub measured: f64,
}

impl ForecastAccuracy {
    /// Relative error |predicted − measured| / |measured|.
    pub fn relative_error(&self) -> f64 {
        if self.measured == 0.0 {
            return if self.predicted == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (self.predicted - self.measured).abs() / self.measured.abs()
    }
}

/// The fitted workload→CPU and workload→latency models for one pool (or
/// server group).
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityForecaster {
    /// Linear CPU response.
    pub cpu: CpuModel,
    /// Quadratic latency response.
    pub latency: LatencyModel,
}

impl CapacityForecaster {
    /// Fits both models from pool observations.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn fit(obs: &PoolObservations) -> Result<Self, PlanError> {
        Ok(CapacityForecaster { cpu: CpuModel::fit(obs)?, latency: LatencyModel::fit(obs)? })
    }

    /// Forecast at an explicit per-server workload.
    pub fn at_rps(&self, rps_per_server: f64) -> ReductionForecast {
        ReductionForecast {
            rps_per_server,
            cpu_pct: self.cpu.predict(rps_per_server),
            latency_p95_ms: self.latency.predict(rps_per_server),
        }
    }

    /// Forecast after removing `fraction` of servers while total workload
    /// stays constant: per-server workload scales by `1 / (1 - fraction)`.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidParameter`] unless `0 <= fraction < 1`.
    pub fn after_reduction(
        &self,
        current_rps_per_server: f64,
        fraction: f64,
    ) -> Result<ReductionForecast, PlanError> {
        if !(0.0..1.0).contains(&fraction) {
            return Err(PlanError::InvalidParameter("reduction fraction must be within [0, 1)"));
        }
        Ok(self.at_rps(current_rps_per_server / (1.0 - fraction)))
    }

    /// The highest per-server workload satisfying `qos` (both the latency
    /// SLO and the CPU guardrail).
    ///
    /// # Errors
    ///
    /// - [`PlanError::InvalidParameter`] when the latency SLO is below the
    ///   curve's floor (unreachable).
    /// - Propagated singular-fit errors.
    pub fn max_rps_per_server(&self, qos: &QosRequirement) -> Result<f64, PlanError> {
        let rps_latency = self.latency.rps_at_latency(qos.latency_p95_ms)?;
        let rps_cpu = self.cpu.rps_at_cpu(qos.cpu_ceiling_pct)?;
        let max = rps_latency.min(rps_cpu);
        if max <= 0.0 {
            return Err(PlanError::InvalidParameter("QoS unreachable at any positive workload"));
        }
        Ok(max)
    }

    /// Minimum servers needed to process `peak_total_rps` within `qos`,
    /// with `failure_headroom` extra fractional capacity (e.g. `0.0` for
    /// the theoretical minimum, `0.05` to ride out unplanned failures).
    ///
    /// # Errors
    ///
    /// Propagates [`CapacityForecaster::max_rps_per_server`] errors; also
    /// rejects non-finite or negative peaks.
    pub fn min_servers(
        &self,
        peak_total_rps: f64,
        qos: &QosRequirement,
        failure_headroom: f64,
    ) -> Result<usize, PlanError> {
        if !peak_total_rps.is_finite() || peak_total_rps < 0.0 {
            return Err(PlanError::InvalidParameter("peak workload must be non-negative"));
        }
        if !(0.0..1.0).contains(&failure_headroom) {
            return Err(PlanError::InvalidParameter("failure headroom must be within [0, 1)"));
        }
        let per_server = self.max_rps_per_server(qos)?;
        let raw = peak_total_rps / per_server;
        Ok(((raw / (1.0 - failure_headroom)).ceil() as usize).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_stats::{LinearFit, Polynomial};

    /// The paper's pool-B forecaster, constructed from published fits.
    fn pool_b_forecaster() -> CapacityForecaster {
        CapacityForecaster {
            cpu: CpuModel {
                fit: LinearFit { slope: 0.028, intercept: 1.37, r_squared: 0.984, n: 1221 },
            },
            latency: LatencyModel {
                poly: Polynomial::new(vec![36.68, -0.031, 4.028e-5]),
                r_squared: 0.79,
                n: 1221,
                inlier_fraction: 1.0,
            },
        }
    }

    /// The paper's pool-D forecaster.
    fn pool_d_forecaster() -> CapacityForecaster {
        CapacityForecaster {
            cpu: CpuModel {
                fit: LinearFit { slope: 0.0916, intercept: 5.006, r_squared: 0.94, n: 576 },
            },
            latency: LatencyModel {
                poly: Polynomial::new(vec![86.50, -0.80, 4.66e-3]),
                r_squared: 0.90,
                n: 576,
                inlier_fraction: 1.0,
            },
        }
    }

    #[test]
    fn pool_b_30pct_reduction_forecast_matches_paper() {
        let f = pool_b_forecaster();
        // 377 RPS/server at p95; removing 30% → ~540.
        let forecast = f.after_reduction(377.0, 0.30).unwrap();
        assert!((forecast.rps_per_server - 538.6).abs() < 1.0);
        // Paper: predicted 16.5% CPU (measured 17.4).
        assert!((forecast.cpu_pct - 16.5).abs() < 0.15, "cpu {}", forecast.cpu_pct);
        // Paper: predicted 31.5 ms (measured 30.9).
        assert!((forecast.latency_p95_ms - 31.6).abs() < 0.4, "lat {}", forecast.latency_p95_ms);
    }

    #[test]
    fn pool_d_10pct_reduction_forecast_matches_paper() {
        let f = pool_d_forecaster();
        // 77.7 → 94.9 RPS/server observed (+22%, demand also rose).
        let forecast = f.at_rps(94.9);
        assert!((forecast.cpu_pct - 13.7).abs() < 0.15, "cpu {}", forecast.cpu_pct);
        assert!((forecast.latency_p95_ms - 52.6).abs() < 0.6, "lat {}", forecast.latency_p95_ms);
    }

    #[test]
    fn forecast_accuracy_errors() {
        let a = ForecastAccuracy { predicted: 31.5, measured: 30.9 };
        assert!(a.relative_error() < 0.02);
        let zero = ForecastAccuracy { predicted: 0.0, measured: 0.0 };
        assert_eq!(zero.relative_error(), 0.0);
    }

    #[test]
    fn invalid_reduction_fraction_rejected() {
        let f = pool_b_forecaster();
        assert!(f.after_reduction(100.0, 1.0).is_err());
        assert!(f.after_reduction(100.0, -0.1).is_err());
    }

    #[test]
    fn max_rps_respects_both_constraints() {
        let f = pool_b_forecaster();
        // Latency-bound: SLO 32.5 ms with a generous CPU ceiling.
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let rps = f.max_rps_per_server(&qos).unwrap();
        assert!((f.latency.predict(rps) - 32.5).abs() < 1e-6);
        // CPU-bound: tight ceiling.
        let qos_cpu = QosRequirement::latency(100.0).with_cpu_ceiling(10.0);
        let rps_cpu = f.max_rps_per_server(&qos_cpu).unwrap();
        assert!((f.cpu.predict(rps_cpu) - 10.0).abs() < 1e-6);
        assert!(rps_cpu < rps * 2.0);
    }

    #[test]
    fn min_servers_scales_with_peak() {
        let f = pool_b_forecaster();
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let n1 = f.min_servers(10_000.0, &qos, 0.0).unwrap();
        let n2 = f.min_servers(20_000.0, &qos, 0.0).unwrap();
        assert!(n2 >= 2 * n1 - 1);
        // Failure headroom adds servers.
        let with_headroom = f.min_servers(10_000.0, &qos, 0.10).unwrap();
        assert!(with_headroom > n1);
    }

    #[test]
    fn unreachable_slo_errors() {
        let f = pool_b_forecaster();
        // Below the curve's minimum (~30.7 ms around 385 rps): unreachable.
        let qos = QosRequirement::latency(5.0);
        assert!(f.max_rps_per_server(&qos).is_err());
    }

    #[test]
    fn min_servers_validates_inputs() {
        let f = pool_b_forecaster();
        let qos = QosRequirement::latency(32.5);
        assert!(f.min_servers(f64::NAN, &qos, 0.0).is_err());
        assert!(f.min_servers(100.0, &qos, 1.0).is_err());
        assert_eq!(f.min_servers(0.0, &qos, 0.0).unwrap(), 1);
    }
}
