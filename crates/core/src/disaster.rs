//! Disaster-recovery sizing.
//!
//! The paper's abstract promises savings "with effectively no impact on …
//! the capacity required for disaster recovery", verified with "data from
//! real-world large scale unplanned failures". DR capacity for a
//! geo-distributed service means: when any single datacenter is lost, its
//! demand reroutes to the survivors (weight-proportionally, as in
//! [`headroom_cluster::routing`]) — and every surviving pool must *still*
//! meet the QoS requirement.
//!
//! [`dr_min_servers`] computes the per-datacenter minimum pool sizes under
//! that constraint; comparing them against the non-DR minimum shows how much
//! of the fleet's existing headroom was actually doing DR duty.

use crate::error::PlanError;
use crate::forecast::CapacityForecaster;
use crate::slo::QosRequirement;

/// Per-datacenter DR sizing for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct DrPlan {
    /// Minimum servers per datacenter tolerating any single-DC loss.
    pub servers: Vec<usize>,
    /// Minimum servers per datacenter with no DR requirement.
    pub servers_without_dr: Vec<usize>,
    /// Peak per-server workload each DC would see in its worst failover.
    pub worst_case_rps: Vec<f64>,
}

impl DrPlan {
    /// Total DR-capable allocation.
    pub fn total(&self) -> usize {
        self.servers.iter().sum()
    }

    /// Total non-DR allocation.
    pub fn total_without_dr(&self) -> usize {
        self.servers_without_dr.iter().sum()
    }

    /// Fraction of the DR allocation that exists purely for failover.
    pub fn dr_overhead(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.total_without_dr() as f64 / total as f64
    }
}

/// Computes the smallest per-DC pool sizes such that the service meets
/// `qos` both in normal operation and after the loss of any one datacenter.
///
/// `peak_demands[d]` is datacenter `d`'s own peak workload (RPS);
/// `weights[d]` its routing weight. On the loss of DC `l`, survivors receive
/// `peak_demands[l] · weights[d] / Σ_{s≠l} weights[s]` extra demand — the
/// same rule the simulator's failover router applies.
///
/// # Errors
///
/// - [`PlanError::InvalidParameter`] for mismatched or empty inputs, or
///   fewer than two datacenters (no DR is possible with one).
/// - Propagated sizing errors from the forecaster.
pub fn dr_min_servers(
    forecaster: &CapacityForecaster,
    peak_demands: &[f64],
    weights: &[f64],
    qos: &QosRequirement,
) -> Result<DrPlan, PlanError> {
    if peak_demands.len() != weights.len() {
        return Err(PlanError::InvalidParameter("demands/weights length mismatch"));
    }
    if peak_demands.len() < 2 {
        return Err(PlanError::InvalidParameter("DR sizing needs at least two datacenters"));
    }
    if peak_demands.iter().chain(weights.iter()).any(|v| !v.is_finite() || *v < 0.0) {
        return Err(PlanError::InvalidParameter("demands/weights must be non-negative"));
    }

    let rps_at_slo = forecaster.max_rps_per_server(qos)?;
    let n = peak_demands.len();
    let mut servers = Vec::with_capacity(n);
    let mut servers_without_dr = Vec::with_capacity(n);
    let mut worst_case_rps = Vec::with_capacity(n);

    for d in 0..n {
        // Worst case for DC d: the loss of whichever other DC pushes the
        // most displaced demand onto it.
        let mut worst_demand = peak_demands[d];
        for l in 0..n {
            if l == d {
                continue;
            }
            let surviving_weight: f64 = (0..n).filter(|&s| s != l).map(|s| weights[s]).sum();
            if surviving_weight <= 0.0 {
                continue;
            }
            let with_failover = peak_demands[d] + peak_demands[l] * weights[d] / surviving_weight;
            worst_demand = worst_demand.max(with_failover);
        }
        let dr = ((worst_demand / rps_at_slo).ceil() as usize).max(1);
        let plain = ((peak_demands[d] / rps_at_slo).ceil() as usize).max(1);
        servers.push(dr);
        servers_without_dr.push(plain);
        worst_case_rps.push(worst_demand / dr as f64);
    }

    Ok(DrPlan { servers, servers_without_dr, worst_case_rps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{CpuModel, LatencyModel};
    use headroom_stats::{LinearFit, Polynomial};

    fn forecaster() -> CapacityForecaster {
        CapacityForecaster {
            cpu: CpuModel {
                fit: LinearFit { slope: 0.028, intercept: 1.37, r_squared: 0.98, n: 100 },
            },
            latency: LatencyModel {
                poly: Polynomial::new(vec![36.68, -0.031, 4.028e-5]),
                r_squared: 0.9,
                n: 100,
                inlier_fraction: 1.0,
            },
        }
    }

    fn qos() -> QosRequirement {
        QosRequirement::latency(32.5).with_cpu_ceiling(90.0)
    }

    #[test]
    fn dr_allocates_more_than_plain() {
        let plan = dr_min_servers(
            &forecaster(),
            &[100_000.0, 90_000.0, 60_000.0],
            &[1.0, 0.9, 0.6],
            &qos(),
        )
        .unwrap();
        assert_eq!(plan.servers.len(), 3);
        for d in 0..3 {
            assert!(plan.servers[d] >= plan.servers_without_dr[d]);
        }
        assert!(plan.dr_overhead() > 0.1, "overhead {:.2}", plan.dr_overhead());
        assert!(plan.dr_overhead() < 0.5);
    }

    #[test]
    fn worst_case_stays_within_slo() {
        let f = forecaster();
        let plan =
            dr_min_servers(&f, &[100_000.0, 90_000.0, 60_000.0], &[1.0, 0.9, 0.6], &qos()).unwrap();
        let rps_at_slo = f.max_rps_per_server(&qos()).unwrap();
        for &rps in &plan.worst_case_rps {
            assert!(rps <= rps_at_slo + 1e-9, "worst case {rps:.0} exceeds {rps_at_slo:.0}");
        }
    }

    #[test]
    fn two_dcs_cover_each_other_fully() {
        // With two DCs, each must absorb the other entirely.
        let plan =
            dr_min_servers(&forecaster(), &[50_000.0, 50_000.0], &[1.0, 1.0], &qos()).unwrap();
        assert!(plan.servers[0] >= 2 * plan.servers_without_dr[0] - 1);
    }

    #[test]
    fn more_dcs_cheaper_dr() {
        // Spreading the same demand over more DCs shrinks DR overhead — the
        // amortization argument for geo-distribution.
        let f = forecaster();
        let three =
            dr_min_servers(&f, &[60_000.0, 60_000.0, 60_000.0], &[1.0, 1.0, 1.0], &qos()).unwrap();
        let six = dr_min_servers(&f, &[30_000.0; 6], &[1.0; 6], &qos()).unwrap();
        assert!(six.dr_overhead() < three.dr_overhead());
    }

    #[test]
    fn validation() {
        let f = forecaster();
        assert!(dr_min_servers(&f, &[1.0], &[1.0], &qos()).is_err());
        assert!(dr_min_servers(&f, &[1.0, 2.0], &[1.0], &qos()).is_err());
        assert!(dr_min_servers(&f, &[1.0, f64::NAN], &[1.0, 1.0], &qos()).is_err());
    }
}
