//! Plain-text table rendering for planner reports.
//!
//! The bench harness prints paper-style tables; this keeps the formatting in
//! one place.

/// Renders a fixed-width text table: a header row, a separator, then rows.
///
/// Column widths adapt to the widest cell. Ragged rows are padded with
/// empty cells.
///
/// # Example
///
/// ```
/// use headroom_core::report::render_table;
///
/// let t = render_table(
///     &["Pool", "Savings"],
///     &[vec!["B".to_string(), "33%".to_string()]],
/// );
/// assert!(t.contains("Pool"));
/// assert!(t.contains("33%"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len().max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = widths[i].max(h.len());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).copied().unwrap_or("");
            line.push_str(&format!("{cell:<w$}"));
            if i + 1 < widths.len() {
                line.push_str("  ");
            }
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with no decimals (Table IV style).
pub fn pct(fraction: f64) -> String {
    format!("{:.0}%", fraction * 100.0)
}

/// Formats milliseconds with one decimal.
pub fn ms(value: f64) -> String {
    format!("{value:.1}ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["Pool", "Efficiency"],
            &[vec!["A".into(), "15%".into()], vec!["LongName".into(), "4%".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rows start columns at the same offsets.
        let col = lines[0].find("Efficiency").unwrap();
        assert_eq!(lines[2].find("15%").unwrap(), col);
        assert_eq!(lines[3].find("4%").unwrap(), col);
    }

    #[test]
    fn ragged_rows_padded() {
        let t = render_table(&["A", "B", "C"], &[vec!["1".into()]]);
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.33), "33%");
        assert_eq!(pct(0.047), "5%");
        assert_eq!(ms(4.96), "5.0ms");
    }
}
