//! Service-level objectives and QoS requirements.
//!
//! §II: "The QoS requirement for each micro-service is defined as a set of
//! Service Level Objectives (SLOs). Each SLO is a specific metric and the
//! minimum threshold of their values. For example, response latency must be
//! less than 500 ms, and reliability must be 99.999%."

use std::fmt;

use headroom_telemetry::counter::Resource;

/// One service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Slo {
    /// p95 request latency must stay at or below this many milliseconds.
    LatencyP95Ms(f64),
    /// Fraction of requests that must succeed (e.g. `0.99999`).
    Availability(f64),
    /// Sustained CPU must stay at or below this percentage (operational
    /// guardrail that keeps short spikes from queueing requests).
    CpuCeilingPct(f64),
    /// Sustained disk queue length must stay at or below this depth.
    DiskQueueLimit(f64),
    /// Sustained paging must stay at or below this many pages/sec.
    MemoryPagesLimit(f64),
    /// Sustained network throughput must stay at or below this many Mbps.
    NetworkMbpsLimit(f64),
}

impl fmt::Display for Slo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slo::LatencyP95Ms(ms) => write!(f, "p95 latency <= {ms} ms"),
            Slo::Availability(a) => write!(f, "availability >= {:.3}%", a * 100.0),
            Slo::CpuCeilingPct(c) => write!(f, "cpu <= {c}%"),
            Slo::DiskQueueLimit(d) => write!(f, "disk queue <= {d}"),
            Slo::MemoryPagesLimit(p) => write!(f, "paging <= {p} pages/s"),
            Slo::NetworkMbpsLimit(n) => write!(f, "network <= {n} Mbps"),
        }
    }
}

/// The QoS requirement the optimizer plans against.
///
/// # Example
///
/// ```
/// use headroom_core::slo::QosRequirement;
///
/// let qos = QosRequirement::latency(32.5);
/// assert_eq!(qos.latency_p95_ms, 32.5);
/// assert!(qos.cpu_ceiling_pct > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosRequirement {
    /// Maximum acceptable p95 latency in milliseconds.
    pub latency_p95_ms: f64,
    /// Maximum sustained CPU percent (defaults to 60%, a common production
    /// guardrail leaving room for 120-second spikes).
    pub cpu_ceiling_pct: f64,
    /// Required request availability (defaults to 99.95%, the paper's lower
    /// bound for typical services).
    pub min_availability: f64,
    /// Maximum sustained disk queue length (default 24 — a queue a dozen
    /// deep per spindle pair keeps I/O latency off the request path).
    pub disk_queue_limit: f64,
    /// Maximum sustained paging rate, pages/sec (default 60 000 — beyond
    /// this the page cache is thrashing and request latency follows).
    pub memory_pages_limit: f64,
    /// Maximum sustained network throughput, Mbps (default 9 000 — a 10 GbE
    /// NIC with a safety margin).
    pub network_mbps_limit: f64,
}

impl QosRequirement {
    /// A requirement dominated by a latency SLO, with default guardrails.
    ///
    /// The default resource limits are deliberately generous: on a
    /// CPU-dominated service they never bind, so sizing matches the
    /// CPU-and-latency-only planner exactly. Tighten them (or deploy an
    /// IO-heavy workload) and the planner's discovered binding constraint
    /// moves off CPU.
    ///
    /// # Panics
    ///
    /// Panics when `latency_p95_ms` is not positive.
    pub fn latency(latency_p95_ms: f64) -> Self {
        assert!(latency_p95_ms > 0.0 && latency_p95_ms.is_finite(), "latency SLO must be positive");
        QosRequirement {
            latency_p95_ms,
            cpu_ceiling_pct: 60.0,
            min_availability: 0.9995,
            disk_queue_limit: 24.0,
            memory_pages_limit: 60_000.0,
            network_mbps_limit: 9_000.0,
        }
    }

    /// Adjusts the CPU guardrail.
    pub fn with_cpu_ceiling(mut self, pct: f64) -> Self {
        assert!(pct > 0.0 && pct <= 100.0, "cpu ceiling must be within (0, 100]");
        self.cpu_ceiling_pct = pct;
        self
    }

    /// Adjusts the availability requirement.
    pub fn with_min_availability(mut self, availability: f64) -> Self {
        assert!((0.0..=1.0).contains(&availability), "availability must be within 0..=1");
        self.min_availability = availability;
        self
    }

    /// Adjusts the disk queue safety limit.
    ///
    /// # Panics
    ///
    /// Panics when `limit` is not positive and finite.
    pub fn with_disk_queue_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0 && limit.is_finite(), "disk queue limit must be positive");
        self.disk_queue_limit = limit;
        self
    }

    /// Adjusts the paging-rate safety limit (pages/sec).
    ///
    /// # Panics
    ///
    /// Panics when `limit` is not positive and finite.
    pub fn with_memory_pages_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0 && limit.is_finite(), "paging limit must be positive");
        self.memory_pages_limit = limit;
        self
    }

    /// Adjusts the network throughput safety limit (Mbps).
    ///
    /// # Panics
    ///
    /// Panics when `limit` is not positive and finite.
    pub fn with_network_mbps_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0 && limit.is_finite(), "network limit must be positive");
        self.network_mbps_limit = limit;
        self
    }

    /// The safety threshold for one [`Resource`], in that resource's
    /// utilization units (percent for CPU, queue depth, pages/sec, Mbps).
    pub fn resource_limit(&self, resource: Resource) -> f64 {
        match resource {
            Resource::Cpu => self.cpu_ceiling_pct,
            Resource::DiskQueue => self.disk_queue_limit,
            Resource::MemoryPages => self.memory_pages_limit,
            Resource::Network => self.network_mbps_limit,
        }
    }

    /// The requirement as a list of SLOs (for reports), resource safety
    /// limits included — the constraint that actually binds a sizing must
    /// be visible in the requirement a report prints.
    pub fn slos(&self) -> Vec<Slo> {
        vec![
            Slo::LatencyP95Ms(self.latency_p95_ms),
            Slo::CpuCeilingPct(self.cpu_ceiling_pct),
            Slo::Availability(self.min_availability),
            Slo::DiskQueueLimit(self.disk_queue_limit),
            Slo::MemoryPagesLimit(self.memory_pages_limit),
            Slo::NetworkMbpsLimit(self.network_mbps_limit),
        ]
    }

    /// The per-pool QoS requirements of the six-pool small fleet
    /// (`headroom_cluster::scenario::FleetScenario::small`, which deploys
    /// service B on pools 0–2 and service D on pools 3–5, one pool per
    /// datacenter). The latency SLOs come from the Table I catalog specs,
    /// so only the pool→service layout is encoded here; it is shared by the
    /// tests, benches, experiments and examples that compare planners on
    /// that fleet so the mapping cannot drift between them.
    pub fn small_fleet(pool: headroom_telemetry::ids::PoolId) -> Self {
        let kind = if pool.0 < 3 {
            headroom_cluster::catalog::MicroserviceKind::B
        } else {
            headroom_cluster::catalog::MicroserviceKind::D
        };
        QosRequirement::latency(kind.spec().latency_slo_ms).with_cpu_ceiling(90.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_constructor_defaults() {
        let q = QosRequirement::latency(50.0);
        assert_eq!(q.latency_p95_ms, 50.0);
        assert_eq!(q.cpu_ceiling_pct, 60.0);
        assert_eq!(q.min_availability, 0.9995);
        assert_eq!(q.resource_limit(Resource::Cpu), 60.0);
        assert_eq!(q.resource_limit(Resource::DiskQueue), 24.0);
        assert_eq!(q.resource_limit(Resource::MemoryPages), 60_000.0);
        assert_eq!(q.resource_limit(Resource::Network), 9_000.0);
    }

    #[test]
    fn resource_limit_builders() {
        let q = QosRequirement::latency(50.0)
            .with_disk_queue_limit(8.0)
            .with_memory_pages_limit(20_000.0)
            .with_network_mbps_limit(1_000.0);
        assert_eq!(q.resource_limit(Resource::DiskQueue), 8.0);
        assert_eq!(q.resource_limit(Resource::MemoryPages), 20_000.0);
        assert_eq!(q.resource_limit(Resource::Network), 1_000.0);
    }

    #[test]
    #[should_panic(expected = "disk queue limit must be positive")]
    fn bad_disk_queue_limit_panics() {
        let _ = QosRequirement::latency(1.0).with_disk_queue_limit(0.0);
    }

    #[test]
    fn builders_adjust() {
        let q = QosRequirement::latency(10.0).with_cpu_ceiling(45.0).with_min_availability(0.999);
        assert_eq!(q.cpu_ceiling_pct, 45.0);
        assert_eq!(q.min_availability, 0.999);
    }

    #[test]
    fn slos_list_every_constraint() {
        let q = QosRequirement::latency(10.0);
        assert_eq!(q.slos().len(), 6);
        assert!(q.slos().contains(&Slo::DiskQueueLimit(24.0)));
    }

    #[test]
    fn slo_display() {
        assert_eq!(Slo::LatencyP95Ms(500.0).to_string(), "p95 latency <= 500 ms");
        assert_eq!(Slo::Availability(0.99999).to_string(), "availability >= 99.999%");
        assert_eq!(Slo::CpuCeilingPct(60.0).to_string(), "cpu <= 60%");
        assert_eq!(Slo::DiskQueueLimit(24.0).to_string(), "disk queue <= 24");
        assert_eq!(Slo::MemoryPagesLimit(6e4).to_string(), "paging <= 60000 pages/s");
        assert_eq!(Slo::NetworkMbpsLimit(9e3).to_string(), "network <= 9000 Mbps");
    }

    #[test]
    fn small_fleet_mapping_follows_catalog() {
        use headroom_cluster::catalog::MicroserviceKind;
        use headroom_telemetry::ids::PoolId;
        let b = QosRequirement::small_fleet(PoolId(0));
        let d = QosRequirement::small_fleet(PoolId(3));
        assert_eq!(b.latency_p95_ms, MicroserviceKind::B.spec().latency_slo_ms);
        assert_eq!(d.latency_p95_ms, MicroserviceKind::D.spec().latency_slo_ms);
        assert!(d.latency_p95_ms > b.latency_p95_ms);
        assert_eq!(b.cpu_ceiling_pct, 90.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_latency_panics() {
        let _ = QosRequirement::latency(-1.0);
    }

    #[test]
    #[should_panic(expected = "within (0, 100]")]
    fn bad_ceiling_panics() {
        let _ = QosRequirement::latency(1.0).with_cpu_ceiling(0.0);
    }
}
