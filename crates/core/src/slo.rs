//! Service-level objectives and QoS requirements.
//!
//! §II: "The QoS requirement for each micro-service is defined as a set of
//! Service Level Objectives (SLOs). Each SLO is a specific metric and the
//! minimum threshold of their values. For example, response latency must be
//! less than 500 ms, and reliability must be 99.999%."

use std::fmt;

/// One service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Slo {
    /// p95 request latency must stay at or below this many milliseconds.
    LatencyP95Ms(f64),
    /// Fraction of requests that must succeed (e.g. `0.99999`).
    Availability(f64),
    /// Sustained CPU must stay at or below this percentage (operational
    /// guardrail that keeps short spikes from queueing requests).
    CpuCeilingPct(f64),
}

impl fmt::Display for Slo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slo::LatencyP95Ms(ms) => write!(f, "p95 latency <= {ms} ms"),
            Slo::Availability(a) => write!(f, "availability >= {:.3}%", a * 100.0),
            Slo::CpuCeilingPct(c) => write!(f, "cpu <= {c}%"),
        }
    }
}

/// The QoS requirement the optimizer plans against.
///
/// # Example
///
/// ```
/// use headroom_core::slo::QosRequirement;
///
/// let qos = QosRequirement::latency(32.5);
/// assert_eq!(qos.latency_p95_ms, 32.5);
/// assert!(qos.cpu_ceiling_pct > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosRequirement {
    /// Maximum acceptable p95 latency in milliseconds.
    pub latency_p95_ms: f64,
    /// Maximum sustained CPU percent (defaults to 60%, a common production
    /// guardrail leaving room for 120-second spikes).
    pub cpu_ceiling_pct: f64,
    /// Required request availability (defaults to 99.95%, the paper's lower
    /// bound for typical services).
    pub min_availability: f64,
}

impl QosRequirement {
    /// A requirement dominated by a latency SLO, with default guardrails.
    ///
    /// # Panics
    ///
    /// Panics when `latency_p95_ms` is not positive.
    pub fn latency(latency_p95_ms: f64) -> Self {
        assert!(latency_p95_ms > 0.0 && latency_p95_ms.is_finite(), "latency SLO must be positive");
        QosRequirement { latency_p95_ms, cpu_ceiling_pct: 60.0, min_availability: 0.9995 }
    }

    /// Adjusts the CPU guardrail.
    pub fn with_cpu_ceiling(mut self, pct: f64) -> Self {
        assert!(pct > 0.0 && pct <= 100.0, "cpu ceiling must be within (0, 100]");
        self.cpu_ceiling_pct = pct;
        self
    }

    /// Adjusts the availability requirement.
    pub fn with_min_availability(mut self, availability: f64) -> Self {
        assert!((0.0..=1.0).contains(&availability), "availability must be within 0..=1");
        self.min_availability = availability;
        self
    }

    /// The requirement as a list of SLOs (for reports).
    pub fn slos(&self) -> Vec<Slo> {
        vec![
            Slo::LatencyP95Ms(self.latency_p95_ms),
            Slo::CpuCeilingPct(self.cpu_ceiling_pct),
            Slo::Availability(self.min_availability),
        ]
    }

    /// The per-pool QoS requirements of the six-pool small fleet
    /// (`headroom_cluster::scenario::FleetScenario::small`, which deploys
    /// service B on pools 0–2 and service D on pools 3–5, one pool per
    /// datacenter). The latency SLOs come from the Table I catalog specs,
    /// so only the pool→service layout is encoded here; it is shared by the
    /// tests, benches, experiments and examples that compare planners on
    /// that fleet so the mapping cannot drift between them.
    pub fn small_fleet(pool: headroom_telemetry::ids::PoolId) -> Self {
        let kind = if pool.0 < 3 {
            headroom_cluster::catalog::MicroserviceKind::B
        } else {
            headroom_cluster::catalog::MicroserviceKind::D
        };
        QosRequirement::latency(kind.spec().latency_slo_ms).with_cpu_ceiling(90.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_constructor_defaults() {
        let q = QosRequirement::latency(50.0);
        assert_eq!(q.latency_p95_ms, 50.0);
        assert_eq!(q.cpu_ceiling_pct, 60.0);
        assert_eq!(q.min_availability, 0.9995);
    }

    #[test]
    fn builders_adjust() {
        let q = QosRequirement::latency(10.0).with_cpu_ceiling(45.0).with_min_availability(0.999);
        assert_eq!(q.cpu_ceiling_pct, 45.0);
        assert_eq!(q.min_availability, 0.999);
    }

    #[test]
    fn slos_list_all_three() {
        let q = QosRequirement::latency(10.0);
        assert_eq!(q.slos().len(), 3);
    }

    #[test]
    fn slo_display() {
        assert_eq!(Slo::LatencyP95Ms(500.0).to_string(), "p95 latency <= 500 ms");
        assert_eq!(Slo::Availability(0.99999).to_string(), "availability >= 99.999%");
        assert_eq!(Slo::CpuCeilingPct(60.0).to_string(), "cpu <= 60%");
    }

    #[test]
    fn small_fleet_mapping_follows_catalog() {
        use headroom_cluster::catalog::MicroserviceKind;
        use headroom_telemetry::ids::PoolId;
        let b = QosRequirement::small_fleet(PoolId(0));
        let d = QosRequirement::small_fleet(PoolId(3));
        assert_eq!(b.latency_p95_ms, MicroserviceKind::B.spec().latency_slo_ms);
        assert_eq!(d.latency_p95_ms, MicroserviceKind::D.spec().latency_slo_ms);
        assert!(d.latency_p95_ms > b.latency_p95_ms);
        assert_eq!(b.cpu_ceiling_pct, 90.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_latency_panics() {
        let _ = QosRequirement::latency(-1.0);
    }

    #[test]
    #[should_panic(expected = "within (0, 100]")]
    fn bad_ceiling_panics() {
        let _ = QosRequirement::latency(1.0).with_cpu_ceiling(0.0);
    }
}
