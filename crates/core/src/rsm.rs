//! Response-surface-methodology (RSM) reduction experiments (§II-B2).
//!
//! "An iterative RSM approach is used to experimentally change the number of
//! servers used by a pool while measuring the corresponding QoS, and then
//! using this result to forecast the QoS impact of further reductions."
//!
//! Each iteration observes the pool at its current size, refits the response
//! curves on all data so far, forecasts the next (smaller) size, and stops
//! before the forecast crosses the QoS limit (Fig. 7's staircase of rising
//! latencies until the 14 ms line). Experiments run against the fleet
//! simulator exactly as the paper's ran against production: by draining
//! servers and watching.

use headroom_cluster::sim::Simulation;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowRange;

use crate::curves::PoolObservations;
use crate::error::PlanError;
use crate::forecast::CapacityForecaster;
use crate::partitions::partition_by_total_load;
use crate::slo::QosRequirement;

/// Configuration of an RSM reduction experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsmConfig {
    /// The QoS requirement guarding the experiment.
    pub qos: QosRequirement,
    /// Fraction of current servers removed per iteration (paper: ~10%).
    pub step_fraction: f64,
    /// Observation windows per iteration (paper: roughly one week; the
    /// default here is one simulated day).
    pub windows_per_iteration: u64,
    /// Maximum iterations (operator patience).
    pub max_iterations: usize,
    /// Total-load partitions J for the per-partition latency fits.
    pub partitions: usize,
    /// Forecast safety margin: stop when the *forecast* latency for the next
    /// step exceeds `qos.latency_p95_ms - safety_margin_ms`.
    pub safety_margin_ms: f64,
}

impl RsmConfig {
    /// A standard configuration for the given QoS requirement.
    pub fn new(qos: QosRequirement) -> Self {
        RsmConfig {
            qos,
            step_fraction: 0.10,
            windows_per_iteration: 720,
            max_iterations: 10,
            partitions: 4,
            safety_margin_ms: 0.5,
        }
    }
}

/// One RSM iteration's record.
#[derive(Debug, Clone, PartialEq)]
pub struct RsmIteration {
    /// Iteration number (0 = baseline observation).
    pub iteration: usize,
    /// Active servers during this iteration.
    pub active_servers: usize,
    /// Mean p95 latency in the *top* load partition (peak hours) — the
    /// quantity that crosses the SLO first.
    pub peak_latency_ms: f64,
    /// Mean p95 latency across all windows of the iteration.
    pub mean_latency_ms: f64,
    /// 95th percentile of RPS/server during the iteration.
    pub p95_rps_per_server: f64,
    /// The forecast latency for the *next* (smaller) configuration, if one
    /// was evaluated.
    pub forecast_next_ms: Option<f64>,
    /// Whether this iteration stayed within the QoS requirement.
    pub within_qos: bool,
}

/// Outcome of a full RSM reduction experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RsmOutcome {
    /// Per-iteration records (Fig. 7 series).
    pub iterations: Vec<RsmIteration>,
    /// Servers active before the experiment.
    pub initial_servers: usize,
    /// Servers active at the end (the right-sized pool).
    pub final_servers: usize,
    /// The latency SLO that bounded the experiment.
    pub qos_limit_ms: f64,
}

impl RsmOutcome {
    /// Capacity saved by the experiment, as a fraction of the initial pool.
    pub fn savings_fraction(&self) -> f64 {
        if self.initial_servers == 0 {
            return 0.0;
        }
        1.0 - self.final_servers as f64 / self.initial_servers as f64
    }
}

/// Runs an iterative RSM reduction experiment against the simulator.
///
/// The simulation is advanced `windows_per_iteration` windows per iteration;
/// all telemetry accumulates in the simulation's store.
///
/// # Errors
///
/// - [`PlanError::Cluster`] when the pool is unknown.
/// - Fitting errors when the pool produces unusable telemetry.
pub fn run_reduction_experiment(
    sim: &mut Simulation,
    pool: PoolId,
    config: &RsmConfig,
) -> Result<RsmOutcome, PlanError> {
    if !(0.0 < config.step_fraction && config.step_fraction < 0.5) {
        return Err(PlanError::InvalidParameter("step_fraction must be within (0, 0.5)"));
    }
    let initial_servers = sim
        .fleet()
        .pool(pool)
        .ok_or(headroom_cluster::ClusterError::UnknownPool(pool))?
        .active_count();

    let mut iterations: Vec<RsmIteration> = Vec::new();
    let mut active = initial_servers;
    let mut best_within_qos = initial_servers;
    let experiment_start = sim.current_window();

    for iter_no in 0..config.max_iterations {
        // Observe the current configuration.
        let obs_start = sim.current_window();
        sim.run_windows(config.windows_per_iteration);
        let obs_range = WindowRange::new(obs_start, sim.current_window());
        let iter_obs = PoolObservations::collect(sim.store(), pool, obs_range)?;

        let peak_latency = top_partition_latency(&iter_obs, config.partitions)?;
        let mean_latency = iter_obs.latency_p95_ms.iter().sum::<f64>() / iter_obs.len() as f64;
        let p95_rps = iter_obs.rps_percentile(95.0)?;
        let within = peak_latency <= config.qos.latency_p95_ms;
        if within {
            best_within_qos = active;
        }

        // Refit on everything observed so far (history + experiments).
        let all_range = WindowRange::new(experiment_start, sim.current_window());
        let all_obs = PoolObservations::collect(sim.store(), pool, all_range)?;
        let forecaster = CapacityForecaster::fit(&all_obs)?;

        // Model + extrapolate: the gradient step is a further reduction.
        let candidate = ((active as f64) * (1.0 - config.step_fraction)).floor() as usize;
        let mut forecast_next = None;
        let mut stop = false;
        if !within {
            // Crossed the SLO: restore the last good size and stop.
            stop = true;
        } else if candidate < 1 || candidate == active {
            stop = true;
        } else {
            let peak_total = all_obs.total_rps().iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            let predicted = forecaster.at_rps(peak_total / candidate as f64).latency_p95_ms;
            forecast_next = Some(predicted);
            if predicted > config.qos.latency_p95_ms - config.safety_margin_ms {
                stop = true;
            }
        }

        iterations.push(RsmIteration {
            iteration: iter_no,
            active_servers: active,
            peak_latency_ms: peak_latency,
            mean_latency_ms: mean_latency,
            p95_rps_per_server: p95_rps,
            forecast_next_ms: forecast_next,
            within_qos: within,
        });

        if stop {
            break;
        }
        sim.schedule_resize(pool, sim.current_window(), candidate)?;
        active = candidate;
    }

    // Restore the smallest size that stayed within QoS.
    sim.schedule_resize(pool, sim.current_window(), best_within_qos)?;
    Ok(RsmOutcome {
        iterations,
        initial_servers,
        final_servers: best_within_qos,
        qos_limit_ms: config.qos.latency_p95_ms,
    })
}

/// Mean latency of the top total-load partition; falls back to the overall
/// p95 of latency when partitioning is impossible (few windows).
fn top_partition_latency(obs: &PoolObservations, partitions: usize) -> Result<f64, PlanError> {
    match partition_by_total_load(obs, partitions) {
        Ok(parts) => Ok(parts.last().map(|p| p.mean_latency()).unwrap_or(0.0)),
        Err(PlanError::InsufficientData { .. }) => {
            Ok(headroom_stats::percentile::percentile(&obs.latency_p95_ms, 95.0)?)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_cluster::catalog::MicroserviceKind;
    use headroom_cluster::scenario::FleetScenario;

    fn experiment_sim(kind: MicroserviceKind, servers: usize, seed: u64) -> (Simulation, PoolId) {
        let scenario = FleetScenario::single_service(kind, 1, servers, seed);
        let sim = scenario.into_simulation();
        let pool = sim.fleet().pools()[0].id;
        (sim, pool)
    }

    #[test]
    fn reduction_stops_at_qos_limit() {
        // Service G: latency 6 + 2.2e-5 r²; SLO 12.1 ms from the catalog.
        let (mut sim, pool) = experiment_sim(MicroserviceKind::G, 40, 3);
        let qos = QosRequirement::latency(12.1).with_cpu_ceiling(80.0);
        let config =
            RsmConfig { windows_per_iteration: 360, max_iterations: 12, ..RsmConfig::new(qos) };
        let outcome = run_reduction_experiment(&mut sim, pool, &config).unwrap();
        assert!(outcome.iterations.len() >= 2, "should iterate at least twice");
        assert!(outcome.final_servers < outcome.initial_servers, "some savings found");
        assert!(outcome.savings_fraction() > 0.0);
        // Latency rises monotonically-ish across iterations.
        let first = outcome.iterations.first().unwrap().peak_latency_ms;
        let last = outcome.iterations.last().unwrap().peak_latency_ms;
        assert!(last > first, "latency should rise as servers are removed");
        // The final configuration's forecast stayed under the SLO.
        for it in &outcome.iterations {
            if it.within_qos {
                assert!(it.peak_latency_ms <= config.qos.latency_p95_ms + 1e-9);
            }
        }
    }

    #[test]
    fn tight_slo_yields_no_savings() {
        let (mut sim, pool) = experiment_sim(MicroserviceKind::G, 20, 5);
        // Run a day first so the baseline has data, then demand an SLO just
        // above the current peak latency: no reduction possible.
        sim.run_windows(360);
        let obs = PoolObservations::collect(
            sim.store(),
            pool,
            WindowRange::new(headroom_telemetry::time::WindowIndex(0), sim.current_window()),
        )
        .unwrap();
        let peak = obs.latency_p95_ms.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let qos = QosRequirement::latency(peak + 0.2).with_cpu_ceiling(80.0);
        let config =
            RsmConfig { windows_per_iteration: 360, max_iterations: 4, ..RsmConfig::new(qos) };
        let outcome = run_reduction_experiment(&mut sim, pool, &config).unwrap();
        assert!(
            outcome.final_servers >= outcome.initial_servers * 8 / 10,
            "little to no reduction expected, got {} -> {}",
            outcome.initial_servers,
            outcome.final_servers
        );
    }

    #[test]
    fn invalid_step_rejected() {
        let (mut sim, pool) = experiment_sim(MicroserviceKind::G, 10, 1);
        let mut config = RsmConfig::new(QosRequirement::latency(12.0));
        config.step_fraction = 0.9;
        assert!(matches!(
            run_reduction_experiment(&mut sim, pool, &config),
            Err(PlanError::InvalidParameter(_))
        ));
    }

    #[test]
    fn unknown_pool_rejected() {
        let (mut sim, _) = experiment_sim(MicroserviceKind::G, 10, 1);
        let config = RsmConfig::new(QosRequirement::latency(12.0));
        assert!(matches!(
            run_reduction_experiment(&mut sim, PoolId(999), &config),
            Err(PlanError::Cluster(_))
        ));
    }

    #[test]
    fn iterations_record_forecasts() {
        let (mut sim, pool) = experiment_sim(MicroserviceKind::G, 30, 7);
        let qos = QosRequirement::latency(12.1).with_cpu_ceiling(80.0);
        let config =
            RsmConfig { windows_per_iteration: 240, max_iterations: 6, ..RsmConfig::new(qos) };
        let outcome = run_reduction_experiment(&mut sim, pool, &config).unwrap();
        // Every non-final iteration carries a forecast for the next step.
        for it in &outcome.iterations[..outcome.iterations.len() - 1] {
            assert!(it.forecast_next_ms.is_some());
        }
    }
}
