//! Pool observations and the two fitted response curves.
//!
//! Everything the planner learns about a pool comes from per-window pool
//! averages of three counters: requests/sec per server (workload), CPU
//! percent (resource), and p95 latency (QoS). The CPU response is fit with
//! plain OLS (§II-A1's "tight linear correlation"); the latency response is
//! fit with a RANSAC quadratic (§II-B2, Eq. 1) so deployment outliers do not
//! bend the curve.

use headroom_stats::ransac::{ransac_polyfit, RansacConfig};
use headroom_stats::{LinearFit, Polynomial, StatsError, Summary};
use headroom_telemetry::counter::CounterKind;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::{WindowIndex, WindowRange};

use crate::error::PlanError;

/// Per-window pool-average observations for one pool.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoolObservations {
    /// The pool observed.
    pub pool: PoolId,
    /// Observation windows.
    pub windows: Vec<WindowIndex>,
    /// Mean RPS per serving server, per window.
    pub rps_per_server: Vec<f64>,
    /// Mean CPU percent, per window.
    pub cpu_pct: Vec<f64>,
    /// Mean p95 latency (ms), per window.
    pub latency_p95_ms: Vec<f64>,
    /// Serving (active) server count, per window.
    pub active_servers: Vec<f64>,
}

impl PoolObservations {
    /// Collects observations from the metric store over `range`.
    ///
    /// Only windows with all three signals (RPS, CPU, latency) are kept.
    ///
    /// # Errors
    ///
    /// [`PlanError::InsufficientData`] when fewer than 2 complete windows
    /// exist.
    pub fn collect(
        store: &MetricStore,
        pool: PoolId,
        range: WindowRange,
    ) -> Result<Self, PlanError> {
        let mut obs = PoolObservations { pool, ..PoolObservations::default() };
        for w in range.iter() {
            let rps = store.pool_window_mean(pool, CounterKind::RequestsPerSec, w);
            let cpu = store.pool_window_mean(pool, CounterKind::CpuPercent, w);
            let lat = store.pool_window_mean(pool, CounterKind::LatencyP95Ms, w);
            if let (Some(rps), Some(cpu), Some(lat)) = (rps, cpu, lat) {
                obs.windows.push(w);
                obs.rps_per_server.push(rps);
                obs.cpu_pct.push(cpu);
                obs.latency_p95_ms.push(lat);
                obs.active_servers.push(store.pool_active_servers(pool, w) as f64);
            }
        }
        if obs.len() < 2 {
            return Err(PlanError::InsufficientData {
                what: "pool observations",
                needed: 2,
                got: obs.len(),
            });
        }
        Ok(obs)
    }

    /// Number of observation windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no windows were collected.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total pool workload per window (RPS/server × servers).
    pub fn total_rps(&self) -> Vec<f64> {
        self.rps_per_server.iter().zip(&self.active_servers).map(|(r, n)| r * n).collect()
    }

    /// Keeps only windows satisfying `pred` (by index).
    pub fn filter_by<F: Fn(usize) -> bool>(&self, pred: F) -> PoolObservations {
        let keep: Vec<usize> = (0..self.len()).filter(|&i| pred(i)).collect();
        PoolObservations {
            pool: self.pool,
            windows: keep.iter().map(|&i| self.windows[i]).collect(),
            rps_per_server: keep.iter().map(|&i| self.rps_per_server[i]).collect(),
            cpu_pct: keep.iter().map(|&i| self.cpu_pct[i]).collect(),
            latency_p95_ms: keep.iter().map(|&i| self.latency_p95_ms[i]).collect(),
            active_servers: keep.iter().map(|&i| self.active_servers[i]).collect(),
        }
    }

    /// Summary of per-server workload (for percentile reporting à la
    /// Tables II/III).
    pub fn rps_summary(&self) -> Result<Summary, StatsError> {
        Summary::from_slice(&self.rps_per_server)
    }

    /// The `p`-th percentile of per-server workload.
    pub fn rps_percentile(&self, p: f64) -> Result<f64, StatsError> {
        headroom_stats::percentile::percentile(&self.rps_per_server, p)
    }
}

/// The linear workload→CPU model.
///
/// # Example
///
/// ```
/// use headroom_core::curves::{CpuModel, PoolObservations};
/// use headroom_telemetry::ids::PoolId;
/// use headroom_telemetry::time::WindowIndex;
///
/// # fn main() -> Result<(), headroom_core::PlanError> {
/// let obs = PoolObservations {
///     pool: PoolId(0),
///     windows: (0..4).map(WindowIndex).collect(),
///     rps_per_server: vec![100.0, 200.0, 300.0, 400.0],
///     cpu_pct: vec![4.17, 6.97, 9.77, 12.57],
///     latency_p95_ms: vec![30.0; 4],
///     active_servers: vec![10.0; 4],
/// };
/// let model = CpuModel::fit(&obs)?;
/// assert!((model.fit.slope - 0.028).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// The underlying OLS fit.
    pub fit: LinearFit,
}

impl CpuModel {
    /// Fits CPU against RPS/server.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from the fit.
    pub fn fit(obs: &PoolObservations) -> Result<Self, PlanError> {
        let fit = LinearFit::fit(&obs.rps_per_server, &obs.cpu_pct)?;
        Ok(CpuModel { fit })
    }

    /// Expected CPU percent at `rps` per server.
    pub fn predict(&self, rps: f64) -> f64 {
        self.fit.predict(rps)
    }

    /// RPS/server at which CPU reaches `cpu_pct`.
    ///
    /// # Errors
    ///
    /// [`StatsError::Singular`] (wrapped) for a flat fit.
    pub fn rps_at_cpu(&self, cpu_pct: f64) -> Result<f64, PlanError> {
        Ok(self.fit.solve_for_x(cpu_pct)?)
    }
}

/// The quadratic workload→latency model (RANSAC-fit).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Fitted quadratic (ascending coefficients).
    pub poly: Polynomial,
    /// R² on the inlier set.
    pub r_squared: f64,
    /// Observations used.
    pub n: usize,
    /// Fraction of observations kept as inliers.
    pub inlier_fraction: f64,
}

impl LatencyModel {
    /// Fits p95 latency against RPS/server with RANSAC.
    ///
    /// The inlier threshold adapts to the data: 3× the residual standard
    /// deviation of a preliminary OLS quadratic (floored at 0.5 ms).
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from fitting.
    pub fn fit(obs: &PoolObservations) -> Result<Self, PlanError> {
        Self::fit_xy(&obs.rps_per_server, &obs.latency_p95_ms, 23)
    }

    /// Fits from explicit x/y pairs (used by the RSM per-partition fits
    /// where x is the server count rather than RPS).
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from fitting.
    pub fn fit_xy(xs: &[f64], ys: &[f64], seed: u64) -> Result<Self, PlanError> {
        // Preliminary OLS to scale the inlier threshold. The threshold is
        // twice the 60th-percentile absolute residual: it must cover a
        // healthy majority of points (the consensus requirement is 60%)
        // while staying well below the residuals a contaminating deployment
        // glitch leaves even after it has bent the preliminary fit.
        let prelim = Polynomial::fit(xs, ys, 2)?;
        let threshold = {
            let mut abs_resid: Vec<f64> =
                xs.iter().zip(ys).map(|(x, y)| (y - prelim.poly.eval(*x)).abs()).collect();
            abs_resid.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
            2.0 * headroom_stats::percentile::percentile_of_sorted(&abs_resid, 60.0)
        };
        let config = RansacConfig {
            iterations: 300,
            inlier_threshold: threshold.max(0.5),
            min_inlier_fraction: 0.6,
            seed,
        };
        match ransac_polyfit(xs, ys, 2, &config) {
            Ok(fit) => Ok(LatencyModel {
                poly: fit.poly,
                r_squared: fit.r_squared,
                n: xs.len(),
                inlier_fraction: fit.inlier_fraction,
            }),
            // Degenerate consensus (e.g. extreme noise): fall back to OLS.
            Err(StatsError::Singular) => Ok(LatencyModel {
                poly: prelim.poly,
                r_squared: prelim.r_squared,
                n: xs.len(),
                inlier_fraction: 1.0,
            }),
            Err(e) => Err(e.into()),
        }
    }

    /// Expected p95 latency at `rps` per server.
    pub fn predict(&self, rps: f64) -> f64 {
        self.poly.eval(rps)
    }

    /// RPS/server at which latency reaches `latency_ms` (increasing branch).
    ///
    /// # Errors
    ///
    /// Wrapped [`StatsError::InvalidParameter`] when the quadratic never
    /// reaches the target.
    pub fn rps_at_latency(&self, latency_ms: f64) -> Result<f64, PlanError> {
        Ok(self.poly.solve_quadratic(latency_ms)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::counter::CounterKind;
    use headroom_telemetry::ids::{DatacenterId, ServerId};

    fn synthetic_store(windows: u64) -> (MetricStore, PoolId) {
        let mut store = MetricStore::new();
        let pool = PoolId(0);
        for s in 0..4u32 {
            store.register_server(ServerId(s), pool, DatacenterId(0));
        }
        for w in 0..windows {
            // Diurnal-ish RPS sweep.
            let rps = 100.0 + 300.0 * ((w as f64 / windows as f64) * std::f64::consts::PI).sin();
            for s in 0..4u32 {
                let sid = ServerId(s);
                store.record(sid, CounterKind::RequestsPerSec, WindowIndex(w), rps);
                store.record(sid, CounterKind::CpuPercent, WindowIndex(w), 0.028 * rps + 1.37);
                store.record(
                    sid,
                    CounterKind::LatencyP95Ms,
                    WindowIndex(w),
                    4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                );
            }
        }
        (store, pool)
    }

    #[test]
    fn collect_gathers_complete_windows() {
        let (store, pool) = synthetic_store(100);
        let obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(100)),
        )
        .unwrap();
        assert_eq!(obs.len(), 100);
        assert_eq!(obs.active_servers[0], 4.0);
        assert!(!obs.is_empty());
    }

    #[test]
    fn collect_skips_incomplete_windows() {
        let (mut store, pool) = synthetic_store(10);
        // A window with RPS but no CPU/latency.
        store.record(ServerId(0), CounterKind::RequestsPerSec, WindowIndex(50), 10.0);
        let obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(60)),
        )
        .unwrap();
        assert_eq!(obs.len(), 10);
    }

    #[test]
    fn collect_empty_errors() {
        let store = MetricStore::new();
        let err = PoolObservations::collect(
            &store,
            PoolId(9),
            WindowRange::new(WindowIndex(0), WindowIndex(10)),
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::InsufficientData { .. }));
    }

    #[test]
    fn cpu_model_recovers_paper_fit() {
        let (store, pool) = synthetic_store(200);
        let obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(200)),
        )
        .unwrap();
        let cpu = CpuModel::fit(&obs).unwrap();
        assert!((cpu.fit.slope - 0.028).abs() < 1e-9);
        assert!((cpu.fit.intercept - 1.37).abs() < 1e-6);
        assert!((cpu.predict(540.0) - 16.49).abs() < 0.05);
        let rps = cpu.rps_at_cpu(16.49).unwrap();
        assert!((rps - 540.0).abs() < 1.0);
    }

    #[test]
    fn latency_model_recovers_paper_quadratic() {
        let (store, pool) = synthetic_store(200);
        let obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(200)),
        )
        .unwrap();
        let lat = LatencyModel::fit(&obs).unwrap();
        assert!((lat.predict(540.0) - 31.6).abs() < 0.5, "paper forecast ~31.5 ms");
        assert!(lat.r_squared > 0.99);
    }

    #[test]
    fn latency_model_survives_outliers() {
        let (store, pool) = synthetic_store(200);
        let mut obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(200)),
        )
        .unwrap();
        // A deployment glitch: a run of wildly elevated readings.
        for i in 20..30 {
            obs.latency_p95_ms[i] += 200.0;
        }
        let lat = LatencyModel::fit(&obs).unwrap();
        assert!((lat.predict(540.0) - 31.6).abs() < 1.0, "RANSAC ignores the glitch");
        assert!(lat.inlier_fraction < 1.0);
    }

    #[test]
    fn filter_by_keeps_subset() {
        let (store, pool) = synthetic_store(50);
        let obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(50)),
        )
        .unwrap();
        let head = obs.filter_by(|i| i < 10);
        assert_eq!(head.len(), 10);
        assert_eq!(head.windows[9], WindowIndex(9));
    }

    #[test]
    fn total_rps_multiplies_out() {
        let (store, pool) = synthetic_store(5);
        let obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(5)),
        )
        .unwrap();
        let totals = obs.total_rps();
        assert!((totals[0] - obs.rps_per_server[0] * 4.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_accessors() {
        let (store, pool) = synthetic_store(100);
        let obs = PoolObservations::collect(
            &store,
            pool,
            WindowRange::new(WindowIndex(0), WindowIndex(100)),
        )
        .unwrap();
        let p50 = obs.rps_percentile(50.0).unwrap();
        let p95 = obs.rps_percentile(95.0).unwrap();
        assert!(p95 > p50);
        assert!(obs.rps_summary().unwrap().count() == 100);
    }
}
