//! The sizing interface shared by batch and streaming planners.
//!
//! The paper's pipeline produces one number per pool that everything else
//! (reports, resize automation, exhaustion projection) consumes: the minimum
//! server count meeting the QoS requirement at peak. [`PoolSizing`] is that
//! decision, and [`SizingPlanner`] is the interface any planner — the batch
//! [`crate::pipeline::CapacityPlanner`] or a streaming re-planner — exposes,
//! so downstream consumers do not care how the decision was derived.

use headroom_telemetry::ids::PoolId;

/// One pool's sizing decision, however it was computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSizing {
    /// The pool.
    pub pool: PoolId,
    /// Servers currently allocated.
    pub current_servers: usize,
    /// Minimum servers meeting the QoS requirement at peak workload.
    pub min_servers: usize,
    /// The peak total workload (RPS) the sizing was computed against.
    pub peak_total_rps: f64,
}

impl PoolSizing {
    /// Fraction of the current allocation that is headroom above the
    /// minimum: `(current − min) / current`, clamped at 0.
    pub fn headroom_fraction(&self) -> f64 {
        if self.current_servers == 0 {
            return 0.0;
        }
        let spare = self.current_servers.saturating_sub(self.min_servers);
        spare as f64 / self.current_servers as f64
    }

    /// Servers removable without violating QoS.
    pub fn removable_servers(&self) -> usize {
        self.current_servers.saturating_sub(self.min_servers)
    }
}

/// A planner able to report its current per-pool sizing decisions.
pub trait SizingPlanner {
    /// Short identifier for reports (e.g. `"batch"`, `"online"`).
    fn planner_name(&self) -> &'static str;

    /// Current sizing decisions, one per plannable pool, sorted by pool id.
    fn sizings(&self) -> Vec<PoolSizing>;

    /// The sizing for one pool, when it was plannable.
    fn sizing_for(&self, pool: PoolId) -> Option<PoolSizing> {
        self.sizings().into_iter().find(|s| s.pool == pool)
    }
}

impl SizingPlanner for crate::pipeline::PlanReport {
    fn planner_name(&self) -> &'static str {
        "batch"
    }

    fn sizings(&self) -> Vec<PoolSizing> {
        let mut rows: Vec<PoolSizing> = self
            .pools
            .iter()
            .map(|p| PoolSizing {
                pool: p.pool,
                current_servers: p.savings.current_servers,
                min_servers: p.savings.min_servers,
                peak_total_rps: p.savings.peak_total_rps,
            })
            .collect();
        rows.sort_by_key(|s| s.pool);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::PoolSavings;
    use crate::pipeline::{PlanReport, PoolPlan};

    #[test]
    fn headroom_fraction_basics() {
        let s = PoolSizing {
            pool: PoolId(0),
            current_servers: 20,
            min_servers: 14,
            peak_total_rps: 5_000.0,
        };
        assert!((s.headroom_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(s.removable_servers(), 6);
    }

    #[test]
    fn oversubscribed_pool_clamps_at_zero() {
        let s = PoolSizing {
            pool: PoolId(1),
            current_servers: 10,
            min_servers: 15,
            peak_total_rps: 9_000.0,
        };
        assert_eq!(s.headroom_fraction(), 0.0);
        assert_eq!(s.removable_servers(), 0);
        let empty =
            PoolSizing { pool: PoolId(2), current_servers: 0, min_servers: 0, peak_total_rps: 0.0 };
        assert_eq!(empty.headroom_fraction(), 0.0);
    }

    fn report_with(rows: &[(u32, usize, usize)]) -> PlanReport {
        let mut report = PlanReport::default();
        for &(pool, current, min) in rows {
            let savings = PoolSavings {
                pool: PoolId(pool),
                current_servers: current,
                min_servers: min,
                efficiency_savings: 0.0,
                latency_impact_ms: 0.0,
                online_savings: 0.0,
                total_savings: 0.0,
                peak_total_rps: 1_000.0,
                availability: 0.98,
            };
            report.pools.push(PoolPlan {
                pool: PoolId(pool),
                metric: crate::metric_validation::CounterScreen {
                    counter: headroom_telemetry::counter::CounterKind::RequestsPerSec,
                    fit: None,
                    r_squared: 0.99,
                    verdict: crate::metric_validation::MetricVerdict::Linear,
                    anomalous_windows: 0,
                },
                groups: crate::grouping::GroupSplit {
                    groups: vec![],
                    silhouette: 0.0,
                    scatter: vec![],
                },
                savings,
            });
        }
        report
    }

    #[test]
    fn plan_report_exposes_sizings_sorted() {
        let report = report_with(&[(2, 10, 8), (0, 30, 21)]);
        let sizings = report.sizings();
        assert_eq!(report.planner_name(), "batch");
        assert_eq!(sizings.len(), 2);
        assert_eq!(sizings[0].pool, PoolId(0));
        assert_eq!(sizings[0].min_servers, 21);
        assert_eq!(sizings[1].pool, PoolId(2));
        assert!(report.sizing_for(PoolId(2)).is_some());
        assert!(report.sizing_for(PoolId(9)).is_none());
    }
}
