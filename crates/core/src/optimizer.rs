//! Pool-capacity optimization — the Table IV machinery (§III-B).
//!
//! Savings decompose exactly as the paper reports them:
//!
//! - **Efficiency savings** ("Savings From Headroom Elimination"): run each
//!   pool with the fewest servers that keep peak-hour QoS within the SLO;
//! - **Online savings** ("Savings From Improving Server Availability"):
//!   lift every pool's maintenance practice to the well-managed 98% level,
//!   reclaiming the capacity currently parked to cover planned downtime.

use headroom_telemetry::availability::AvailabilityLog;
use headroom_telemetry::ids::{PoolId, ServerId};
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::WindowRange;

use crate::curves::PoolObservations;
use crate::error::PlanError;
use crate::forecast::CapacityForecaster;
use crate::slo::QosRequirement;

/// The availability achievable with well-managed rolling maintenance
/// (paper: "one minus the availability of the most available servers
/// (100% − 98% = 2%)").
pub const WELL_MANAGED_AVAILABILITY: f64 = 0.98;

/// The Table IV row for one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSavings {
    /// The pool.
    pub pool: PoolId,
    /// Servers currently allocated (max active over the observation range).
    pub current_servers: usize,
    /// Minimum servers meeting the QoS requirement at peak.
    pub min_servers: usize,
    /// Fraction of servers removable without violating QoS.
    pub efficiency_savings: f64,
    /// Added p95 latency at peak after right-sizing (ms).
    pub latency_impact_ms: f64,
    /// Fraction reclaimable by adopting well-managed maintenance.
    pub online_savings: f64,
    /// Sum of both savings (the paper's "Total Savings" column).
    pub total_savings: f64,
    /// Peak total workload the sizing was computed against (RPS).
    pub peak_total_rps: f64,
    /// Observed mean availability of the pool.
    pub availability: f64,
}

/// Computes one pool's savings row.
///
/// `availability_days` bounds the daily-availability average; pass the
/// number of simulated days.
///
/// # Errors
///
/// Propagates observation-collection and fitting errors; SLO-unreachable
/// pools yield zero efficiency savings rather than an error.
pub fn optimize_pool(
    store: &MetricStore,
    availability: &AvailabilityLog,
    pool: PoolId,
    range: WindowRange,
    qos: &QosRequirement,
    availability_days: u64,
) -> Result<PoolSavings, PlanError> {
    let obs = PoolObservations::collect(store, pool, range)?;
    let forecaster = CapacityForecaster::fit(&obs)?;

    let current_servers =
        obs.active_servers.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)).round().max(1.0)
            as usize;

    // Plan against the 99th percentile of total workload: effectively the
    // peak, robust to a stray noisy window.
    let totals = obs.total_rps();
    let peak_total = headroom_stats::percentile::percentile(&totals, 99.0)?;
    let current_peak_rps_per_server = peak_total / current_servers as f64;

    // Efficiency savings are computed on the *fractional* server
    // requirement: Table IV aggregates across datacenters, and integer
    // rounding on small pools would otherwise swamp the signal. The
    // `min_servers` column stays a whole allocation.
    let (min_servers, efficiency_savings, latency_impact) = match forecaster.max_rps_per_server(qos)
    {
        Ok(rps_at_slo) => {
            let fractional = (peak_total / rps_at_slo).clamp(1e-9, current_servers as f64);
            let n = (fractional.ceil() as usize).min(current_servers).max(1);
            let before = forecaster.at_rps(current_peak_rps_per_server).latency_p95_ms;
            let after = forecaster.at_rps(peak_total / fractional).latency_p95_ms;
            let savings = (1.0 - fractional / current_servers as f64).max(0.0);
            (n, savings, (after - before).max(0.0))
        }
        // SLO unreachable by the fitted curve: keep current allocation.
        Err(PlanError::InvalidParameter(_)) | Err(PlanError::Stats(_)) => {
            (current_servers, 0.0, 0.0)
        }
        Err(e) => return Err(e),
    };

    let members: Vec<ServerId> = store.servers_in_pool(pool).to_vec();
    let series = availability.pool_daily_series(&members, availability_days);
    let pool_availability = if series.is_empty() {
        WELL_MANAGED_AVAILABILITY
    } else {
        series.iter().map(|(_, a)| a).sum::<f64>() / series.len() as f64
    };
    let online_savings =
        ((WELL_MANAGED_AVAILABILITY - pool_availability) / WELL_MANAGED_AVAILABILITY).max(0.0);

    Ok(PoolSavings {
        pool,
        current_servers,
        min_servers,
        efficiency_savings,
        latency_impact_ms: latency_impact,
        online_savings,
        total_savings: efficiency_savings + online_savings,
        peak_total_rps: peak_total,
        availability: pool_availability,
    })
}

/// Aggregated savings across pools (the Table IV footer).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SavingsReport {
    /// Per-pool rows.
    pub rows: Vec<PoolSavings>,
}

impl SavingsReport {
    /// Server-weighted mean efficiency savings.
    pub fn efficiency_savings(&self) -> f64 {
        self.weighted(|r| r.efficiency_savings)
    }

    /// Server-weighted mean online savings.
    pub fn online_savings(&self) -> f64 {
        self.weighted(|r| r.online_savings)
    }

    /// Server-weighted mean total savings.
    pub fn total_savings(&self) -> f64 {
        self.weighted(|r| r.total_savings)
    }

    /// Unweighted mean latency impact (the paper reports "avg 5 ms").
    pub fn mean_latency_impact_ms(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.latency_impact_ms).sum::<f64>() / self.rows.len() as f64
    }

    /// Total servers represented.
    pub fn total_servers(&self) -> usize {
        self.rows.iter().map(|r| r.current_servers).sum()
    }

    /// Servers removable in total.
    pub fn removable_servers(&self) -> f64 {
        self.rows.iter().map(|r| r.current_servers as f64 * r.total_savings).sum()
    }

    fn weighted<F: Fn(&PoolSavings) -> f64>(&self, f: F) -> f64 {
        let total: usize = self.total_servers();
        if total == 0 {
            return 0.0;
        }
        self.rows.iter().map(|r| f(r) * r.current_servers as f64).sum::<f64>() / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::counter::CounterKind;
    use headroom_telemetry::ids::DatacenterId;
    use headroom_telemetry::time::{WindowIndex, WINDOWS_PER_DAY};

    /// A pool with plenty of headroom: peak latency well under the SLO.
    fn overprovisioned_store(
        servers: u32,
        peak_rps_per_server: f64,
    ) -> (MetricStore, AvailabilityLog, PoolId) {
        let mut store = MetricStore::new();
        let mut avail = AvailabilityLog::new();
        let pool = PoolId(0);
        for s in 0..servers {
            store.register_server(ServerId(s), pool, DatacenterId(0));
        }
        for w in 0..WINDOWS_PER_DAY {
            let phase = (w as f64 / WINDOWS_PER_DAY as f64) * std::f64::consts::TAU;
            let rps = peak_rps_per_server * (0.55 + 0.45 * phase.cos()).max(0.05);
            for s in 0..servers {
                let sid = ServerId(s);
                store.record(sid, CounterKind::RequestsPerSec, WindowIndex(w), rps);
                store.record(sid, CounterKind::CpuPercent, WindowIndex(w), 0.028 * rps + 1.37);
                store.record(
                    sid,
                    CounterKind::LatencyP95Ms,
                    WindowIndex(w),
                    4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                );
                avail.record(sid, WindowIndex(w), true);
            }
        }
        (store, avail, pool)
    }

    #[test]
    fn finds_headroom_in_overprovisioned_pool() {
        let (store, avail, pool) = overprovisioned_store(30, 380.0);
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let s = optimize_pool(&store, &avail, pool, WindowRange::days(1.0), &qos, 1).unwrap();
        assert_eq!(s.current_servers, 30);
        // Pool B shape: roughly a third of servers removable at +2 ms.
        assert!((s.efficiency_savings - 0.33).abs() < 0.08, "efficiency {}", s.efficiency_savings);
        assert!(
            s.latency_impact_ms > 0.3 && s.latency_impact_ms < 5.0,
            "impact {}",
            s.latency_impact_ms
        );
        // Fully available pool ⇒ no online savings.
        assert!(s.online_savings < 0.001);
        assert!((s.total_savings - s.efficiency_savings).abs() < 1e-9);
    }

    #[test]
    fn tight_slo_means_no_savings() {
        let (store, avail, pool) = overprovisioned_store(30, 380.0);
        // SLO exactly at the observed peak latency: nothing to remove.
        let peak_lat = 4.028e-5 * 380.0f64.powi(2) - 0.031 * 380.0 + 36.68;
        let qos = QosRequirement::latency(peak_lat + 0.01).with_cpu_ceiling(90.0);
        let s = optimize_pool(&store, &avail, pool, WindowRange::days(1.0), &qos, 1).unwrap();
        // Planning against the p99 of total workload leaves a sliver of
        // fractional savings even at a just-met SLO; it stays marginal.
        assert!(s.efficiency_savings < 0.08, "savings {}", s.efficiency_savings);
    }

    #[test]
    fn unreachable_slo_keeps_current_size() {
        let (store, avail, pool) = overprovisioned_store(10, 380.0);
        let qos = QosRequirement::latency(1.0); // below the latency floor
        let s = optimize_pool(&store, &avail, pool, WindowRange::days(1.0), &qos, 1).unwrap();
        assert_eq!(s.min_servers, s.current_servers);
        assert_eq!(s.efficiency_savings, 0.0);
    }

    #[test]
    fn poor_availability_yields_online_savings() {
        let (store, _, pool) = overprovisioned_store(10, 380.0);
        // Fresh availability log: 90% of windows online.
        let mut avail = AvailabilityLog::new();
        for s in 0..10u32 {
            for w in 0..100u64 {
                avail.record(ServerId(s), WindowIndex(w), w % 10 != 0);
            }
        }
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let s = optimize_pool(&store, &avail, pool, WindowRange::days(1.0), &qos, 1).unwrap();
        assert!(s.online_savings > 0.05, "online {}", s.online_savings);
        assert!(s.total_savings > s.efficiency_savings);
    }

    #[test]
    fn report_weights_by_pool_size() {
        let row = |pool: u32, servers: usize, eff: f64| PoolSavings {
            pool: PoolId(pool),
            current_servers: servers,
            min_servers: servers - (servers as f64 * eff) as usize,
            efficiency_savings: eff,
            latency_impact_ms: 2.0,
            online_savings: 0.0,
            total_savings: eff,
            peak_total_rps: 1000.0,
            availability: 0.98,
        };
        let report = SavingsReport { rows: vec![row(0, 100, 0.3), row(1, 300, 0.1)] };
        // Weighted: (0.3*100 + 0.1*300) / 400 = 0.15.
        assert!((report.efficiency_savings() - 0.15).abs() < 1e-12);
        assert_eq!(report.total_servers(), 400);
        assert!((report.removable_servers() - 60.0).abs() < 1e-9);
        assert_eq!(report.mean_latency_impact_ms(), 2.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = SavingsReport::default();
        assert_eq!(report.total_savings(), 0.0);
        assert_eq!(report.mean_latency_impact_ms(), 0.0);
    }
}
