//! Workload-growth forecasting.
//!
//! §II: "Capacity planners use this in conjunction with **workload trends**,
//! expected failure rates, and QoS business requirements to determine how
//! many servers are needed." The response curves answer "how many servers
//! per unit of workload"; this module answers "how much workload, when" —
//! a linear trend over daily peak demand, extrapolated to a planning
//! horizon, with a guard against extrapolating far beyond the observed
//! history (the same discipline the paper applies to its latency curves).

use headroom_stats::LinearFit;

use crate::curves::PoolObservations;
use crate::error::PlanError;
use crate::forecast::CapacityForecaster;
use crate::slo::QosRequirement;

/// A linear trend over daily peak workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthModel {
    /// Fitted peak-demand trend (x = day index, y = peak total RPS).
    pub trend: LinearFit,
    /// Days of history the trend was fitted on.
    pub history_days: usize,
}

impl GrowthModel {
    /// Fits the trend from per-day peak totals.
    ///
    /// # Errors
    ///
    /// - [`PlanError::InsufficientData`] with fewer than 3 daily peaks.
    /// - Propagated fit errors.
    pub fn fit(daily_peaks: &[f64]) -> Result<Self, PlanError> {
        if daily_peaks.len() < 3 {
            return Err(PlanError::InsufficientData {
                what: "growth trend",
                needed: 3,
                got: daily_peaks.len(),
            });
        }
        let xs: Vec<f64> = (0..daily_peaks.len()).map(|i| i as f64).collect();
        let trend = LinearFit::fit(&xs, daily_peaks)?;
        Ok(GrowthModel { trend, history_days: daily_peaks.len() })
    }

    /// Extracts daily peak totals from pool observations and fits.
    ///
    /// # Errors
    ///
    /// As in [`GrowthModel::fit`].
    pub fn fit_from_observations(obs: &PoolObservations) -> Result<Self, PlanError> {
        let totals = obs.total_rps();
        let mut daily: Vec<f64> = Vec::new();
        let mut current_day = None;
        let mut peak = 0.0f64;
        for (i, w) in obs.windows.iter().enumerate() {
            let day = w.day();
            if current_day != Some(day) {
                if current_day.is_some() {
                    daily.push(peak);
                }
                current_day = Some(day);
                peak = 0.0;
            }
            peak = peak.max(totals[i]);
        }
        if current_day.is_some() {
            daily.push(peak);
        }
        GrowthModel::fit(&daily)
    }

    /// Forecast peak total workload `days_ahead` days past the history end.
    ///
    /// # Errors
    ///
    /// [`PlanError::InvalidParameter`] when the horizon exceeds 4× the
    /// observed history — the paper's own rule that extrapolations far past
    /// the data cannot be trusted.
    pub fn forecast_peak(&self, days_ahead: f64) -> Result<f64, PlanError> {
        if days_ahead < 0.0 || !days_ahead.is_finite() {
            return Err(PlanError::InvalidParameter("horizon must be non-negative"));
        }
        if days_ahead > 4.0 * self.history_days as f64 {
            return Err(PlanError::InvalidParameter(
                "horizon exceeds 4x the observed history; collect more data",
            ));
        }
        Ok(self.trend.predict(self.history_days as f64 - 1.0 + days_ahead).max(0.0))
    }

    /// Daily growth as a fraction of the current peak (e.g. `0.002` = 0.2%
    /// per day).
    pub fn daily_growth_rate(&self) -> f64 {
        let current = self.trend.predict(self.history_days as f64 - 1.0);
        if current <= 0.0 {
            return 0.0;
        }
        self.trend.slope / current
    }

    /// Minimum servers needed `days_ahead` days out, combining the growth
    /// trend with the pool's fitted response curves.
    ///
    /// # Errors
    ///
    /// Propagates forecast and sizing errors.
    pub fn min_servers_at(
        &self,
        forecaster: &CapacityForecaster,
        qos: &QosRequirement,
        days_ahead: f64,
        failure_headroom: f64,
    ) -> Result<usize, PlanError> {
        let peak = self.forecast_peak(days_ahead)?;
        forecaster.min_servers(peak, qos, failure_headroom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_stats::Polynomial;

    fn forecaster() -> CapacityForecaster {
        CapacityForecaster {
            cpu: crate::curves::CpuModel {
                fit: LinearFit { slope: 0.028, intercept: 1.37, r_squared: 0.98, n: 100 },
            },
            latency: crate::curves::LatencyModel {
                poly: Polynomial::new(vec![36.68, -0.031, 4.028e-5]),
                r_squared: 0.9,
                n: 100,
                inlier_fraction: 1.0,
            },
        }
    }

    #[test]
    fn fits_linear_growth() {
        // 1% absolute growth per day on a 10k base.
        let peaks: Vec<f64> = (0..30).map(|d| 10_000.0 + 100.0 * d as f64).collect();
        let g = GrowthModel::fit(&peaks).unwrap();
        assert!((g.trend.slope - 100.0).abs() < 1e-6);
        let in_90 = g.forecast_peak(90.0).unwrap();
        assert!((in_90 - (10_000.0 + 100.0 * 119.0)).abs() < 1e-6);
        assert!((g.daily_growth_rate() - 100.0 / 12_900.0).abs() < 1e-6);
    }

    #[test]
    fn horizon_guard() {
        let peaks: Vec<f64> = (0..10).map(|d| 1000.0 + d as f64).collect();
        let g = GrowthModel::fit(&peaks).unwrap();
        assert!(g.forecast_peak(40.0).is_ok());
        assert!(matches!(g.forecast_peak(41.0), Err(PlanError::InvalidParameter(_))));
        assert!(g.forecast_peak(f64::NAN).is_err());
    }

    #[test]
    fn too_little_history_rejected() {
        assert!(matches!(GrowthModel::fit(&[1.0, 2.0]), Err(PlanError::InsufficientData { .. })));
    }

    #[test]
    fn shrinking_demand_clamps_at_zero() {
        let peaks: Vec<f64> = (0..10).map(|d| 1000.0 - 150.0 * d as f64).collect();
        let g = GrowthModel::fit(&peaks).unwrap();
        assert_eq!(g.forecast_peak(20.0).unwrap(), 0.0);
    }

    #[test]
    fn growth_feeds_capacity_sizing() {
        let peaks: Vec<f64> = (0..30).map(|d| 50_000.0 * (1.0 + 0.005 * d as f64)).collect();
        let g = GrowthModel::fit(&peaks).unwrap();
        let f = forecaster();
        let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
        let now = g.min_servers_at(&f, &qos, 0.0, 0.05).unwrap();
        let in_90 = g.min_servers_at(&f, &qos, 90.0, 0.05).unwrap();
        assert!(in_90 > now, "growth demands more servers: {now} -> {in_90}");
        // ~45% more demand in 90 days at 0.5%/day of the base.
        let ratio = in_90 as f64 / now as f64;
        assert!((ratio - 1.39).abs() < 0.1, "ratio {ratio:.2}");
    }

    #[test]
    fn fit_from_observations_extracts_daily_peaks() {
        use headroom_telemetry::ids::PoolId;
        use headroom_telemetry::time::WindowIndex;
        // Three days, each with a midday peak that grows 10% per day.
        let mut obs = PoolObservations { pool: PoolId(0), ..Default::default() };
        for day in 0..4u64 {
            for w in 0..720u64 {
                let phase = (w as f64 / 720.0) * std::f64::consts::TAU;
                let demand = 100.0 * (1.0 + 0.1 * day as f64) * (0.5 - 0.5 * phase.cos()).max(0.0);
                obs.windows.push(WindowIndex(day * 720 + w));
                obs.rps_per_server.push(demand);
                obs.cpu_pct.push(1.0);
                obs.latency_p95_ms.push(1.0);
                obs.active_servers.push(10.0);
            }
        }
        let g = GrowthModel::fit_from_observations(&obs).unwrap();
        assert_eq!(g.history_days, 4);
        // Peak totals: 1000, 1100, 1200, 1300 -> slope 100/day.
        assert!((g.trend.slope - 100.0).abs() < 1.0, "slope {}", g.trend.slope);
    }
}
