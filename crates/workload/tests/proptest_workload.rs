//! Property tests for workload-generation invariants.

use headroom_telemetry::ids::DatacenterId;
use headroom_telemetry::time::{SimTime, WindowIndex, WindowRange};
use headroom_workload::events::{EventEffect, EventScript, ScheduledEvent};
use headroom_workload::stepped::SteppedLoad;
use headroom_workload::synthetic::SyntheticWorkload;
use headroom_workload::trace::{TraceWindow, WorkloadTrace};
use headroom_workload::DiurnalCurve;
use proptest::prelude::*;

proptest! {
    /// The diurnal curve is non-negative everywhere and periodic over a week.
    #[test]
    fn diurnal_nonnegative_and_periodic(
        base in 0.0f64..1e5,
        amplitude in 0.0f64..1.0,
        peak_hour in 0.0f64..24.0,
        probe_hours in 0.0f64..24.0,
    ) {
        let curve = DiurnalCurve::new(base)
            .with_amplitude(amplitude)
            .with_peak_hour(peak_hour)
            .with_noise(0.0);
        let t1 = SimTime::from_hours(probe_hours);
        let t2 = SimTime::from_hours(probe_hours + 7.0 * 24.0);
        prop_assert!(curve.mean_demand(t1) >= 0.0);
        prop_assert!((curve.mean_demand(t1) - curve.mean_demand(t2)).abs() < 1e-9);
    }

    /// with_peak_demand always hits its target regardless of curve shape.
    #[test]
    fn peak_rescaling_exact(
        base in 0.1f64..1e4,
        amplitude in 0.0f64..1.0,
        target in 0.1f64..1e6,
    ) {
        let curve = DiurnalCurve::new(base)
            .with_amplitude(amplitude)
            .with_peak_demand(target);
        prop_assert!((curve.peak_demand() - target).abs() < 1e-6 * target);
    }

    /// Stacked demand multipliers compose multiplicatively and expire.
    #[test]
    fn event_factors_compose(
        f1 in 0.1f64..5.0,
        f2 in 0.1f64..5.0,
        start in 0u64..10_000,
        duration in 1u64..5_000,
    ) {
        let dc = DatacenterId(0);
        let script = EventScript::new(vec![
            ScheduledEvent::new(SimTime(start), duration, EventEffect::DemandMultiplier {
                datacenter: dc,
                factor: f1,
            }),
            ScheduledEvent::new(SimTime(start), duration, EventEffect::GlobalDemandMultiplier {
                factor: f2,
            }),
        ]);
        let mid = SimTime(start + duration / 2);
        prop_assert!((script.demand_factor(dc, mid) - f1 * f2).abs() < 1e-12);
        let after = SimTime(start + duration + 1);
        prop_assert_eq!(script.demand_factor(dc, after), 1.0);
    }

    /// A stepped ramp is monotone non-decreasing and covers its windows.
    #[test]
    fn ramp_monotone(base in 0.0f64..1e4, step in 0.0f64..1e3, steps in 1usize..20, hold in 1usize..30) {
        let ramp = SteppedLoad::new(base, step, steps, hold);
        let levels = ramp.levels();
        for w in levels.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert_eq!(ramp.total_windows(), steps * hold);
        let trace = ramp.to_trace(WindowIndex(0));
        prop_assert_eq!(trace.len(), steps * hold);
        prop_assert_eq!(trace.windows()[0].rps, base);
    }

    /// A synthetic model fit from its own generated output stays equivalent
    /// (fixed-point property of step 3).
    #[test]
    fn synthetic_fixed_point(base in 10.0f64..5_000.0, amp in 0.0f64..0.6, seed in 0u64..50) {
        let production: WorkloadTrace = (0..1440u64)
            .map(|w| {
                let hour = WindowIndex(w).midpoint().hour_of_day();
                let rps = base
                    * (1.0 + amp * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos());
                TraceWindow { window: WindowIndex(w), rps, class_fractions: vec![0.6, 0.4] }
            })
            .collect();
        let model = SyntheticWorkload::fit(&production).unwrap();
        let generated = model.generate(WindowRange::days(1.0), seed);
        let refit = SyntheticWorkload::fit(&generated).unwrap();
        let report = refit.equivalence(&model.generate(WindowRange::days(1.0), seed + 1));
        prop_assert!(report.is_equivalent(), "{report:?}");
    }
}
