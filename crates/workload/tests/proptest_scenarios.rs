//! Property tests for the adversarial scenario generators: deterministic
//! per seed, always well-formed, seed-sensitive, and analytic-curve sane
//! for arbitrary seeds and fleet shapes.

use headroom_telemetry::time::WINDOWS_PER_DAY;
use headroom_workload::scenarios::{self, HYPERGROWTH_DAYS};
use proptest::prelude::*;

proptest! {
    /// Generators are pure functions of `(seed, datacenters)`: calling the
    /// catalog twice yields structurally identical scenarios.
    #[test]
    fn catalog_is_deterministic_per_seed(seed in any::<u64>(), dcs in 1u16..10) {
        prop_assert_eq!(scenarios::catalog(seed, dcs), scenarios::catalog(seed, dcs));
    }

    /// Every generated scenario is well-formed against the fleet it was
    /// generated for: no overlapping conflicting effects, positive finite
    /// multipliers, in-bounds datacenter references — and its onset leaves
    /// at least one full warm-up day before the adversarial condition.
    #[test]
    fn catalog_always_validates(seed in any::<u64>(), dcs in 1u16..10) {
        for sc in scenarios::catalog(seed, dcs) {
            prop_assert_eq!(sc.validate(dcs), Ok(()), "{} invalid", sc.name());
            prop_assert!(sc.onset_window().0 >= WINDOWS_PER_DAY, "{} onsets too early", sc.name());
            prop_assert!(sc.windows() > sc.onset_window().0, "{} ends before onset", sc.name());
        }
    }

    /// Datacenter references are actually bounds-checked: a DC-targeting
    /// scenario validated against an empty fleet is rejected.
    #[test]
    fn validate_bounds_datacenter_references(seed in any::<u64>(), dcs in 1u16..10) {
        let sc = scenarios::regional_failover(seed, dcs);
        prop_assert!(sc.validate(0).is_err());
    }

    /// Different seeds move the generated parameters (onset jitter and
    /// magnitude draws), so fleets are not silently scored on one fixture.
    #[test]
    fn seeds_decorrelate_the_catalog(seed1 in any::<u64>(), seed2 in any::<u64>(), dcs in 1u16..10) {
        prop_assume!(seed1 != seed2);
        prop_assert_ne!(scenarios::catalog(seed1, dcs), scenarios::catalog(seed2, dcs));
    }

    /// The hypergrowth analytic curve is genuinely superlinear for every
    /// seed: day-over-day increments strictly increase, and the curve
    /// starts at exactly 1× on day zero.
    #[test]
    fn hypergrowth_curve_is_superlinear(seed in any::<u64>(), dcs in 1u16..10) {
        let sc = scenarios::hypergrowth(seed, dcs);
        let g = sc.growth().expect("hypergrowth carries its curve");
        prop_assert!((g.factor(0.0) - 1.0).abs() < 1e-12);
        let mut last_step = 0.0;
        for d in 1..=HYPERGROWTH_DAYS {
            let step = g.factor(d as f64) - g.factor(d as f64 - 1.0);
            prop_assert!(step > last_step, "increment shrank on day {d}");
            last_step = step;
        }
    }
}
