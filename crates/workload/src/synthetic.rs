//! Synthetic replayable workloads (methodology step 3).
//!
//! §II-C: "we first verify our synthetically produced workload causes the
//! same QoS and resource usage relationship we observe in our measurements
//! of production server pools. … Without matching the synthetic workloads to
//! the production workload, it would only be possible to detect that a
//! change in capacity or latency had happened, but not its magnitude."
//!
//! A [`SyntheticWorkload`] is *fit* from a recorded production trace — the
//! hour-of-day volume envelope, the residual noise level, and the request
//! mix — and can then be replayed deterministically against an offline pool.
//! [`SyntheticWorkload::equivalence`] quantifies how well a generated trace
//! matches production.

use std::error::Error;
use std::fmt;

use headroom_telemetry::time::{WindowIndex, WindowRange};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::diurnal::gaussian;
use crate::trace::{TraceWindow, WorkloadTrace};

/// Error produced when fitting or validating synthetic workloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SyntheticError {
    /// The production trace was empty.
    EmptyTrace,
    /// The trace was too short to estimate an envelope.
    InsufficientData {
        /// Windows required.
        needed: usize,
        /// Windows available.
        got: usize,
    },
}

impl fmt::Display for SyntheticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntheticError::EmptyTrace => write!(f, "production trace is empty"),
            SyntheticError::InsufficientData { needed, got } => {
                write!(f, "need at least {needed} trace windows, got {got}")
            }
        }
    }
}

impl Error for SyntheticError {}

/// Number of hour-of-day buckets in the volume envelope.
const ENVELOPE_BUCKETS: usize = 24;

/// A replayable synthetic workload fit from a production trace.
///
/// # Example
///
/// ```
/// use headroom_telemetry::time::{WindowIndex, WindowRange};
/// use headroom_workload::synthetic::SyntheticWorkload;
/// use headroom_workload::trace::{TraceWindow, WorkloadTrace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A production day: sinusoidal demand.
/// let trace: WorkloadTrace = (0..720u64)
///     .map(|w| TraceWindow {
///         window: WindowIndex(w),
///         rps: 100.0 + 50.0 * (w as f64 / 720.0 * std::f64::consts::TAU).sin(),
///         class_fractions: vec![0.8, 0.2],
///     })
///     .collect();
/// let synth = SyntheticWorkload::fit(&trace)?;
/// let replay = synth.generate(WindowRange::days(1.0), 7);
/// let report = synth.equivalence(&replay);
/// assert!(report.is_equivalent());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// Mean RPS per hour-of-day bucket.
    envelope: [f64; ENVELOPE_BUCKETS],
    /// Relative residual noise (std of residual / mean).
    noise: f64,
    /// Mean request-class fractions (empty when the trace had none).
    class_fractions: Vec<f64>,
}

impl SyntheticWorkload {
    /// Fits the synthetic model from a production trace.
    ///
    /// # Errors
    ///
    /// - [`SyntheticError::EmptyTrace`] when `production` is empty.
    /// - [`SyntheticError::InsufficientData`] when fewer than 24 windows
    ///   (the envelope needs at least one sample per hour on average).
    pub fn fit(production: &WorkloadTrace) -> Result<Self, SyntheticError> {
        if production.is_empty() {
            return Err(SyntheticError::EmptyTrace);
        }
        if production.len() < ENVELOPE_BUCKETS {
            return Err(SyntheticError::InsufficientData {
                needed: ENVELOPE_BUCKETS,
                got: production.len(),
            });
        }
        let mut sums = [0.0f64; ENVELOPE_BUCKETS];
        let mut counts = [0usize; ENVELOPE_BUCKETS];
        for w in production.windows() {
            let hour = w.window.midpoint().hour_of_day() as usize % ENVELOPE_BUCKETS;
            sums[hour] += w.rps;
            counts[hour] += 1;
        }
        let overall_mean = production.mean_rps().max(f64::MIN_POSITIVE);
        let mut envelope = [0.0f64; ENVELOPE_BUCKETS];
        for h in 0..ENVELOPE_BUCKETS {
            envelope[h] = if counts[h] > 0 { sums[h] / counts[h] as f64 } else { overall_mean };
        }
        // Residual noise relative to the envelope.
        let mut ss = 0.0;
        for w in production.windows() {
            let hour = w.window.midpoint().hour_of_day() as usize % ENVELOPE_BUCKETS;
            let resid = (w.rps - envelope[hour]) / overall_mean;
            ss += resid * resid;
        }
        let noise = (ss / production.len() as f64).sqrt();
        Ok(SyntheticWorkload {
            envelope,
            noise,
            class_fractions: production.mean_class_fractions(),
        })
    }

    /// The fitted hour-of-day envelope (mean RPS per hour bucket).
    pub fn envelope(&self) -> &[f64] {
        &self.envelope
    }

    /// Fitted relative noise level.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Fitted mean request-class fractions.
    pub fn class_fractions(&self) -> &[f64] {
        &self.class_fractions
    }

    /// Expected (noise-free) RPS for a window, by hour-of-day with linear
    /// interpolation between hourly buckets.
    pub fn expected_rps(&self, window: WindowIndex) -> f64 {
        let h = window.midpoint().hour_of_day();
        let lo = h.floor() as usize % ENVELOPE_BUCKETS;
        let hi = (lo + 1) % ENVELOPE_BUCKETS;
        let frac = h - h.floor();
        self.envelope[lo] * (1.0 - frac) + self.envelope[hi] * frac
    }

    /// Generates a replayable trace over `range` with deterministic noise.
    pub fn generate(&self, range: WindowRange, seed: u64) -> WorkloadTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = self.envelope.iter().sum::<f64>() / ENVELOPE_BUCKETS as f64;
        range
            .iter()
            .map(|w| {
                let base = self.expected_rps(w);
                let rps = (base + gaussian(&mut rng) * self.noise * mean).max(0.0);
                TraceWindow { window: w, rps, class_fractions: self.class_fractions.clone() }
            })
            .collect()
    }

    /// Compares a trace against this model — methodology step 3's
    /// "equivalent QoS and resource usage compared to production?" gate,
    /// applied at the workload level.
    pub fn equivalence(&self, trace: &WorkloadTrace) -> EquivalenceReport {
        if trace.is_empty() {
            return EquivalenceReport {
                volume_error: 1.0,
                envelope_error: 1.0,
                mix_divergence: 1.0,
            };
        }
        let model_mean = self.envelope.iter().sum::<f64>() / ENVELOPE_BUCKETS as f64;
        let volume_error =
            if model_mean > 0.0 { (trace.mean_rps() - model_mean).abs() / model_mean } else { 0.0 };

        // Per-hour envelope comparison.
        let mut sums = [0.0f64; ENVELOPE_BUCKETS];
        let mut counts = [0usize; ENVELOPE_BUCKETS];
        for w in trace.windows() {
            let hour = w.window.midpoint().hour_of_day() as usize % ENVELOPE_BUCKETS;
            sums[hour] += w.rps;
            counts[hour] += 1;
        }
        let mut err = 0.0;
        let mut measured = 0usize;
        for h in 0..ENVELOPE_BUCKETS {
            if counts[h] == 0 {
                continue;
            }
            let obs = sums[h] / counts[h] as f64;
            if model_mean > 0.0 {
                err += (obs - self.envelope[h]).abs() / model_mean;
            }
            measured += 1;
        }
        let envelope_error = if measured > 0 { err / measured as f64 } else { 1.0 };

        let observed_mix = trace.mean_class_fractions();
        let mix_divergence = if self.class_fractions.is_empty() && observed_mix.is_empty() {
            0.0
        } else if self.class_fractions.len() != observed_mix.len() {
            1.0
        } else {
            self.class_fractions
                .iter()
                .zip(&observed_mix)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };

        EquivalenceReport { volume_error, envelope_error, mix_divergence }
    }
}

/// How closely a trace matches a fitted synthetic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalenceReport {
    /// Relative error of overall mean volume.
    pub volume_error: f64,
    /// Mean relative error of the hour-of-day envelope.
    pub envelope_error: f64,
    /// Max absolute difference in request-class fractions.
    pub mix_divergence: f64,
}

impl EquivalenceReport {
    /// Default acceptance: volume within 5%, envelope within 10%, mix
    /// within 0.05 — loose enough for noise, tight enough to catch a wrong
    /// distribution.
    pub fn is_equivalent(&self) -> bool {
        self.within(0.05, 0.10, 0.05)
    }

    /// Acceptance at caller-chosen tolerances.
    pub fn within(&self, volume_tol: f64, envelope_tol: f64, mix_tol: f64) -> bool {
        self.volume_error <= volume_tol
            && self.envelope_error <= envelope_tol
            && self.mix_divergence <= mix_tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_trace(days: u64, base: f64) -> WorkloadTrace {
        (0..days * 720)
            .map(|w| {
                let hour = WindowIndex(w).midpoint().hour_of_day();
                let rps = base * (1.0 + 0.4 * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos());
                TraceWindow { window: WindowIndex(w), rps, class_fractions: vec![0.75, 0.25] }
            })
            .collect()
    }

    #[test]
    fn fit_recovers_envelope() {
        let trace = diurnal_trace(2, 200.0);
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        // Peak bucket (14h) should be near 200*(1.4) = 280.
        assert!((synth.envelope()[14] - 280.0).abs() < 8.0, "got {}", synth.envelope()[14]);
        // Trough bucket (2h) near 200*0.6 = 120.
        assert!((synth.envelope()[2] - 120.0).abs() < 8.0, "got {}", synth.envelope()[2]);
        assert!(synth.noise() < 0.05, "noise-free trace: {}", synth.noise());
        assert_eq!(synth.class_fractions(), &[0.75, 0.25]);
    }

    #[test]
    fn generated_trace_is_equivalent() {
        let trace = diurnal_trace(3, 150.0);
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        let replay = synth.generate(WindowRange::days(1.0), 99);
        let report = synth.equivalence(&replay);
        assert!(report.is_equivalent(), "{report:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        let trace = diurnal_trace(1, 100.0);
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        let a = synth.generate(WindowRange::days(0.5), 1);
        let b = synth.generate(WindowRange::days(0.5), 1);
        assert_eq!(a, b);
        let c = synth.generate(WindowRange::days(0.5), 2);
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn wrong_volume_fails_equivalence() {
        let trace = diurnal_trace(1, 100.0);
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        let double = diurnal_trace(1, 200.0);
        let report = synth.equivalence(&double);
        assert!(!report.is_equivalent());
        assert!(report.volume_error > 0.5);
    }

    #[test]
    fn wrong_mix_fails_equivalence() {
        let trace = diurnal_trace(1, 100.0);
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        // Rebuild the same trace with a shifted mix.
        let shifted: WorkloadTrace = diurnal_trace(1, 100.0)
            .windows()
            .iter()
            .map(|w| TraceWindow {
                window: w.window,
                rps: w.rps,
                class_fractions: vec![0.25, 0.75],
            })
            .collect();
        let report = synth.equivalence(&shifted);
        assert!(report.mix_divergence > 0.4);
        assert!(!report.is_equivalent());
    }

    #[test]
    fn empty_trace_rejected() {
        assert_eq!(
            SyntheticWorkload::fit(&WorkloadTrace::new()).unwrap_err(),
            SyntheticError::EmptyTrace
        );
    }

    #[test]
    fn short_trace_rejected() {
        let short: WorkloadTrace = (0..10u64)
            .map(|w| TraceWindow { window: WindowIndex(w), rps: 1.0, class_fractions: vec![] })
            .collect();
        assert!(matches!(
            SyntheticWorkload::fit(&short),
            Err(SyntheticError::InsufficientData { .. })
        ));
    }

    #[test]
    fn equivalence_of_empty_trace_is_failure() {
        let trace = diurnal_trace(1, 100.0);
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        let report = synth.equivalence(&WorkloadTrace::new());
        assert!(!report.is_equivalent());
    }

    #[test]
    fn expected_rps_interpolates() {
        let trace = diurnal_trace(1, 100.0);
        let synth = SyntheticWorkload::fit(&trace).unwrap();
        // Window 420 is 14:00; value should be near the peak bucket.
        let v = synth.expected_rps(WindowIndex(420));
        assert!((v - synth.envelope()[14]).abs() < 10.0);
    }
}
