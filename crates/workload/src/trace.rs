//! Recorded workload traces.
//!
//! A trace is the per-window demand a pool actually received, together with
//! the request-class composition. Traces are recorded from simulation runs
//! ("production") and consumed by [`crate::synthetic`] to fit replayable
//! synthetic workloads.

use headroom_telemetry::time::WindowIndex;

/// One window of recorded workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWindow {
    /// The measurement window.
    pub window: WindowIndex,
    /// Total requests per second during the window.
    pub rps: f64,
    /// Per-class request fractions (sums to ~1 when non-empty).
    pub class_fractions: Vec<f64>,
}

/// A sequence of recorded workload windows.
///
/// # Example
///
/// ```
/// use headroom_telemetry::time::WindowIndex;
/// use headroom_workload::trace::{TraceWindow, WorkloadTrace};
///
/// let mut trace = WorkloadTrace::new();
/// trace.push(TraceWindow { window: WindowIndex(0), rps: 100.0, class_fractions: vec![1.0] });
/// trace.push(TraceWindow { window: WindowIndex(1), rps: 140.0, class_fractions: vec![1.0] });
/// assert_eq!(trace.len(), 2);
/// assert!((trace.mean_rps() - 120.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadTrace {
    windows: Vec<TraceWindow>,
}

impl WorkloadTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        WorkloadTrace::default()
    }

    /// Appends a window record.
    pub fn push(&mut self, window: TraceWindow) {
        self.windows.push(window);
    }

    /// The recorded windows in arrival order.
    pub fn windows(&self) -> &[TraceWindow] {
        &self.windows
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Mean RPS across windows (`0.0` when empty).
    pub fn mean_rps(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(|w| w.rps).sum::<f64>() / self.windows.len() as f64
    }

    /// Minimum and maximum RPS, or `None` when empty.
    pub fn rps_range(&self) -> Option<(f64, f64)> {
        if self.windows.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for w in &self.windows {
            lo = lo.min(w.rps);
            hi = hi.max(w.rps);
        }
        Some((lo, hi))
    }

    /// The RPS series in window order.
    pub fn rps_series(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.rps).collect()
    }

    /// Mean per-class fractions over the whole trace (empty when the trace
    /// records no class data or is ragged).
    pub fn mean_class_fractions(&self) -> Vec<f64> {
        let Some(first) = self.windows.first() else {
            return Vec::new();
        };
        let k = first.class_fractions.len();
        if k == 0 || self.windows.iter().any(|w| w.class_fractions.len() != k) {
            return Vec::new();
        }
        let mut sums = vec![0.0; k];
        for w in &self.windows {
            for (s, &f) in sums.iter_mut().zip(&w.class_fractions) {
                *s += f;
            }
        }
        sums.iter().map(|s| s / self.windows.len() as f64).collect()
    }
}

impl FromIterator<TraceWindow> for WorkloadTrace {
    fn from_iter<I: IntoIterator<Item = TraceWindow>>(iter: I) -> Self {
        WorkloadTrace { windows: iter.into_iter().collect() }
    }
}

impl Extend<TraceWindow> for WorkloadTrace {
    fn extend<I: IntoIterator<Item = TraceWindow>>(&mut self, iter: I) {
        self.windows.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tw(w: u64, rps: f64) -> TraceWindow {
        TraceWindow { window: WindowIndex(w), rps, class_fractions: vec![0.7, 0.3] }
    }

    #[test]
    fn empty_trace_defaults() {
        let t = WorkloadTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_rps(), 0.0);
        assert_eq!(t.rps_range(), None);
        assert!(t.mean_class_fractions().is_empty());
    }

    #[test]
    fn mean_and_range() {
        let t: WorkloadTrace = vec![tw(0, 100.0), tw(1, 300.0)].into_iter().collect();
        assert_eq!(t.mean_rps(), 200.0);
        assert_eq!(t.rps_range(), Some((100.0, 300.0)));
        assert_eq!(t.rps_series(), vec![100.0, 300.0]);
    }

    #[test]
    fn mean_class_fractions() {
        let mut t = WorkloadTrace::new();
        t.push(TraceWindow { window: WindowIndex(0), rps: 1.0, class_fractions: vec![0.6, 0.4] });
        t.push(TraceWindow { window: WindowIndex(1), rps: 1.0, class_fractions: vec![0.8, 0.2] });
        let m = t.mean_class_fractions();
        assert!((m[0] - 0.7).abs() < 1e-12);
        assert!((m[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ragged_class_data_yields_empty() {
        let mut t = WorkloadTrace::new();
        t.push(TraceWindow { window: WindowIndex(0), rps: 1.0, class_fractions: vec![1.0] });
        t.push(TraceWindow { window: WindowIndex(1), rps: 1.0, class_fractions: vec![0.5, 0.5] });
        assert!(t.mean_class_fractions().is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut t = WorkloadTrace::new();
        t.extend(vec![tw(0, 1.0)]);
        t.extend(vec![tw(1, 2.0)]);
        assert_eq!(t.len(), 2);
    }
}
