//! Adversarial scenario generators — the regimes the paper's fleets only
//! met by accident.
//!
//! §II-B1's *natural experiments* (a 127% single-datacenter surge, a pool
//! at 4× normal volume) are exactly the situations a capacity planner is
//! bought for and exactly the ones a well-behaved diurnal fleet never
//! rehearses. This module turns them — plus the hard regimes named by the
//! related work (superlinear hypergrowth, correlated batch arrivals) —
//! into *deterministic, seeded* [`Scenario`] values composed from
//! [`EventScript`] primitives, so a scoring harness can replay each one
//! through the closed planning loop and gate CI on the outcome.
//!
//! The catalog ([`catalog`]):
//!
//! | Scenario | Shape | Planner stressor |
//! |---|---|---|
//! | [`flash_crowd`] | 10× global demand ramp in minutes, 2 h hold | detection delay, SLO damage |
//! | [`regional_failover`] | one DC lost for 2 h, traffic onto survivors | urgent-band latency |
//! | [`hypergrowth`] | superlinear (quadratic) daily demand growth | days-to-exhaustion accuracy |
//! | [`batch_arrivals`] | correlated 30-min burst every 6 h | flap suppression, re-detection |
//! | [`flap_storm`] | demand oscillating across a sizing boundary | recommendation thrash |
//! | [`model_swap_drift`] | fleet-wide response-profile change mid-run | drift detection |
//!
//! Every generator is a pure function of `(seed, datacenters)`: the same
//! inputs always produce the same script (a property test pins this), and
//! seeds only move parameters inside ranges that keep each scenario's
//! character — a flash crowd is always ~10×, only its onset hour and exact
//! peak shift.
//!
//! # Example
//!
//! ```
//! use headroom_workload::scenarios;
//!
//! // A deterministic regional failover on a 3-datacenter fleet.
//! let scenario = scenarios::regional_failover(7, 3);
//! assert_eq!(scenario.name(), "regional_failover");
//! scenario.validate(3).expect("well-formed for a 3-DC fleet");
//! assert!(scenario.onset_window().0 >= 720, "onset after a warm-up day");
//!
//! // The whole catalog is seed-deterministic.
//! assert_eq!(scenarios::catalog(7, 3), scenarios::catalog(7, 3));
//! ```

use headroom_telemetry::ids::DatacenterId;
use headroom_telemetry::time::{SimTime, WindowIndex, WINDOWS_PER_DAY, WINDOW_SECONDS};

use crate::events::{EventEffect, EventScript, ScheduledEvent};

/// A fleet-wide response-profile change a scenario schedules — the shape
/// of a software release or hardware refresh, for the drift study. The
/// simulator applies it by swapping every pool's [`ServiceModel`] for one
/// with its CPU-per-request cost scaled by `cpu_scale` from `window` on.
///
/// Lives here (not in the cluster crate) so scenario definitions stay
/// pure workload-side data; the simulator owns the actual model surgery.
///
/// [`ServiceModel`]: https://docs.rs/headroom-cluster
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSwapSpec {
    /// Window the new response profile takes effect.
    pub window: WindowIndex,
    /// Factor on CPU percent per request (e.g. `1.6` = a release that makes
    /// every request 60% dearer). Must be positive and finite.
    pub cpu_scale: f64,
}

/// Analytic demand-growth ground truth: day `d` runs at
/// `1 + linear_per_day·d + quad_per_day2·d²` times base demand (day 0 of
/// the growth phase is the onset day). Quadratic-in-time user growth is the
/// canonical *superlinear* hypergrowth curve — its day-over-day increment
/// itself grows, which is what breaks linear trend extrapolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthCurve {
    /// Linear growth per day of the demand factor.
    pub linear_per_day: f64,
    /// Quadratic growth per day² of the demand factor.
    pub quad_per_day2: f64,
}

impl GrowthCurve {
    /// The demand factor `d` days after growth onset.
    pub fn factor(&self, days_after_onset: f64) -> f64 {
        1.0 + self.linear_per_day * days_after_onset
            + self.quad_per_day2 * days_after_onset * days_after_onset
    }
}

/// One adversarial scenario: a named, deterministic [`EventScript`] plus
/// the metadata a scorer needs — when the event begins, how long to run,
/// any scheduled model swaps, and (for growth scenarios) the analytic
/// demand curve serving as days-to-exhaustion ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: &'static str,
    script: EventScript,
    onset: SimTime,
    windows: u64,
    model_swaps: Vec<ModelSwapSpec>,
    growth: Option<GrowthCurve>,
}

impl Scenario {
    /// Scenario name (stable; keys thresholds and artifacts).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The scripted events.
    pub fn script(&self) -> &EventScript {
        &self.script
    }

    /// When the adversarial condition begins (detection delay is measured
    /// from here).
    pub fn onset(&self) -> SimTime {
        self.onset
    }

    /// The onset as a window index.
    pub fn onset_window(&self) -> WindowIndex {
        self.onset.window()
    }

    /// Recommended run length in windows (onset plus enough aftermath for
    /// the scorer's metrics to settle).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Scheduled fleet-wide response-profile changes.
    pub fn model_swaps(&self) -> &[ModelSwapSpec] {
        &self.model_swaps
    }

    /// The analytic growth curve, when this scenario's demand grows by
    /// design (ground truth for days-to-exhaustion scoring).
    pub fn growth(&self) -> Option<GrowthCurve> {
        self.growth
    }

    /// Checks the scenario is well-formed for a fleet of `datacenters`
    /// datacenters: every multiplier positive and finite, every referenced
    /// datacenter exists, no two *conflicting* effects overlap in time
    /// (two global multipliers, two multipliers on the same DC, or two
    /// losses of the same DC), every model swap positive/finite, and the
    /// run long enough to contain the onset.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation found.
    pub fn validate(&self, datacenters: u16) -> Result<(), String> {
        let events = self.script.events();
        for e in events {
            if e.duration_secs == 0 {
                return Err(format!("{}: zero-duration event at {:?}", self.name, e.start));
            }
            if let Some(f) = e.effect.factor() {
                if !(f > 0.0 && f.is_finite()) {
                    return Err(format!("{}: non-positive multiplier {f}", self.name));
                }
            }
            if let Some(dc) = e.effect.datacenter() {
                if dc.0 >= datacenters {
                    return Err(format!(
                        "{}: event references {dc:?} but the fleet has {datacenters} datacenters",
                        self.name
                    ));
                }
            }
        }
        for (i, a) in events.iter().enumerate() {
            for b in &events[i + 1..] {
                if conflicting(a, b) {
                    return Err(format!(
                        "{}: conflicting effects overlap ({:?} and {:?})",
                        self.name, a, b
                    ));
                }
            }
        }
        for swap in &self.model_swaps {
            if !(swap.cpu_scale > 0.0 && swap.cpu_scale.is_finite()) {
                return Err(format!("{}: non-positive model-swap scale", self.name));
            }
        }
        if self.windows <= self.onset_window().0 {
            return Err(format!("{}: run ends before the onset window", self.name));
        }
        Ok(())
    }
}

/// Whether two events carry the same kind of effect on the same target
/// *and* overlap in time — the ill-formedness [`Scenario::validate`]
/// rejects (stacking the same knob twice makes the intended factor
/// ambiguous; distinct knobs compose multiplicatively by design).
fn conflicting(a: &ScheduledEvent, b: &ScheduledEvent) -> bool {
    let overlap = a.start.seconds() < b.start.seconds() + b.duration_secs
        && b.start.seconds() < a.start.seconds() + a.duration_secs;
    if !overlap {
        return false;
    }
    match (a.effect, b.effect) {
        (
            EventEffect::GlobalDemandMultiplier { .. },
            EventEffect::GlobalDemandMultiplier { .. },
        ) => true,
        (
            EventEffect::DemandMultiplier { datacenter: x, .. },
            EventEffect::DemandMultiplier { datacenter: y, .. },
        ) => x == y,
        (
            EventEffect::DatacenterLoss { datacenter: x },
            EventEffect::DatacenterLoss { datacenter: y },
        ) => x == y,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Seeded parameter derivation. SplitMix64 is the standard statelessly
// seedable mixer: one multiply-xor-shift chain per draw, fully
// deterministic, no RNG object to thread through the generators.
// ---------------------------------------------------------------------------

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic draw in `[lo, hi)` (uniform over the mixed bits).
fn draw(seed: u64, salt: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * ((mix(seed, salt) >> 11) as f64 / (1u64 << 53) as f64)
}

/// Onset inside day 1 (after a full warm-up day, jittered by seed so the
/// diurnal phase at onset varies across seeds): window 720 + [0, 240).
fn jittered_onset(seed: u64, salt: u64) -> SimTime {
    let jitter = mix(seed, salt) % 240;
    SimTime((WINDOWS_PER_DAY + jitter) * WINDOW_SECONDS)
}

// ---------------------------------------------------------------------------
// The generators.
// ---------------------------------------------------------------------------

/// A flash crowd: global demand ramps to ~10× within minutes (eight
/// 2-minute steps), holds the peak for two hours, then vanishes. The
/// paper-scale analogue of a viral event — the planner cannot add physical
/// servers fast enough, so the score is about *how quickly it says so*.
pub fn flash_crowd(seed: u64, _datacenters: u16) -> Scenario {
    let onset = jittered_onset(seed, 1);
    let peak = draw(seed, 2, 9.0, 11.0);
    let ramp_steps = 8u64;
    let step_secs = WINDOW_SECONDS; // one window per ramp step
    let mut events = Vec::new();
    for s in 0..ramp_steps {
        // Geometric ramp from ~1.33× to the full peak: factor = peak^((s+1)/8).
        let factor = peak.powf((s + 1) as f64 / ramp_steps as f64);
        events.push(ScheduledEvent::new(
            SimTime(onset.seconds() + s * step_secs),
            step_secs,
            EventEffect::GlobalDemandMultiplier { factor },
        ));
    }
    events.push(ScheduledEvent::new(
        SimTime(onset.seconds() + ramp_steps * step_secs),
        2 * 3600,
        EventEffect::GlobalDemandMultiplier { factor: peak },
    ));
    Scenario {
        name: "flash_crowd",
        script: EventScript::new(events),
        onset,
        windows: onset.window().0 + 360, // 12h of aftermath
        model_swaps: Vec::new(),
        growth: None,
    }
}

/// A regional failover: one datacenter (seed-chosen) goes dark for two
/// hours and the router pushes its traffic onto the survivors — the
/// paper's Figs. 4–5 natural experiment, on demand.
pub fn regional_failover(seed: u64, datacenters: u16) -> Scenario {
    let dc = DatacenterId((mix(seed, 3) % datacenters.max(1) as u64) as u16);
    let onset = jittered_onset(seed, 4);
    let script = EventScript::new(vec![ScheduledEvent::new(
        onset,
        2 * 3600,
        EventEffect::DatacenterLoss { datacenter: dc },
    )]);
    Scenario {
        name: "regional_failover",
        script,
        onset,
        windows: onset.window().0 + 360,
        model_swaps: Vec::new(),
        growth: None,
    }
}

/// Days of superlinear growth the hypergrowth scenario scripts.
pub const HYPERGROWTH_DAYS: u64 = 8;

/// Hypergrowth: demand grows *superlinearly* — day `d` after onset runs at
/// `1 + a·d + b·d²` (a ≈ 0.05/day, b ≈ 0.02/day², seed-jittered), applied
/// as whole-day global multiplier steps. The curve is the checked-in
/// analytic ground truth the planner's days-to-exhaustion projection is
/// scored against; its rate is chosen so a fixture deployed at catalog
/// headroom has several days of estimable runway before exhaustion.
pub fn hypergrowth(seed: u64, _datacenters: u16) -> Scenario {
    let a = draw(seed, 5, 0.04, 0.06);
    let b = draw(seed, 6, 0.015, 0.025);
    let growth = GrowthCurve { linear_per_day: a, quad_per_day2: b };
    let onset = SimTime::from_days(1.0); // whole-day steps need day alignment
    let events = (1..HYPERGROWTH_DAYS)
        .map(|d| {
            ScheduledEvent::new(
                SimTime(onset.seconds() + d * 86_400),
                86_400,
                EventEffect::GlobalDemandMultiplier { factor: growth.factor(d as f64) },
            )
        })
        .collect();
    Scenario {
        name: "hypergrowth",
        script: EventScript::new(events),
        onset,
        windows: (1 + HYPERGROWTH_DAYS) * WINDOWS_PER_DAY,
        model_swaps: Vec::new(),
        growth: Some(growth),
    }
}

/// Correlated batch arrivals: a ~2.5× global burst of 30 minutes every six
/// hours for two days — the batch-arrivals regime where load appears in
/// synchronized waves across every region at once, rather than as smooth
/// diurnal drift.
pub fn batch_arrivals(seed: u64, _datacenters: u16) -> Scenario {
    let onset = jittered_onset(seed, 7);
    let factor = draw(seed, 8, 2.2, 2.8);
    let burst_secs = 30 * 60;
    let period_secs = 6 * 3600;
    let events = (0..8u64)
        .map(|i| {
            ScheduledEvent::new(
                SimTime(onset.seconds() + i * period_secs),
                burst_secs,
                EventEffect::GlobalDemandMultiplier { factor },
            )
        })
        .collect();
    Scenario {
        name: "batch_arrivals",
        script: EventScript::new(events),
        onset,
        windows: onset.window().0 + 8 * (period_secs / WINDOW_SECONDS) + 120,
        model_swaps: Vec::new(),
        growth: None,
    }
}

/// A flap storm: a ~1.5× global pulse of two hours every twelve hours for
/// three days. The off-period is longer than a sizing-window history, so
/// each pulse's peak decays out of the planner's windowed p99 before the
/// next one lands — demand oscillates across the sizing boundary and a
/// planner without dwell hysteresis thrashes between grow and shrink.
pub fn flap_storm(seed: u64, _datacenters: u16) -> Scenario {
    let onset = jittered_onset(seed, 9);
    let factor = draw(seed, 10, 1.4, 1.6);
    let pulse_secs = 2 * 3600;
    let period_secs = 12 * 3600;
    let pulses = 6u64;
    let events = (0..pulses)
        .map(|i| {
            ScheduledEvent::new(
                SimTime(onset.seconds() + i * period_secs),
                pulse_secs,
                EventEffect::GlobalDemandMultiplier { factor },
            )
        })
        .collect();
    Scenario {
        name: "flap_storm",
        script: EventScript::new(events),
        onset,
        windows: onset.window().0 + pulses * (period_secs / WINDOW_SECONDS) + 120,
        model_swaps: Vec::new(),
        growth: None,
    }
}

/// A mid-run release: every pool's response profile degrades (CPU per
/// request scaled ~1.5–2×) at a seed-jittered window past warm-up, with
/// demand untouched — invisible in the workload stream, so only the drift
/// detector can catch it. The pending drift study's scenario.
pub fn model_swap_drift(seed: u64, _datacenters: u16) -> Scenario {
    let onset = jittered_onset(seed, 11);
    let scale = draw(seed, 12, 1.5, 2.0);
    Scenario {
        name: "model_swap_drift",
        script: EventScript::empty(),
        onset,
        windows: onset.window().0 + 360,
        model_swaps: vec![ModelSwapSpec { window: onset.window(), cpu_scale: scale }],
        growth: None,
    }
}

/// A neutral no-event scenario of `windows` windows — the control run
/// adversarial scores are measured against (a closed planning loop has
/// its own baseline urgency and SLO behaviour on a diurnal fleet; scores
/// report the *excess* the scenario causes).
pub fn baseline(windows: u64) -> Scenario {
    Scenario {
        name: "baseline",
        script: EventScript::empty(),
        onset: SimTime::ZERO,
        windows,
        model_swaps: Vec::new(),
        growth: None,
    }
}

/// The full scenario catalog for a fleet of `datacenters` datacenters, in
/// scoring order. Deterministic per `(seed, datacenters)`.
pub fn catalog(seed: u64, datacenters: u16) -> Vec<Scenario> {
    vec![
        flash_crowd(seed, datacenters),
        regional_failover(seed, datacenters),
        hypergrowth(seed, datacenters),
        batch_arrivals(seed, datacenters),
        flap_storm(seed, datacenters),
        model_swap_drift(seed, datacenters),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic_and_valid() {
        for seed in [0u64, 1, 42, 9999] {
            let a = catalog(seed, 3);
            let b = catalog(seed, 3);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.len(), 6);
            for s in &a {
                s.validate(3).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<&str> = catalog(1, 3).iter().map(Scenario::name).collect();
        assert_eq!(
            names,
            [
                "flash_crowd",
                "regional_failover",
                "hypergrowth",
                "batch_arrivals",
                "flap_storm",
                "model_swap_drift"
            ]
        );
    }

    #[test]
    fn seeds_move_parameters() {
        let a = regional_failover(1, 9);
        let b = regional_failover(2, 9);
        // Either the DC or the onset differs for almost every seed pair;
        // these two are checked-in known-different.
        assert!(a != b, "seeds 1 and 2 produced identical failovers");
    }

    #[test]
    fn flash_crowd_ramp_is_monotone_to_peak() {
        let s = flash_crowd(5, 3);
        let dc = DatacenterId(0);
        let mut last = 1.0;
        for w in 0..9u64 {
            let t = SimTime(s.onset().seconds() + w * WINDOW_SECONDS);
            let f = s.script().demand_factor(dc, t);
            assert!(f >= last, "ramp not monotone at step {w}: {f} < {last}");
            last = f;
        }
        assert!(last >= 9.0, "peak reached ~10x, got {last}");
        // Still held an hour in; gone after three hours.
        assert!(s.script().demand_factor(dc, SimTime(s.onset().seconds() + 3600)) >= 9.0);
        assert_eq!(s.script().demand_factor(dc, SimTime(s.onset().seconds() + 4 * 3600)), 1.0);
    }

    #[test]
    fn hypergrowth_matches_its_curve() {
        let s = hypergrowth(3, 3);
        let g = s.growth().expect("growth scenario");
        let dc = DatacenterId(1);
        for d in 1..HYPERGROWTH_DAYS {
            let mid = SimTime(s.onset().seconds() + d * 86_400 + 43_200);
            let f = s.script().demand_factor(dc, mid);
            assert!((f - g.factor(d as f64)).abs() < 1e-12, "day {d}: {f}");
        }
        // Superlinear: day-over-day increments grow.
        let d1 = g.factor(1.0) - g.factor(0.0);
        let d5 = g.factor(5.0) - g.factor(4.0);
        assert!(d5 > d1 * 1.5, "growth must be superlinear: {d1} vs {d5}");
    }

    #[test]
    fn validate_rejects_bad_scripts() {
        let mut s = regional_failover(1, 3);
        // Unknown datacenter.
        assert!(
            s.validate(1).is_err() || s.script().events()[0].effect.datacenter().unwrap().0 == 0
        );
        // Conflicting overlap: stack a second loss of the same DC.
        let dc = s.script().events()[0].effect.datacenter().unwrap();
        let start = s.script().events()[0].start;
        s.script.push(ScheduledEvent::new(
            SimTime(start.seconds() + 60),
            600,
            EventEffect::DatacenterLoss { datacenter: dc },
        ));
        assert!(s.validate(9).is_err(), "overlapping same-DC losses must be rejected");
    }

    #[test]
    fn model_swap_scenario_carries_the_swap() {
        let s = model_swap_drift(8, 3);
        assert!(s.script().events().is_empty(), "drift is invisible in demand");
        assert_eq!(s.model_swaps().len(), 1);
        let swap = s.model_swaps()[0];
        assert_eq!(swap.window, s.onset_window());
        assert!(swap.cpu_scale >= 1.5 && swap.cpu_scale <= 2.0);
        s.validate(3).unwrap();
    }
}
