//! Diurnal demand curves.
//!
//! Demand is modelled as a smooth daily cycle (fundamental + second
//! harmonic), a weekday/weekend modulation, and multiplicative noise:
//!
//! ```text
//! demand(t) = base
//!           · (1 + a₁·cos(2π(h - peak)/24) + a₂·cos(4π(h - peak)/24))
//!           · weekend_factor(t)
//!           · (1 + ε),   ε ~ N(0, noise)
//! ```
//!
//! Regions on opposite sides of the planet are expressed with different
//! `peak_hour` values, which is what creates the paper's observation that
//! global capacity is idle while individual datacenters saturate.

use headroom_telemetry::time::SimTime;
use rand::rngs::StdRng;
use rand::RngExt;

/// A deterministic-plus-noise diurnal demand curve, in requests per second.
///
/// # Example
///
/// ```
/// use headroom_telemetry::time::SimTime;
/// use headroom_workload::DiurnalCurve;
///
/// let curve = DiurnalCurve::new(1000.0).with_peak_hour(14.0).with_amplitude(0.5);
/// let peak = curve.mean_demand(SimTime::from_hours(14.0));
/// let trough = curve.mean_demand(SimTime::from_hours(2.0));
/// assert!(peak > 1.4 * trough);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalCurve {
    base: f64,
    amplitude: f64,
    second_harmonic: f64,
    peak_hour: f64,
    weekend_factor: f64,
    noise: f64,
}

impl DiurnalCurve {
    /// Creates a flat curve with the given mean demand (RPS) and the
    /// default daily shape (45% fundamental, 10% second harmonic, 2 pm
    /// peak, 80% weekend demand, 3% noise).
    ///
    /// # Panics
    ///
    /// Panics if `base` is negative or non-finite.
    pub fn new(base: f64) -> Self {
        assert!(base.is_finite() && base >= 0.0, "base demand must be non-negative");
        DiurnalCurve {
            base,
            amplitude: 0.45,
            second_harmonic: 0.10,
            peak_hour: 14.0,
            weekend_factor: 0.8,
            noise: 0.03,
        }
    }

    /// Sets the fundamental daily amplitude (fraction of base, `0..=1`).
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude.clamp(0.0, 1.0);
        self
    }

    /// Sets the second-harmonic amplitude (fraction of base).
    pub fn with_second_harmonic(mut self, amplitude: f64) -> Self {
        self.second_harmonic = amplitude.clamp(0.0, 0.5);
        self
    }

    /// Sets the local hour of peak demand (wrapped into `[0, 24)`).
    ///
    /// Shifting the peak hour is how the nine regions are staggered around
    /// the globe.
    pub fn with_peak_hour(mut self, hour: f64) -> Self {
        self.peak_hour = hour.rem_euclid(24.0);
        self
    }

    /// Sets the weekend demand multiplier (e.g. `0.8` = 20% lower).
    pub fn with_weekend_factor(mut self, factor: f64) -> Self {
        self.weekend_factor = factor.max(0.0);
        self
    }

    /// Sets the relative noise standard deviation.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.max(0.0);
        self
    }

    /// Mean demand (RPS).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Hour of peak demand.
    pub fn peak_hour(&self) -> f64 {
        self.peak_hour
    }

    /// Noise-free demand at `time`.
    pub fn mean_demand(&self, time: SimTime) -> f64 {
        let h = time.hour_of_day();
        let phase = (h - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let daily = 1.0 + self.amplitude * phase.cos() + self.second_harmonic * (2.0 * phase).cos();
        let weekly = if time.day_of_week() >= 5 { self.weekend_factor } else { 1.0 };
        (self.base * daily * weekly).max(0.0)
    }

    /// Noisy demand sample at `time` (multiplicative Gaussian noise drawn
    /// from `rng`; clamped non-negative).
    pub fn demand(&self, time: SimTime, rng: &mut StdRng) -> f64 {
        let mean = self.mean_demand(time);
        if self.noise == 0.0 {
            return mean;
        }
        let eps = gaussian(rng) * self.noise;
        (mean * (1.0 + eps)).max(0.0)
    }

    /// Rescales the curve so that its weekday peak equals `target` RPS.
    ///
    /// Used to size pool demand: "this pool should see X RPS/server at peak
    /// with N servers" translates to a peak total of `X · N`.
    pub fn with_peak_demand(mut self, target: f64) -> Self {
        assert!(target.is_finite() && target >= 0.0, "peak target must be non-negative");
        let peak = self.peak_demand();
        if peak > 0.0 {
            self.base *= target / peak;
        } else {
            // Zero-demand curve: rescale from a unit base so the daily
            // shape still peaks exactly at the target.
            self.base = 1.0;
            let unit_peak = self.peak_demand();
            self.base = target / unit_peak;
        }
        self
    }

    /// Noise-free peak demand over a weekday.
    pub fn peak_demand(&self) -> f64 {
        // Sample the curve finely; the two-harmonic family has no closed-form max.
        (0..288).map(|i| self.mean_demand(SimTime::from_hours(i as f64 / 12.0))).fold(0.0, f64::max)
    }

    /// Noise-free trough demand over a weekday.
    pub fn trough_demand(&self) -> f64 {
        (0..288)
            .map(|i| self.mean_demand(SimTime::from_hours(i as f64 / 12.0)))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Standard normal sample via Box–Muller (two uniforms; deterministic given
/// the RNG state).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn peak_is_at_peak_hour() {
        let curve = DiurnalCurve::new(100.0).with_peak_hour(14.0).with_second_harmonic(0.0);
        let at_peak = curve.mean_demand(SimTime::from_hours(14.0));
        for h in 0..24 {
            let v = curve.mean_demand(SimTime::from_hours(h as f64));
            assert!(v <= at_peak + 1e-9, "hour {h} exceeds peak");
        }
    }

    #[test]
    fn amplitude_controls_swing() {
        let flat = DiurnalCurve::new(100.0).with_amplitude(0.0).with_second_harmonic(0.0);
        assert!((flat.peak_demand() - flat.trough_demand()).abs() < 1e-9);
        let wavy = DiurnalCurve::new(100.0).with_amplitude(0.5).with_second_harmonic(0.0);
        assert!(wavy.peak_demand() > 1.8 * wavy.trough_demand());
    }

    #[test]
    fn weekend_reduces_demand() {
        let curve = DiurnalCurve::new(100.0).with_weekend_factor(0.5);
        // Day 0 is Monday; day 5 is Saturday.
        let weekday = curve.mean_demand(SimTime::from_days(0.5));
        let weekend = curve.mean_demand(SimTime::from_days(5.5));
        assert!((weekend - 0.5 * weekday).abs() < 1e-9);
    }

    #[test]
    fn phase_shift_staggers_regions() {
        let east = DiurnalCurve::new(100.0).with_peak_hour(6.0).with_second_harmonic(0.0);
        let west = DiurnalCurve::new(100.0).with_peak_hour(18.0).with_second_harmonic(0.0);
        let t = SimTime::from_hours(6.0);
        assert!(east.mean_demand(t) > west.mean_demand(t));
        let t2 = SimTime::from_hours(18.0);
        assert!(west.mean_demand(t2) > east.mean_demand(t2));
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let curve = DiurnalCurve::new(100.0).with_noise(0.1);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let t = SimTime::from_hours(3.0);
        assert_eq!(curve.demand(t, &mut r1), curve.demand(t, &mut r2));
    }

    #[test]
    fn zero_noise_equals_mean() {
        let curve = DiurnalCurve::new(100.0).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let t = SimTime::from_hours(9.0);
        assert_eq!(curve.demand(t, &mut rng), curve.mean_demand(t));
    }

    #[test]
    fn demand_never_negative() {
        let curve = DiurnalCurve::new(10.0).with_amplitude(1.0).with_noise(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..2000 {
            let v = curve.demand(SimTime::from_hours(i as f64 * 0.1), &mut rng);
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn peak_hour_wraps() {
        let curve = DiurnalCurve::new(1.0).with_peak_hour(26.0);
        assert!((curve.peak_hour() - 2.0).abs() < 1e-12);
        let neg = DiurnalCurve::new(1.0).with_peak_hour(-2.0);
        assert!((neg.peak_hour() - 22.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_base_panics() {
        let _ = DiurnalCurve::new(-1.0);
    }

    #[test]
    fn with_peak_demand_rescales() {
        let curve = DiurnalCurve::new(100.0).with_peak_demand(1550.0);
        assert!((curve.peak_demand() - 1550.0).abs() < 1e-6);
        let flat = DiurnalCurve::new(0.0).with_peak_demand(10.0);
        assert!((flat.peak_demand() - 10.0).abs() < 1e-9);
    }
}
