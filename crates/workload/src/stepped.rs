//! Stepped load ramps for offline regression analysis (methodology step 4).
//!
//! §II-D: "We make small workload increments over time to obtain a broad set
//! of data for latency and resource utilization" — two identical pools (one
//! with the change, one without) receive *precisely identical* workloads so
//! curve differences are attributable to the change alone (Fig. 16).

use headroom_telemetry::time::{WindowIndex, WindowRange};

use crate::trace::{TraceWindow, WorkloadTrace};

/// A deterministic staircase of workload levels.
///
/// # Example
///
/// ```
/// use headroom_workload::stepped::SteppedLoad;
///
/// let ramp = SteppedLoad::new(100.0, 50.0, 5, 30);
/// assert_eq!(ramp.rps_at_step(0), 100.0);
/// assert_eq!(ramp.rps_at_step(4), 300.0);
/// assert_eq!(ramp.total_windows(), 150);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteppedLoad {
    /// RPS of the first step.
    pub base_rps: f64,
    /// RPS increment per step.
    pub step_rps: f64,
    /// Number of steps.
    pub steps: usize,
    /// Windows held at each step.
    pub windows_per_step: usize,
}

impl SteppedLoad {
    /// Creates a ramp.
    ///
    /// # Panics
    ///
    /// Panics when `steps == 0`, `windows_per_step == 0`, or any parameter
    /// is negative/non-finite.
    pub fn new(base_rps: f64, step_rps: f64, steps: usize, windows_per_step: usize) -> Self {
        assert!(base_rps.is_finite() && base_rps >= 0.0, "base_rps must be non-negative");
        assert!(step_rps.is_finite() && step_rps >= 0.0, "step_rps must be non-negative");
        assert!(steps > 0, "at least one step required");
        assert!(windows_per_step > 0, "at least one window per step required");
        SteppedLoad { base_rps, step_rps, steps, windows_per_step }
    }

    /// RPS at step `i` (clamped to the final step).
    pub fn rps_at_step(&self, i: usize) -> f64 {
        let i = i.min(self.steps - 1);
        self.base_rps + self.step_rps * i as f64
    }

    /// Which step a zero-based window offset belongs to.
    pub fn step_of_window(&self, window_offset: usize) -> usize {
        (window_offset / self.windows_per_step).min(self.steps - 1)
    }

    /// Total windows in the ramp.
    pub fn total_windows(&self) -> usize {
        self.steps * self.windows_per_step
    }

    /// Highest RPS level.
    pub fn max_rps(&self) -> f64 {
        self.rps_at_step(self.steps - 1)
    }

    /// All step RPS levels in order.
    pub fn levels(&self) -> Vec<f64> {
        (0..self.steps).map(|i| self.rps_at_step(i)).collect()
    }

    /// Materialises the ramp as a trace starting at `start`.
    pub fn to_trace(&self, start: WindowIndex) -> WorkloadTrace {
        (0..self.total_windows())
            .map(|off| TraceWindow {
                window: WindowIndex(start.0 + off as u64),
                rps: self.rps_at_step(self.step_of_window(off)),
                class_fractions: Vec::new(),
            })
            .collect()
    }

    /// The window range occupied by the ramp when started at `start`.
    pub fn range(&self, start: WindowIndex) -> WindowRange {
        WindowRange::new(start, WindowIndex(start.0 + self.total_windows() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_levels() {
        let ramp = SteppedLoad::new(50.0, 25.0, 4, 10);
        assert_eq!(ramp.levels(), vec![50.0, 75.0, 100.0, 125.0]);
        assert_eq!(ramp.max_rps(), 125.0);
    }

    #[test]
    fn window_to_step_mapping() {
        let ramp = SteppedLoad::new(0.0, 1.0, 3, 5);
        assert_eq!(ramp.step_of_window(0), 0);
        assert_eq!(ramp.step_of_window(4), 0);
        assert_eq!(ramp.step_of_window(5), 1);
        assert_eq!(ramp.step_of_window(14), 2);
        // Past the end clamps to the last step.
        assert_eq!(ramp.step_of_window(99), 2);
    }

    #[test]
    fn trace_materialisation() {
        let ramp = SteppedLoad::new(10.0, 10.0, 2, 3);
        let trace = ramp.to_trace(WindowIndex(100));
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.windows()[0].window, WindowIndex(100));
        assert_eq!(trace.windows()[0].rps, 10.0);
        assert_eq!(trace.windows()[3].rps, 20.0);
        let range = ramp.range(WindowIndex(100));
        assert_eq!(range.len(), 6);
        assert!(range.contains(WindowIndex(105)));
        assert!(!range.contains(WindowIndex(106)));
    }

    #[test]
    fn step_rps_clamps() {
        let ramp = SteppedLoad::new(5.0, 5.0, 3, 1);
        assert_eq!(ramp.rps_at_step(10), 15.0);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = SteppedLoad::new(1.0, 1.0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "window per step")]
    fn zero_windows_panics() {
        let _ = SteppedLoad::new(1.0, 1.0, 1, 0);
    }
}
