//! Demand substrate for the `headroom` fleet simulator.
//!
//! The paper's service handles a *diurnal global workload* (§I): each
//! datacenter's demand follows its region's day/night cycle, so datacenters
//! "periodically run out of capacity while datacenters on the opposite side
//! of the world are underutilized". This crate generates that demand and the
//! perturbations the evaluation studies:
//!
//! - [`diurnal`] — per-region day/night demand curves with weekly structure;
//! - [`mix`] — request-class mixes (the diversity that synthetic workloads
//!   must reproduce, §II-C);
//! - [`events`] — scripted unplanned events: the regional surges and
//!   datacenter losses behind the paper's *natural experiments* (Figs. 4–6);
//! - [`resource_profile`] — per-request resource intensity shapes (disk-,
//!   memory-, network-heavy) so scenarios exist where a resource other than
//!   CPU binds first (§II-A1's limiting resource);
//! - [`scenarios`] — deterministic adversarial scenarios (flash crowds,
//!   regional failovers, hypergrowth, batch arrivals, flap storms, mid-run
//!   model swaps) composed from [`events`] primitives and scored by the
//!   bench harness;
//! - [`trace`] — recorded workload traces;
//! - [`synthetic`] — replayable synthetic workloads fit to a production
//!   trace, with an equivalence check (methodology step 3);
//! - [`stepped`] — the stepped load ramps used by offline regression
//!   analysis (methodology step 4, Fig. 16).
//!
//! # Example
//!
//! A diurnal demand curve peaking at 14:00 local, sampled noise-free:
//!
//! ```
//! use headroom_telemetry::time::SimTime;
//! use headroom_workload::DiurnalCurve;
//!
//! let curve = DiurnalCurve::new(1.0).with_peak_hour(14.0).with_peak_demand(10_000.0);
//! let peak = curve.mean_demand(SimTime::from_hours(14.0));
//! let night = curve.mean_demand(SimTime::from_hours(2.0));
//! assert!((peak - 10_000.0).abs() < 100.0, "peak hits the target");
//! assert!(night < peak * 0.6, "demand falls away overnight");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diurnal;
pub mod events;
pub mod mix;
pub mod resource_profile;
pub mod scenarios;
pub mod stepped;
pub mod synthetic;
pub mod trace;

pub use diurnal::DiurnalCurve;
pub use events::{EventEffect, EventScript, ScheduledEvent};
pub use mix::RequestMix;
pub use resource_profile::ResourceProfile;
pub use scenarios::{GrowthCurve, ModelSwapSpec, Scenario};
pub use synthetic::SyntheticWorkload;
pub use trace::WorkloadTrace;
