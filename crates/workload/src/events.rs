//! Scripted unplanned events — the paper's *natural experiments*.
//!
//! §II-B1 analyses two real unplanned events: one where pools "receive a
//! median 56% increase in workload volume … with one datacenter receiving an
//! increase of 127%", and one where a pool saw "4 times the normal traffic
//! volume". Those events happen when a datacenter (or region) fails and its
//! traffic is rerouted to surviving datacenters.
//!
//! An [`EventScript`] reproduces such incidents deterministically: the
//! simulator consults it each window for demand multipliers and datacenter
//! losses.

use headroom_telemetry::ids::DatacenterId;
use headroom_telemetry::time::SimTime;

/// What an event does while active.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EventEffect {
    /// Multiply the demand routed to one datacenter by `factor`.
    DemandMultiplier {
        /// Affected datacenter.
        datacenter: DatacenterId,
        /// Multiplier applied to that datacenter's incoming demand.
        factor: f64,
    },
    /// Multiply global (all-region) demand by `factor` — e.g. a viral
    /// traffic spike.
    GlobalDemandMultiplier {
        /// Multiplier applied to every region's demand.
        factor: f64,
    },
    /// Take a whole datacenter offline; the router redistributes its demand
    /// over the survivors.
    DatacenterLoss {
        /// The failed datacenter.
        datacenter: DatacenterId,
    },
}

impl EventEffect {
    /// The demand multiplier this effect applies, if any (`None` for a
    /// datacenter loss). Lets downstream code inspect effects without a
    /// `match` on the `#[non_exhaustive]` enum.
    pub fn factor(&self) -> Option<f64> {
        match *self {
            EventEffect::DemandMultiplier { factor, .. }
            | EventEffect::GlobalDemandMultiplier { factor } => Some(factor),
            EventEffect::DatacenterLoss { .. } => None,
        }
    }

    /// The datacenter this effect targets, if any (`None` for global
    /// effects).
    pub fn datacenter(&self) -> Option<DatacenterId> {
        match *self {
            EventEffect::DemandMultiplier { datacenter, .. }
            | EventEffect::DatacenterLoss { datacenter } => Some(datacenter),
            EventEffect::GlobalDemandMultiplier { .. } => None,
        }
    }

    /// Whether this effect takes a datacenter offline.
    pub fn is_loss(&self) -> bool {
        matches!(self, EventEffect::DatacenterLoss { .. })
    }
}

/// An effect active during `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledEvent {
    /// When the event begins.
    pub start: SimTime,
    /// Duration in seconds.
    pub duration_secs: u64,
    /// What happens.
    pub effect: EventEffect,
}

impl ScheduledEvent {
    /// Creates an event.
    pub fn new(start: SimTime, duration_secs: u64, effect: EventEffect) -> Self {
        ScheduledEvent { start, duration_secs, effect }
    }

    /// Whether the event is active at `time`.
    pub fn active_at(&self, time: SimTime) -> bool {
        time >= self.start && time.seconds() < self.start.seconds() + self.duration_secs
    }
}

/// An ordered collection of scheduled events.
///
/// # Example
///
/// ```
/// use headroom_telemetry::ids::DatacenterId;
/// use headroom_telemetry::time::SimTime;
/// use headroom_workload::events::{EventEffect, EventScript, ScheduledEvent};
///
/// // A two-hour loss of DC 3 starting at noon of day 2 (the Fig. 4 shape).
/// let script = EventScript::new(vec![ScheduledEvent::new(
///     SimTime::from_days(2.5),
///     2 * 3600,
///     EventEffect::DatacenterLoss { datacenter: DatacenterId(2) },
/// )]);
/// assert!(script.datacenter_lost(DatacenterId(2), SimTime::from_days(2.51)));
/// assert!(!script.datacenter_lost(DatacenterId(2), SimTime::from_days(2.7)));
/// ```
///
/// Scripts compose into scenarios: distinct effects stack multiplicatively,
/// so a regional failover *during* a global surge is just two events. The
/// [`EventEffect`] accessors let a validator inspect the result without
/// matching on the `#[non_exhaustive]` enum:
///
/// ```
/// use headroom_telemetry::ids::DatacenterId;
/// use headroom_telemetry::time::SimTime;
/// use headroom_workload::events::{EventEffect, EventScript, ScheduledEvent};
///
/// let noon = SimTime::from_days(1.5);
/// let script: EventScript = [
///     // A viral 3x global spike...
///     ScheduledEvent::new(noon, 4 * 3600, EventEffect::GlobalDemandMultiplier { factor: 3.0 }),
///     // ...and DC 0 fails an hour into it.
///     ScheduledEvent::new(
///         SimTime(noon.seconds() + 3600),
///         2 * 3600,
///         EventEffect::DatacenterLoss { datacenter: DatacenterId(0) },
///     ),
/// ]
/// .into_iter()
/// .collect();
///
/// let mid = SimTime(noon.seconds() + 2 * 3600);
/// assert_eq!(script.demand_factor(DatacenterId(1), mid), 3.0);
/// assert!(script.datacenter_lost(DatacenterId(0), mid));
/// // Accessor-based inspection, no exhaustive match needed:
/// assert_eq!(script.events()[0].effect.factor(), Some(3.0));
/// assert_eq!(script.events()[1].effect.datacenter(), Some(DatacenterId(0)));
/// assert!(script.events()[1].effect.is_loss());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventScript {
    events: Vec<ScheduledEvent>,
}

impl EventScript {
    /// Creates a script from a list of events.
    pub fn new(events: Vec<ScheduledEvent>) -> Self {
        EventScript { events }
    }

    /// A script with no events.
    pub fn empty() -> Self {
        EventScript::default()
    }

    /// Adds an event.
    pub fn push(&mut self, event: ScheduledEvent) {
        self.events.push(event);
    }

    /// The scheduled events.
    pub fn events(&self) -> &[ScheduledEvent] {
        &self.events
    }

    /// Product of all demand multipliers affecting `datacenter` at `time`
    /// (global multipliers included). `1.0` when nothing is active.
    pub fn demand_factor(&self, datacenter: DatacenterId, time: SimTime) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if !e.active_at(time) {
                continue;
            }
            match e.effect {
                EventEffect::DemandMultiplier { datacenter: dc, factor: f } if dc == datacenter => {
                    factor *= f;
                }
                EventEffect::GlobalDemandMultiplier { factor: f } => factor *= f,
                _ => {}
            }
        }
        factor
    }

    /// Whether `datacenter` is scripted as lost at `time`.
    pub fn datacenter_lost(&self, datacenter: DatacenterId, time: SimTime) -> bool {
        self.events.iter().any(|e| {
            e.active_at(time)
                && matches!(e.effect, EventEffect::DatacenterLoss { datacenter: dc } if dc == datacenter)
        })
    }

    /// Whether *any* event is active at `time` — used to label windows as
    /// natural-experiment candidates.
    pub fn any_active(&self, time: SimTime) -> bool {
        self.events.iter().any(|e| e.active_at(time))
    }
}

impl FromIterator<ScheduledEvent> for EventScript {
    fn from_iter<I: IntoIterator<Item = ScheduledEvent>>(iter: I) -> Self {
        EventScript { events: iter.into_iter().collect() }
    }
}

/// Builds the paper's first natural experiment: a two-hour datacenter loss
/// that pushes a median +56% surge onto the survivors (Figs. 4–5).
pub fn two_hour_dc_loss(datacenter: DatacenterId, start: SimTime) -> EventScript {
    EventScript::new(vec![ScheduledEvent::new(
        start,
        2 * 3600,
        EventEffect::DatacenterLoss { datacenter },
    )])
}

/// Builds the paper's second natural experiment: one datacenter receiving
/// roughly 4× its normal traffic for `duration_secs` (Fig. 6).
pub fn surge_4x(datacenter: DatacenterId, start: SimTime, duration_secs: u64) -> EventScript {
    EventScript::new(vec![ScheduledEvent::new(
        start,
        duration_secs,
        EventEffect::DemandMultiplier { datacenter, factor: 4.0 },
    )])
}

/// Compound global demand growth of `rate_per_day` (e.g. `0.03` = 3%/day)
/// over `days` days, as one whole-day multiplier step per day — the
/// workload-trend setting of capacity exhaustion studies. Day 0 is
/// unscaled; day `d` runs at `(1 + rate)^d`.
pub fn daily_growth(rate_per_day: f64, days: u64) -> EventScript {
    assert!(rate_per_day > -1.0 && rate_per_day.is_finite(), "growth must keep demand positive");
    (1..days)
        .map(|d| {
            ScheduledEvent::new(
                SimTime(d * 86_400),
                86_400,
                EventEffect::GlobalDemandMultiplier { factor: (1.0 + rate_per_day).powi(d as i32) },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_window_is_half_open() {
        let e = ScheduledEvent::new(
            SimTime(100),
            50,
            EventEffect::GlobalDemandMultiplier { factor: 2.0 },
        );
        assert!(!e.active_at(SimTime(99)));
        assert!(e.active_at(SimTime(100)));
        assert!(e.active_at(SimTime(149)));
        assert!(!e.active_at(SimTime(150)));
    }

    #[test]
    fn daily_growth_compounds() {
        let script = daily_growth(0.10, 4);
        let dc = DatacenterId(0);
        // Day 0 unscaled, then 1.1, 1.21, 1.331.
        assert_eq!(script.demand_factor(dc, SimTime::from_days(0.5)), 1.0);
        assert!((script.demand_factor(dc, SimTime::from_days(1.5)) - 1.1).abs() < 1e-12);
        assert!((script.demand_factor(dc, SimTime::from_days(2.5)) - 1.21).abs() < 1e-12);
        assert!((script.demand_factor(dc, SimTime::from_days(3.5)) - 1.331).abs() < 1e-12);
        // Beyond the scripted horizon demand returns to base.
        assert_eq!(script.demand_factor(dc, SimTime::from_days(4.5)), 1.0);
    }

    #[test]
    fn demand_factor_stacks_multiplicatively() {
        let dc = DatacenterId(1);
        let script = EventScript::new(vec![
            ScheduledEvent::new(
                SimTime(0),
                100,
                EventEffect::DemandMultiplier { datacenter: dc, factor: 2.0 },
            ),
            ScheduledEvent::new(
                SimTime(0),
                100,
                EventEffect::GlobalDemandMultiplier { factor: 1.5 },
            ),
        ]);
        assert!((script.demand_factor(dc, SimTime(10)) - 3.0).abs() < 1e-12);
        // Other DCs only see the global factor.
        assert!((script.demand_factor(DatacenterId(0), SimTime(10)) - 1.5).abs() < 1e-12);
        // After expiry, back to 1.
        assert_eq!(script.demand_factor(dc, SimTime(200)), 1.0);
    }

    #[test]
    fn dc_loss_only_affects_named_dc() {
        let script = two_hour_dc_loss(DatacenterId(3), SimTime::from_hours(12.0));
        let mid = SimTime::from_hours(13.0);
        assert!(script.datacenter_lost(DatacenterId(3), mid));
        assert!(!script.datacenter_lost(DatacenterId(4), mid));
        assert!(!script.datacenter_lost(DatacenterId(3), SimTime::from_hours(15.0)));
    }

    #[test]
    fn surge_4x_factor() {
        let script = surge_4x(DatacenterId(0), SimTime(0), 3600);
        assert_eq!(script.demand_factor(DatacenterId(0), SimTime(1800)), 4.0);
        assert_eq!(script.demand_factor(DatacenterId(1), SimTime(1800)), 1.0);
    }

    #[test]
    fn any_active_flags_experiment_windows() {
        let script = surge_4x(DatacenterId(0), SimTime(1000), 500);
        assert!(!script.any_active(SimTime(999)));
        assert!(script.any_active(SimTime(1200)));
        assert!(!script.any_active(SimTime(1500)));
    }

    #[test]
    fn collect_from_iterator() {
        let script: EventScript = (0..3)
            .map(|i| {
                ScheduledEvent::new(
                    SimTime(i * 100),
                    10,
                    EventEffect::GlobalDemandMultiplier { factor: 1.1 },
                )
            })
            .collect();
        assert_eq!(script.events().len(), 3);
    }

    #[test]
    fn empty_script_is_neutral() {
        let script = EventScript::empty();
        assert_eq!(script.demand_factor(DatacenterId(0), SimTime(0)), 1.0);
        assert!(!script.datacenter_lost(DatacenterId(0), SimTime(0)));
        assert!(!script.any_active(SimTime(0)));
    }
}
