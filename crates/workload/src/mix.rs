//! Request-class mixes.
//!
//! §II-C: a synthetic workload must match production "with a diversity of
//! requests and responses matching those observed in production" because
//! "QoS and resource usage is proportional to the diversity of incoming
//! requests". A [`RequestMix`] captures that diversity as weighted request
//! classes with per-class cost multipliers.

use rand::rngs::StdRng;
use rand::RngExt;

/// One class of requests: a share of traffic with a relative processing cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestClass {
    /// Class label (e.g. `"lookup"`, `"write"`, `"table-b"`).
    pub name: String,
    /// Fraction of requests in this class (weights are normalised).
    pub weight: f64,
    /// CPU cost relative to the service's average request (1.0 = average).
    pub cost_multiplier: f64,
}

impl RequestClass {
    /// Creates a class.
    ///
    /// # Panics
    ///
    /// Panics when `weight` or `cost_multiplier` is negative or non-finite.
    pub fn new(name: impl Into<String>, weight: f64, cost_multiplier: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be non-negative");
        assert!(
            cost_multiplier.is_finite() && cost_multiplier >= 0.0,
            "cost multiplier must be non-negative"
        );
        RequestClass { name: name.into(), weight, cost_multiplier }
    }
}

/// A weighted set of request classes.
///
/// # Example
///
/// ```
/// use headroom_workload::mix::{RequestClass, RequestMix};
///
/// let mix = RequestMix::new(vec![
///     RequestClass::new("read", 0.9, 0.8),
///     RequestClass::new("write", 0.1, 2.8),
/// ]);
/// // Mean cost: 0.9*0.8 + 0.1*2.8 = 1.0
/// assert!((mix.mean_cost() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMix {
    classes: Vec<RequestClass>,
}

impl RequestMix {
    /// Creates a mix, normalising weights to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics when `classes` is empty or all weights are zero.
    pub fn new(mut classes: Vec<RequestClass>) -> Self {
        assert!(!classes.is_empty(), "request mix needs at least one class");
        let total: f64 = classes.iter().map(|c| c.weight).sum();
        assert!(total > 0.0, "request mix weights must not all be zero");
        for c in &mut classes {
            c.weight /= total;
        }
        RequestMix { classes }
    }

    /// A single-class mix with unit cost.
    pub fn uniform() -> Self {
        RequestMix::new(vec![RequestClass::new("request", 1.0, 1.0)])
    }

    /// A typical consumer-web mix: cheap cached reads, mid-cost renders,
    /// expensive writes.
    pub fn web_default() -> Self {
        RequestMix::new(vec![
            RequestClass::new("cached-read", 0.55, 0.4),
            RequestClass::new("render", 0.35, 1.5),
            RequestClass::new("write", 0.10, 2.55),
        ])
    }

    /// The classes (weights normalised).
    pub fn classes(&self) -> &[RequestClass] {
        &self.classes
    }

    /// Weighted mean cost multiplier.
    pub fn mean_cost(&self) -> f64 {
        self.classes.iter().map(|c| c.weight * c.cost_multiplier).sum()
    }

    /// Samples a class index according to the weights.
    pub fn sample_class(&self, rng: &mut StdRng) -> usize {
        let mut target: f64 = rng.random_range(0.0..1.0);
        for (i, c) in self.classes.iter().enumerate() {
            if target < c.weight {
                return i;
            }
            target -= c.weight;
        }
        self.classes.len() - 1
    }

    /// Splits `total_rps` across classes by weight, returning per-class RPS.
    pub fn split_rps(&self, total_rps: f64) -> Vec<f64> {
        self.classes.iter().map(|c| c.weight * total_rps).collect()
    }

    /// The normalised weight vector.
    pub fn weights(&self) -> Vec<f64> {
        self.classes.iter().map(|c| c.weight).collect()
    }

    /// Largest absolute difference between this mix's weights and another's.
    ///
    /// Used by the synthetic-workload equivalence check: mixes "match" when
    /// the divergence is below a tolerance. Mixes with different class
    /// counts are maximally divergent (`1.0`).
    pub fn weight_divergence(&self, other: &RequestMix) -> f64 {
        if self.classes.len() != other.classes.len() {
            return 1.0;
        }
        self.classes
            .iter()
            .zip(&other.classes)
            .map(|(a, b)| (a.weight - b.weight).abs())
            .fold(0.0, f64::max)
    }
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weights_normalised() {
        let mix = RequestMix::new(vec![
            RequestClass::new("a", 2.0, 1.0),
            RequestClass::new("b", 6.0, 1.0),
        ]);
        let w = mix.weights();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn web_default_mean_cost_near_one() {
        let mix = RequestMix::web_default();
        assert!((mix.mean_cost() - 1.0).abs() < 0.02, "got {}", mix.mean_cost());
    }

    #[test]
    fn sampling_matches_weights() {
        let mix = RequestMix::new(vec![
            RequestClass::new("a", 0.8, 1.0),
            RequestClass::new("b", 0.2, 1.0),
        ]);
        let mut rng = StdRng::seed_from_u64(10);
        let n = 20_000;
        let mut counts = [0usize; 2];
        for _ in 0..n {
            counts[mix.sample_class(&mut rng)] += 1;
        }
        let frac_a = counts[0] as f64 / n as f64;
        assert!((frac_a - 0.8).abs() < 0.02, "got {frac_a}");
    }

    #[test]
    fn split_rps_sums_to_total() {
        let mix = RequestMix::web_default();
        let parts = mix.split_rps(1000.0);
        let sum: f64 = parts.iter().sum();
        assert!((sum - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn divergence_zero_for_self() {
        let mix = RequestMix::web_default();
        assert_eq!(mix.weight_divergence(&mix.clone()), 0.0);
    }

    #[test]
    fn divergence_detects_shifted_mix() {
        let a = RequestMix::new(vec![
            RequestClass::new("x", 0.9, 1.0),
            RequestClass::new("y", 0.1, 1.0),
        ]);
        let b = RequestMix::new(vec![
            RequestClass::new("x", 0.6, 1.0),
            RequestClass::new("y", 0.4, 1.0),
        ]);
        assert!((a.weight_divergence(&b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn divergence_max_for_different_shapes() {
        let a = RequestMix::uniform();
        let b = RequestMix::web_default();
        assert_eq!(a.weight_divergence(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_panics() {
        let _ = RequestMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn zero_weights_panic() {
        let _ = RequestMix::new(vec![RequestClass::new("a", 0.0, 1.0)]);
    }
}
