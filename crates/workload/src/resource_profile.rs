//! Per-resource demand shaping.
//!
//! §II-A1 of the paper sizes each pool against its *limiting resource* —
//! and which resource limits depends on what each request costs. A search
//! front-end burns CPU per request; a log-ingest tier queues disk writes; a
//! CDN edge moves bytes. [`ResourceProfile`] captures that per-request cost
//! shape in service-model-agnostic units, so scenario builders can deploy
//! fleets where disk or network — not CPU — binds first and a planner's
//! binding-constraint discovery has something real to discover.
//!
//! The profile is plain demand-side data: the cluster crate's service
//! models consume it to shape their response curves
//! (`ServiceModel::with_resource_profile`), and the `repro multi_resource`
//! experiment derives its synthetic ground truth from the same numbers.
//!
//! # Example
//!
//! ```
//! use headroom_workload::resource_profile::ResourceProfile;
//!
//! let disk = ResourceProfile::disk_heavy();
//! let cpu = ResourceProfile::cpu_only();
//! // Disk-heavy requests queue far more disk I/O per request…
//! assert!(disk.disk_queue_per_rps > 10.0 * cpu.disk_queue_per_rps);
//! // …and a profile can be scaled to model heavier requests uniformly.
//! let heavy = disk.scaled(2.0);
//! assert_eq!(heavy.disk_queue_per_rps, disk.disk_queue_per_rps * 2.0);
//! ```

/// Per-request resource intensity of a workload.
///
/// All rates are *per request per second* at the server, on top of the
/// workload-independent baselines carried by the service model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceProfile {
    /// Disk queue length added per RPS (queued I/O operations).
    pub disk_queue_per_rps: f64,
    /// Memory paging added per RPS (pages/sec).
    pub pages_per_rps: f64,
    /// Network bytes moved per request (both directions).
    pub net_bytes_per_req: f64,
}

impl ResourceProfile {
    /// A CPU-dominated workload: negligible per-request disk queueing or
    /// paging, modest payloads. Disk/memory/network stay workload-flat
    /// ("the vertical patterns" of Fig. 2), so CPU or latency binds.
    pub fn cpu_only() -> Self {
        ResourceProfile { disk_queue_per_rps: 0.0, pages_per_rps: 0.0, net_bytes_per_req: 40_000.0 }
    }

    /// A disk-bound workload (log ingest, write-heavy storage): every
    /// request queues I/O, so disk queue depth grows linearly with RPS and
    /// crosses its safety threshold long before CPU warms up.
    pub fn disk_heavy() -> Self {
        ResourceProfile {
            disk_queue_per_rps: 0.02,
            pages_per_rps: 2.0,
            net_bytes_per_req: 30_000.0,
        }
    }

    /// A memory-bound workload (cache-miss-heavy storage): requests fault
    /// pages in, so paging rate tracks RPS.
    pub fn memory_heavy() -> Self {
        ResourceProfile {
            disk_queue_per_rps: 0.002,
            pages_per_rps: 60.0,
            net_bytes_per_req: 25_000.0,
        }
    }

    /// A network-bound workload (CDN edge, media delivery): large payloads
    /// per request saturate the NIC before anything else.
    pub fn network_heavy() -> Self {
        ResourceProfile {
            disk_queue_per_rps: 0.001,
            pages_per_rps: 1.0,
            net_bytes_per_req: 450_000.0,
        }
    }

    /// The same shape with every per-request cost multiplied by `factor`
    /// (e.g. a release that doubles payload sizes).
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        ResourceProfile {
            disk_queue_per_rps: self.disk_queue_per_rps * factor,
            pages_per_rps: self.pages_per_rps * factor,
            net_bytes_per_req: self.net_bytes_per_req * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_bind_on_their_namesake() {
        // Each preset's namesake intensity dominates the other presets'.
        assert!(
            ResourceProfile::disk_heavy().disk_queue_per_rps
                > ResourceProfile::memory_heavy().disk_queue_per_rps
        );
        assert!(
            ResourceProfile::memory_heavy().pages_per_rps
                > ResourceProfile::disk_heavy().pages_per_rps
        );
        assert!(
            ResourceProfile::network_heavy().net_bytes_per_req
                > 10.0 * ResourceProfile::cpu_only().net_bytes_per_req
        );
    }

    #[test]
    fn scaling_is_uniform() {
        let p = ResourceProfile::network_heavy();
        let s = p.scaled(3.0);
        assert_eq!(s.pages_per_rps, p.pages_per_rps * 3.0);
        assert_eq!(s.net_bytes_per_req, p.net_bytes_per_req * 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = ResourceProfile::cpu_only().scaled(0.0);
    }
}
