//! Micro-benchmarks of the statistics substrate — the planner's hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use headroom_stats::dtree::{DecisionTree, TreeConfig};
use headroom_stats::percentile::PercentileProfile;
use headroom_stats::ransac::{ransac_polyfit, RansacConfig};
use headroom_stats::{LinearFit, Polynomial};
use std::hint::black_box;

fn series(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n).map(|i| 100.0 + (i % 500) as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| 0.028 * x + 1.37 + ((i * 31) % 17) as f64 * 0.02)
        .collect();
    (xs, ys)
}

fn bench_linreg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linreg_fit");
    for n in [720usize, 5_040] {
        let (xs, ys) = series(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LinearFit::fit(black_box(&xs), black_box(&ys)).unwrap())
        });
    }
    group.finish();
}

fn bench_polyfit(c: &mut Criterion) {
    let (xs, ys) = series(1_440);
    c.bench_function("polyfit_quadratic_1440", |b| {
        b.iter(|| Polynomial::fit(black_box(&xs), black_box(&ys), 2).unwrap())
    });
}

fn bench_ransac(c: &mut Criterion) {
    let (xs, mut ys) = series(1_440);
    for i in (100..160).chain(700..760) {
        ys[i] += 30.0;
    }
    let config = RansacConfig { iterations: 300, inlier_threshold: 1.0, ..Default::default() };
    c.bench_function("ransac_quadratic_1440", |b| {
        b.iter(|| ransac_polyfit(black_box(&xs), black_box(&ys), 2, &config).unwrap())
    });
}

fn bench_percentiles(c: &mut Criterion) {
    let values: Vec<f64> = (0..10_080).map(|i| ((i * 7919) % 1000) as f64 / 10.0).collect();
    c.bench_function("percentile_profile_10080", |b| {
        b.iter(|| PercentileProfile::from_values(black_box(&values)).unwrap())
    });
}

fn bench_decision_tree(c: &mut Criterion) {
    let features: Vec<Vec<f64>> = (0..500)
        .map(|i| {
            vec![
                (i % 29) as f64,
                ((i * 7) % 31) as f64,
                ((i * 13) % 17) as f64,
                ((i * 5) % 11) as f64,
            ]
        })
        .collect();
    let labels: Vec<bool> = features.iter().map(|f| f[0] > 14.0 || f[1] > 22.0).collect();
    let config = TreeConfig { min_leaf_size: 4, ..TreeConfig::default() };
    c.bench_function("decision_tree_train_500x4", |b| {
        b.iter(|| DecisionTree::train(black_box(&features), black_box(&labels), &config).unwrap())
    });
}

criterion_group!(
    benches,
    bench_linreg,
    bench_polyfit,
    bench_ransac,
    bench_percentiles,
    bench_decision_tree
);
criterion_main!(benches);
