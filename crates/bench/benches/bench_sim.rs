//! Simulator throughput benchmarks: windows simulated per second for
//! representative fleets and recording policies, plus the bare per-window
//! step cost in both snapshot layouts — isolated from the planner, so a
//! `BENCH_sweep.json` regression can be attributed to the simulator layer
//! or the ingestion layer rather than guessed at.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{RecordingPolicy, SimConfig, Simulation, SnapshotLayout};
use headroom_cluster::topology::{Fleet, FleetBuilder};
use headroom_core::slo::QosRequirement;
use headroom_online::planner::OnlinePlannerConfig;
use headroom_online::sweep::SweepEngine;
use std::hint::black_box;

fn fleet(pool_servers: usize) -> Fleet {
    FleetBuilder::new(7)
        .datacenters(3)
        .deploy_service(MicroserviceKind::B, pool_servers)
        .expect("dcs added")
        .deploy_service(MicroserviceKind::D, pool_servers)
        .expect("dcs added")
        .build()
}

fn bench_sim_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_hour");
    group.sample_size(20);
    for (name, policy) in [
        ("workload", RecordingPolicy::Workload),
        ("full", RecordingPolicy::Full),
        ("availability_only", RecordingPolicy::AvailabilityOnly),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let mut sim = Simulation::new(
                    fleet(50),
                    Default::default(),
                    SimConfig {
                        seed: 3,
                        recording: policy,
                        track_availability: true,
                        ..SimConfig::default()
                    },
                );
                sim.run_windows(black_box(30));
                sim.store().sample_count()
            })
        });
    }
    group.finish();
}

/// Bare simulator step per window — no planner attached — in both
/// snapshot layouts, on the paper-shaped 81-pool fleet. The columnar and
/// row paths are bit-identical in output (`repro colsim`), so any delta
/// here is pure layout/kernel cost; any growth over PRs is a simulator
/// regression, not a planner one.
fn bench_sim_step_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step_per_window");
    group.sample_size(20);
    for (name, columnar) in [("rows", false), ("columns", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &columnar, |b, &columnar| {
            let mut sim = FleetScenario::paper_scale(7, 0.05)
                .with_recording(RecordingPolicy::SnapshotOnly)
                .into_simulation();
            // Warm the reusable buffers out of the measurement.
            if columnar {
                sim.step_columns_partitioned();
            } else {
                sim.step_snapshot_partitioned();
            }
            b.iter(|| {
                if columnar {
                    black_box(sim.step_columns_partitioned().columns.len())
                } else {
                    black_box(sim.step_snapshot_partitioned().rows.len())
                }
            })
        });
    }
    group.finish();
}

/// The fused window: simulator generation *and* sweep ingestion per
/// window, in all three layouts, with replanning disabled so the rows
/// isolate generation + observe passes. `rows` and `columns` materialise a
/// fleet-wide snapshot between the two halves; `streamed` runs the sim
/// kernels tile-at-a-time inside the sweep's pass loop over
/// `PassScratch`-resident buffers, so the metric columns never round-trip
/// DRAM. All three are bit-identical in planner effect (`repro colsim`);
/// the delta is pure data-motion cost.
fn bench_sim_window_fused(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_window_fused");
    group.sample_size(20);
    for layout in [SnapshotLayout::Rows, SnapshotLayout::Columnar, SnapshotLayout::Streamed] {
        let name = match layout {
            SnapshotLayout::Rows => "rows",
            SnapshotLayout::Columnar => "columns",
            SnapshotLayout::Streamed => "streamed",
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &layout, |b, &layout| {
            let mut sim = FleetScenario::paper_scale(7, 0.05)
                .with_recording(RecordingPolicy::SnapshotOnly)
                .into_simulation();
            let config = OnlinePlannerConfig {
                window_capacity: 48,
                min_fit_windows: 24,
                replan_every: u64::MAX,
                ..OnlinePlannerConfig::default()
            };
            let mut engine =
                SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
            let window = |sim: &mut Simulation, engine: &mut SweepEngine| match layout {
                SnapshotLayout::Streamed => {
                    let win = sim.step_streamed();
                    engine.observe_streamed(&win);
                }
                SnapshotLayout::Columnar => {
                    let snap = sim.step_columns_partitioned();
                    engine.observe_columns(&snap);
                }
                SnapshotLayout::Rows => {
                    let snap = sim.step_snapshot_partitioned();
                    engine.observe_partitioned(&snap);
                }
            };
            // Warm the reusable buffers out of the measurement.
            window(&mut sim, &mut engine);
            b.iter(|| {
                window(&mut sim, &mut engine);
                black_box(engine.windows_seen())
            })
        });
    }
    group.finish();
}

fn bench_store_queries(c: &mut Criterion) {
    let mut sim = Simulation::new(fleet(50), Default::default(), SimConfig::default());
    sim.run_days(1.0);
    let pool = sim.fleet().pools()[0].id;
    let range = headroom_telemetry::time::WindowRange::days(1.0);
    c.bench_function("pool_paired_observations_day", |b| {
        b.iter(|| {
            sim.store().pool_paired_observations(
                black_box(pool),
                headroom_telemetry::counter::CounterKind::RequestsPerSec,
                headroom_telemetry::counter::CounterKind::CpuPercent,
                range,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_sim_day,
    bench_sim_step_layouts,
    bench_sim_window_fused,
    bench_store_queries
);
criterion_main!(benches);
