//! End-to-end planner benchmarks: observation collection, curve fitting,
//! grouping and pool optimization over a pre-simulated store.

use criterion::{criterion_group, criterion_main, Criterion};
use headroom_cluster::scenario::{FleetScenario, ScenarioOutcome};
use headroom_core::curves::{CpuModel, LatencyModel, PoolObservations};
use headroom_core::grouping::split_pool_groups;
use headroom_core::optimizer::optimize_pool;
use headroom_core::pipeline::CapacityPlanner;
use headroom_core::slo::QosRequirement;
use std::hint::black_box;

fn outcome() -> ScenarioOutcome {
    FleetScenario::small(5).run_days(2.0).expect("scenario runs")
}

fn bench_planner(c: &mut Criterion) {
    let outcome = outcome();
    let pool = outcome.pools()[0];
    let obs = PoolObservations::collect(outcome.store(), pool, outcome.range()).unwrap();

    c.bench_function("collect_pool_observations_2d", |b| {
        b.iter(|| {
            PoolObservations::collect(black_box(outcome.store()), black_box(pool), outcome.range())
                .unwrap()
        })
    });

    c.bench_function("cpu_model_fit_2d", |b| b.iter(|| CpuModel::fit(black_box(&obs)).unwrap()));

    c.bench_function("latency_model_fit_2d", |b| {
        b.iter(|| LatencyModel::fit(black_box(&obs)).unwrap())
    });

    c.bench_function("split_pool_groups_2d", |b| {
        b.iter(|| split_pool_groups(black_box(outcome.store()), pool, outcome.range()).unwrap())
    });

    let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
    c.bench_function("optimize_pool_2d", |b| {
        b.iter(|| {
            optimize_pool(
                black_box(outcome.store()),
                outcome.availability(),
                pool,
                outcome.range(),
                &qos,
                2,
            )
            .unwrap()
        })
    });

    let planner = CapacityPlanner { availability_days: 2, ..CapacityPlanner::new() };
    let mut group = c.benchmark_group("full_pipeline");
    group.sample_size(10);
    group.bench_function("plan_six_pools_2d", |b| {
        b.iter(|| {
            planner.plan(
                black_box(outcome.store()),
                outcome.availability(),
                outcome.range(),
                |pool| {
                    if pool.0 < 3 {
                        QosRequirement::latency(32.5).with_cpu_ceiling(90.0)
                    } else {
                        QosRequirement::latency(58.0).with_cpu_ceiling(90.0)
                    }
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
