//! Wall-clock benchmarks of representative paper experiments at quick scale
//! — one per experiment family, so regressions in end-to-end cost surface.

use criterion::{criterion_group, criterion_main, Criterion};
use headroom_bench::experiments;
use headroom_bench::Scale;

fn bench_experiments(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("experiments_quick");
    group.sample_size(10);

    group.bench_function("fig16_offline_ab", |b| {
        b.iter(|| experiments::fig16::run(&scale).expect("fig16 runs"))
    });

    group.bench_function("fig07_rsm", |b| {
        b.iter(|| experiments::fig07::run(&scale).expect("fig7 runs"))
    });

    group.bench_function("fig03_grouping", |b| {
        b.iter(|| experiments::fig03::run(&scale).expect("fig3 runs"))
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
