//! Streaming vs batch re-planning cost.
//!
//! The streaming planner's pitch is that staying current costs O(1) per
//! window, while a batch planner that wants the same freshness must refit
//! from the full store every window. These benchmarks measure both sides on
//! identical telemetry: a two-day, six-pool small fleet.
//!
//! `online_replan/observe_one_window` processes one full fleet snapshot
//! (aggregation + estimator updates + sizing re-derivation for all six
//! pools); the `batch_refit/*` benchmarks are what a batch planner would
//! re-run to refresh the same decisions.

use criterion::{criterion_group, criterion_main, Criterion};
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{SnapshotRow, WindowSnapshot};
use headroom_core::optimizer::optimize_pool;
use headroom_core::pipeline::CapacityPlanner;
use headroom_core::slo::QosRequirement;
use headroom_online::planner::{OnlinePlanner, OnlinePlannerConfig};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;
use std::hint::black_box;

const DAYS: f64 = 2.0;
const WINDOWS: u64 = (DAYS * 720.0) as u64;

fn qos_for(pool: PoolId) -> QosRequirement {
    QosRequirement::small_fleet(pool)
}

fn planner_for_small_fleet(window_capacity: usize) -> OnlinePlanner {
    let config = OnlinePlannerConfig {
        window_capacity,
        min_fit_windows: 180,
        ..OnlinePlannerConfig::default()
    };
    let mut planner = OnlinePlanner::new(config, qos_for(PoolId(0)));
    for pool in 3..6 {
        planner.set_qos(PoolId(pool), qos_for(PoolId(pool)));
    }
    planner
}

/// Re-records the scenario's snapshots so the bench can replay identical
/// windows without re-simulating inside the timing loop.
fn recorded_snapshots(seed: u64) -> Vec<Vec<SnapshotRow>> {
    let mut sim = FleetScenario::small(seed).into_simulation();
    let mut rows = Vec::with_capacity(WINDOWS as usize);
    sim.run_windows_observed(WINDOWS, |snap| rows.push(snap.rows.to_vec()));
    rows
}

fn bench_online_vs_batch(c: &mut Criterion) {
    let snapshots = recorded_snapshots(5);

    // ---- online side: one window of streaming work, steady state ----
    let mut planner = planner_for_small_fleet(WINDOWS as usize);
    for (i, rows) in snapshots.iter().enumerate() {
        planner.observe(&WindowSnapshot { window: WindowIndex(i as u64), rows });
    }
    let mut group = c.benchmark_group("online_replan");
    let mut next = WINDOWS;
    let mut cursor = 0usize;
    group.bench_function("observe_one_window", |b| {
        b.iter(|| {
            let snap = WindowSnapshot { window: WindowIndex(next), rows: &snapshots[cursor] };
            planner.observe(black_box(&snap));
            next += 1;
            cursor = (cursor + 1) % snapshots.len();
            planner.assessments().len()
        })
    });
    group.finish();

    // ---- batch side: the refit a non-streaming planner needs per window ----
    let outcome = FleetScenario::small(5).run_days(DAYS).expect("scenario runs");
    let qos = qos_for(PoolId(0));
    let pool = outcome.pools()[0];

    let mut group = c.benchmark_group("batch_refit");
    group.sample_size(20);
    group.bench_function("optimize_one_pool", |b| {
        b.iter(|| {
            optimize_pool(
                black_box(outcome.store()),
                outcome.availability(),
                pool,
                outcome.range(),
                &qos,
                DAYS as u64,
            )
            .unwrap()
        })
    });
    let batch = CapacityPlanner { availability_days: DAYS as u64, ..CapacityPlanner::new() };
    group.bench_function("plan_all_pools", |b| {
        b.iter(|| {
            batch.plan(black_box(outcome.store()), outcome.availability(), outcome.range(), qos_for)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_online_vs_batch);
criterion_main!(benches);
