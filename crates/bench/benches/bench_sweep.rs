//! Sweep-engine scaling: per-window cost vs thread count, fleet size, and
//! window size.
//!
//! Three claims of the shard-and-merge planner core are measured here:
//!
//! 1. **thread scaling** — `sweep_observe/threads=N` processes one full
//!    81-pool fleet snapshot (per-shard aggregation + estimator updates +
//!    sizing re-derivation) with the pools fanned out over the persistent
//!    worker pool. On a multi-core host the 4-thread row should beat the
//!    1-thread row; on a single core it honestly will not.
//! 2. **spawn amortization** — `fleet_scaling/pools=P/…` sweeps synthetic
//!    fleets of 8/81/512/4096 pools at 1/2/4 threads, with
//!    `exec=scoped/…` rows measuring the legacy spawn-per-window shape at
//!    81 pools for contrast. The persistent pool's hand-off is ~µs, so the
//!    `threads > 1` crossover moves down to small fleets where the scoped
//!    shape lost outright. `fleet_scaling_columns/*` runs the
//!    struct-of-arrays ingestion over the same recorded workload up to
//!    16384 pools — the materialised hot path of the columnar snapshot
//!    pipeline — and `fleet_scaling_streamed/*` runs the tile-fused
//!    streamed pipeline over the same workload, generating each tile's
//!    metric columns inside the sweep instead of replaying them from DRAM.
//! 3. **ingestion-only cost** — `sweep_ingestion/*` re-runs the columnar
//!    cells with replanning disabled (`replan_every = u64::MAX`), so the
//!    rows isolate the pass-structured observe kernels (aggregate →
//!    ring/totals/alloc/drift planes → scalar estimators) from the sizing
//!    re-derivation, the same isolation split `bench_sim` applies to the
//!    simulator kernels.
//! 4. **sublinear replan cost** — `p99_peak/*` isolates the windowed-peak
//!    query three ways: the treap multiset (O(log W) operations, pointer
//!    walks), the sorted contiguous column the shard uses now (O(W) moved
//!    bytes, one streaming memmove, O(1) percentile), and the sort-based
//!    path the original assess loop paid (O(W log W)). All three are
//!    bit-identical in output; the rows show why the sorted column wins at
//!    planning-scale windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use headroom_bench::synthetic::{
    synthetic_columns, synthetic_snapshots, synthetic_streamed, warmed_engine,
    warmed_engine_columns, warmed_engine_streamed, RecordedWindow,
};
use headroom_cluster::columns::ColumnarSnapshot;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{PartitionedSnapshot, RecordingPolicy};
use headroom_online::planner::{OnlinePlannerConfig, SweepExec};
use headroom_stats::percentile::percentile;
use headroom_stats::{OrderStatsMultiset, SortedWindow};
use headroom_telemetry::time::WindowIndex;
use std::hint::black_box;

/// Recorded windows: enough to warm a 120-window sliding window planner.
const RECORDED: u64 = 150;
const WINDOW_CAPACITY: usize = 120;
const MIN_FIT: usize = 60;

/// Records partitioned snapshots of the paper-shaped fleet (81 pools; the
/// full ≈6k-server catalog at fraction 1.0 would dominate bench setup, so
/// half-scale ≈3k servers keeps the fan-out realistic and setup fast).
fn recorded_snapshots(seed: u64) -> (Vec<RecordedWindow>, usize) {
    let scenario =
        FleetScenario::paper_scale(seed, 0.5).with_recording(RecordingPolicy::SnapshotOnly);
    let mut sim = scenario.into_simulation();
    let servers = sim.fleet().server_count();
    let mut out = Vec::with_capacity(RECORDED as usize);
    for _ in 0..RECORDED {
        let snap = sim.step_snapshot_partitioned();
        out.push((snap.rows.to_vec(), snap.pools.to_vec()));
    }
    (out, servers)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let (snapshots, servers) = recorded_snapshots(7);
    println!("sweep_observe: 81 pools, {servers} servers per window");

    let mut group = c.benchmark_group("sweep_observe");
    for threads in [1usize, 2, 4] {
        let config = OnlinePlannerConfig {
            window_capacity: WINDOW_CAPACITY,
            min_fit_windows: MIN_FIT,
            threads,
            ..OnlinePlannerConfig::default()
        };
        let mut engine = warmed_engine(&snapshots, config);
        let mut next = RECORDED;
        let mut cursor = 0usize;
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let (rows, pools) = &snapshots[cursor];
                let snap = PartitionedSnapshot { window: WindowIndex(next), rows, pools };
                engine.observe_partitioned(black_box(&snap));
                next += 1;
                cursor = (cursor + 1) % snapshots.len();
                engine.drain_recommendations().len()
            })
        });
    }
    group.finish();
}

/// Spawn-amortized thread scaling across fleet sizes: the persistent pool
/// at 8/81/512/4096 pools, plus the legacy scoped shape at 81 pools so the
/// removed spawn overhead stays visible in the report.
fn bench_fleet_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling");
    let bench_cell = |group: &mut criterion::BenchmarkGroup<'_>,
                      snapshots: &[RecordedWindow],
                      name: String,
                      threads: usize,
                      exec: SweepExec| {
        let config = OnlinePlannerConfig {
            window_capacity: 48,
            min_fit_windows: 24,
            threads,
            exec,
            ..OnlinePlannerConfig::default()
        };
        let mut engine = warmed_engine(snapshots, config);
        let mut next = snapshots.len() as u64;
        let mut cursor = 0usize;
        group.bench_function(BenchmarkId::new(name, threads), |b| {
            b.iter(|| {
                let (rows, pools) = &snapshots[cursor];
                let snap = PartitionedSnapshot { window: WindowIndex(next), rows, pools };
                engine.observe_partitioned(black_box(&snap));
                next += 1;
                cursor = (cursor + 1) % snapshots.len();
                engine.drain_recommendations().len()
            })
        });
    };
    for pools in [8u32, 81, 512, 4096] {
        let snapshots = synthetic_snapshots(pools, 3, 72);
        for threads in [1usize, 2, 4] {
            bench_cell(
                &mut group,
                &snapshots,
                format!("pools={pools}"),
                threads,
                SweepExec::Persistent,
            );
        }
    }
    // The pre-pool shape, for the amortization headline.
    let snapshots = synthetic_snapshots(81, 3, 72);
    for threads in [2usize, 4] {
        bench_cell(
            &mut group,
            &snapshots,
            "exec=scoped/pools=81".to_string(),
            threads,
            SweepExec::Scoped,
        );
    }
    group.finish();
}

/// Columnar ingestion over the same synthetic workload as `fleet_scaling`
/// — the struct-of-arrays hot path at fleet scale (16384 pools included,
/// where contiguous column streaming matters most). Bit-identical outputs
/// to the row cells by construction; only the layout cost differs.
fn bench_fleet_scaling_columns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling_columns");
    for pools in [81u32, 4096, 16384] {
        let snapshots = synthetic_snapshots(pools, 3, 72);
        let columns = synthetic_columns(&snapshots);
        for threads in [1usize, 4] {
            let config = OnlinePlannerConfig {
                window_capacity: 48,
                min_fit_windows: 24,
                threads,
                ..OnlinePlannerConfig::default()
            };
            let mut engine = warmed_engine_columns(&columns, config);
            let mut next = columns.len() as u64;
            let mut cursor = 0usize;
            group.bench_function(BenchmarkId::new(format!("pools={pools}"), threads), |b| {
                b.iter(|| {
                    let (cols, slices) = &columns[cursor];
                    let snap = ColumnarSnapshot {
                        window: WindowIndex(next),
                        columns: cols,
                        pools: slices,
                    };
                    engine.observe_columns(black_box(&snap));
                    next += 1;
                    cursor = (cursor + 1) % columns.len();
                    engine.drain_recommendations().len()
                })
            });
        }
    }
    group.finish();
}

/// The tile-fused streamed pipeline over the same synthetic workload as
/// `fleet_scaling_columns`: each window's metric columns are *generated*
/// by the sim kernels inside the sweep's 512-lane tile passes
/// (`PassScratch`-resident, never materialised fleet-wide) instead of
/// replayed from DRAM. Bit-identical planner effect to the columns cells
/// (`repro colsim`); the delta is the fused generation cost minus the
/// avoided metric-column traffic.
fn bench_fleet_scaling_streamed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling_streamed");
    for pools in [81u32, 4096, 16384] {
        let snapshots = synthetic_snapshots(pools, 3, 72);
        let columns = synthetic_columns(&snapshots);
        let streamed = synthetic_streamed(&columns);
        drop(columns);
        for threads in [1usize, 4] {
            let config = OnlinePlannerConfig {
                window_capacity: 48,
                min_fit_windows: 24,
                threads,
                ..OnlinePlannerConfig::default()
            };
            let mut engine = warmed_engine_streamed(&streamed, config);
            let mut next = streamed.len() as u64;
            let mut cursor = 0usize;
            group.bench_function(BenchmarkId::new(format!("pools={pools}"), threads), |b| {
                b.iter(|| {
                    let win = streamed.window(cursor, WindowIndex(next));
                    engine.observe_streamed(black_box(&win));
                    next += 1;
                    cursor = (cursor + 1) % streamed.len();
                    engine.drain_recommendations().len()
                })
            });
        }
    }
    group.finish();
}

/// Ingestion-only isolation: the same columnar cells as
/// `fleet_scaling_columns`, but with replanning disabled
/// (`replan_every = u64::MAX`, so `windows_seen` never hits a replan tick
/// and no pool turns urgent on an empty assessment). What remains is
/// exactly the plane-at-a-time observe passes — aggregate build, agg-ring
/// push + eviction, totals replace/insert, alloc deque, drift ring, and
/// the scalar estimator pass — mirroring `bench_sim`'s kernel-isolation
/// group on the simulator side.
fn bench_ingestion_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_ingestion");
    for pools in [512u32, 4096] {
        let snapshots = synthetic_snapshots(pools, 3, 72);
        let columns = synthetic_columns(&snapshots);
        for threads in [1usize, 4] {
            let config = OnlinePlannerConfig {
                window_capacity: 48,
                min_fit_windows: 24,
                replan_every: u64::MAX,
                threads,
                ..OnlinePlannerConfig::default()
            };
            let mut engine = warmed_engine_columns(&columns, config);
            let mut next = columns.len() as u64;
            let mut cursor = 0usize;
            group.bench_function(BenchmarkId::new(format!("pools={pools}"), threads), |b| {
                b.iter(|| {
                    let (cols, slices) = &columns[cursor];
                    let snap = ColumnarSnapshot {
                        window: WindowIndex(next),
                        columns: cols,
                        pools: slices,
                    };
                    engine.observe_columns(black_box(&snap));
                    next += 1;
                    cursor = (cursor + 1) % columns.len();
                    engine.drain_recommendations().len()
                })
            });
        }
    }
    group.finish();
}

/// One synthetic total-workload stream, long enough for the largest window.
fn workload_stream(n: usize) -> Vec<f64> {
    let mut x = 9u64;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            5_000.0 + (x >> 11) as f64 / (1u64 << 53) as f64 * 2_000.0
        })
        .collect()
}

fn bench_order_statistics(c: &mut Criterion) {
    let mut group = c.benchmark_group("p99_peak");
    for window in [360usize, 1440, 5760] {
        let stream = workload_stream(window + 256);

        // Incremental: one window's worth of work — insert the incoming
        // value, evict the outgoing one, query the p99.
        let mut set = OrderStatsMultiset::new();
        for &v in &stream[..window] {
            set.insert(v);
        }
        let mut head = window;
        let mut tail = 0usize;
        group.bench_function(BenchmarkId::new("incremental", window), |b| {
            b.iter(|| {
                set.insert(stream[head % stream.len()]);
                set.remove(stream[tail % stream.len()]);
                head += 1;
                tail += 1;
                black_box(set.percentile(99.0).unwrap())
            })
        });

        // Sorted contiguous column: what the shard actually uses now —
        // O(W) moved bytes per window, but one streaming memmove with an
        // O(1) percentile, so it beats the treap's pointer walks at
        // planning-scale windows (and stays bit-identical to both).
        let mut sorted = SortedWindow::with_capacity(window);
        for &v in &stream[..window] {
            sorted.insert(v);
        }
        let mut head = window;
        let mut tail = 0usize;
        group.bench_function(BenchmarkId::new("sorted_column", window), |b| {
            b.iter(|| {
                sorted.insert(stream[head % stream.len()]);
                sorted.remove(stream[tail % stream.len()]);
                head += 1;
                tail += 1;
                black_box(sorted.percentile(99.0).unwrap())
            })
        });

        // Sort-based: what the pre-refactor assess path paid per window.
        let values = &stream[..window];
        group.bench_function(BenchmarkId::new("sort", window), |b| {
            b.iter(|| black_box(percentile(black_box(values), 99.0).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_fleet_scaling,
    bench_fleet_scaling_columns,
    bench_fleet_scaling_streamed,
    bench_ingestion_only,
    bench_order_statistics
);
criterion_main!(benches);
