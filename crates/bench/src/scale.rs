//! Experiment scaling.
//!
//! The paper's fleet is 100K+ servers over 90 days; the simulator reproduces
//! the *relationships* at a laptop-friendly scale. [`Scale`] centralises the
//! knobs so `repro --quick` (tests, CI) and `repro` (paper scale) share one
//! code path.

/// Global experiment scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Fraction of catalog pool sizes deployed in fleet-wide experiments.
    pub fleet_fraction: f64,
    /// Servers per pool for single-pool experiments.
    pub pool_servers: usize,
    /// Days of telemetry for curve-fitting stages.
    pub observe_days: f64,
    /// Days of the availability study.
    pub availability_days: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// The default reproduction scale (a few thousand simulated servers).
    pub fn paper() -> Self {
        Scale {
            fleet_fraction: 0.30,
            pool_servers: 100,
            observe_days: 3.0,
            availability_days: 30.0,
            seed: 42,
        }
    }

    /// A fast scale for tests and smoke runs.
    pub fn quick() -> Self {
        Scale {
            fleet_fraction: 0.05,
            pool_servers: 20,
            observe_days: 1.0,
            availability_days: 7.0,
            seed: 42,
        }
    }

    /// Windows in the observation stage.
    pub fn observe_windows(&self) -> u64 {
        (self.observe_days * 720.0).round() as u64
    }

    /// Whether this is the `--quick` smoke shape (or smaller). Extended
    /// grid rows — 65536 pools, the million-pool window — only pay off for
    /// the checked-in artifact, so quick runs and tests skip them.
    pub fn is_quick(&self) -> bool {
        self.pool_servers <= Scale::quick().pool_servers
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(q.fleet_fraction < p.fleet_fraction);
        assert!(q.pool_servers < p.pool_servers);
        assert!(q.observe_days <= p.observe_days);
        assert!(q.is_quick());
        assert!(!p.is_quick());
    }

    #[test]
    fn observe_windows_rounds() {
        let s = Scale { observe_days: 0.5, ..Scale::quick() };
        assert_eq!(s.observe_windows(), 360);
    }
}
