//! Experiment harness regenerating every table and figure of the ICDCS'18
//! headroom paper.
//!
//! Each experiment in [`experiments`] rebuilds one published artifact —
//! workload generation, parameter sweep, analysis and paper-style output —
//! against the fleet simulator. The `repro` binary runs them:
//!
//! ```text
//! repro list              # what is available
//! repro all               # everything, paper scale
//! repro fig9 --quick      # one experiment, reduced scale
//! repro table4 --out results/
//! ```
//!
//! Absolute numbers depend on the simulator, not the authors' production
//! fleet; the *shapes* — who wins, by what factor, where curves cross — are
//! the reproduction targets, and each experiment prints the paper's value
//! next to the measured one. `EXPERIMENTS.md` records the comparison.
//!
//! # Example
//!
//! The [`synthetic`] generator feeds the sweep-engine scale harnesses
//! without paying for a full simulation:
//!
//! ```
//! use headroom_bench::synthetic::{synthetic_snapshots, warmed_engine};
//! use headroom_online::planner::OnlinePlannerConfig;
//!
//! let snapshots = synthetic_snapshots(8, 3, 40); // 8 pools × 3 servers
//! let config = OnlinePlannerConfig {
//!     window_capacity: 32,
//!     min_fit_windows: 16,
//!     ..OnlinePlannerConfig::default()
//! };
//! let engine = warmed_engine(&snapshots, config);
//! assert_eq!(engine.windows_seen(), 40);
//! assert_eq!(engine.assessments().len(), 8, "every pool planned");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_fixture;
pub mod csv;
pub mod experiments;
pub mod scale;
pub mod synthetic;

pub use scale::Scale;
