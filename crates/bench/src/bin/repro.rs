//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 list experiments
//! repro all                  run everything at paper scale
//! repro fig9 table4          run selected experiments
//! repro all --quick          reduced scale (fast smoke run)
//! repro all --out results/   also write CSV series
//! repro all --seed 7         change the master seed
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use headroom_bench::experiments::{self, is_known_id, ALL};
use headroom_bench::Scale;

/// Counting allocator: lets `repro sweep` measure (and gate on) the
/// zero-allocation contract of the steady-state window path. The counter
/// is a relaxed atomic increment — noise for every other experiment.
#[global_allocator]
static ALLOC: headroom_exec::alloc_track::CountingAllocator =
    headroom_exec::alloc_track::CountingAllocator;

fn print_usage() {
    eprintln!("usage: repro <list|all|EXPERIMENT...> [--quick] [--seed N] [--out DIR]");
    eprintln!("experiments:");
    for e in ALL {
        eprintln!("  {:<8} {} ({})", e.id, e.title, e.paper_ref);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut scale = Scale::paper();
    let mut out_dir: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale { seed: scale.seed, ..Scale::quick() },
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(seed) => scale.seed = seed,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
    }

    if targets.iter().any(|t| t == "all") {
        targets = ALL.iter().map(|e| e.id.to_string()).collect();
    }
    if targets.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    // Reject unknown experiments up front with the listing, instead of
    // running half the batch before tripping on a typo.
    let unknown: Vec<&String> = targets.iter().filter(|t| !is_known_id(t)).collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("unknown experiment: {id}");
        }
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for (i, id) in targets.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("=== {id} ===");
        let start = std::time::Instant::now();
        match experiments::run_by_id(id, &scale, out_dir.as_deref()) {
            Ok(report) => {
                print!("{report}");
                println!("[{id} done in {:.1?}]", start.elapsed());
            }
            Err(e) => {
                eprintln!("{id} FAILED: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
