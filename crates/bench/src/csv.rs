//! CSV output for experiment series.

use std::fs;
use std::io::Write;
use std::path::Path;

/// One CSV-exportable table of experiment data.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    /// File stem (e.g. `"fig09_latency"`).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Builds a table from `(x, y)` series.
    pub fn from_xy(name: &str, x: &str, y: &str, points: &[(f64, f64)]) -> Self {
        CsvTable {
            name: name.to_string(),
            headers: vec![x.to_string(), y.to_string()],
            rows: points.iter().map(|(a, b)| vec![format!("{a}"), format!("{b}")]).collect(),
        }
    }

    /// Serialises to CSV text (quotes cells containing commas).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{}.csv", self.name)))?;
        f.write_all(self.to_csv_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_roundtrip() {
        let t = CsvTable::from_xy("t", "rps", "cpu", &[(1.0, 2.0), (3.0, 4.0)]);
        let s = t.to_csv_string();
        assert_eq!(s, "rps,cpu\n1,2\n3,4\n");
    }

    #[test]
    fn quoting() {
        let t = CsvTable {
            name: "q".into(),
            headers: vec!["a,b".into()],
            rows: vec![vec!["x\"y".into()]],
        };
        let s = t.to_csv_string();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"x\"\"y\""));
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("headroom_csv_test");
        let t = CsvTable::from_xy("unit", "x", "y", &[(1.0, 1.0)]);
        t.write_to(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert!(content.starts_with("x,y"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
