//! Synthetic partitioned snapshots for sweep-engine scale measurements.
//!
//! The spawn-amortization grids (the `sweep` experiment and the
//! `bench_sweep` Criterion bench) sweep fleets up to 4096 pools; driving
//! the full simulator at that size would dominate the measurement, and the
//! sweep engine only ever sees snapshot rows anyway. One generator serves
//! both harnesses so they always measure the *same* workload — a drift in
//! the synthetic response curves cannot silently desynchronize the
//! checked-in `BENCH_sweep.json` from the Criterion numbers.

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::columns::{ColumnarSnapshot, SnapshotColumns};
use headroom_cluster::hardware::HardwareGeneration;
use headroom_cluster::maintenance::MaintenancePlan;
use headroom_cluster::pool::Pool;
use headroom_cluster::server::Server;
use headroom_cluster::sim::{
    KernelCache, PartitionedSnapshot, PoolSlice, SnapshotRow, StreamedKernels, StreamedSource,
    StreamedWindow,
};
use headroom_core::slo::QosRequirement;
use headroom_online::planner::OnlinePlannerConfig;
use headroom_online::sweep::SweepEngine;
use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
use headroom_telemetry::time::WindowIndex;
use headroom_workload::DiurnalCurve;

/// One recorded window: the owned rows plus their pool partition.
pub type RecordedWindow = (Vec<SnapshotRow>, Vec<PoolSlice>);

/// One recorded window in columnar layout, plus its pool partition.
pub type RecordedColumns = (SnapshotColumns, Vec<PoolSlice>);

/// Generates `windows` pool-contiguous snapshots of a synthetic fleet on
/// the paper's pool-B response curves, each pool on its own diurnal-ish
/// phase. Deterministic: same arguments, same rows.
pub fn synthetic_snapshots(pools: u32, servers_per_pool: u32, windows: u64) -> Vec<RecordedWindow> {
    (0..windows)
        .map(|w| {
            let mut rows = Vec::with_capacity((pools * servers_per_pool) as usize);
            let mut slices = Vec::with_capacity(pools as usize);
            for p in 0..pools {
                let rps = 200.0
                    + 150.0
                        * (((w + 17 * p as u64) as f64 / 96.0) * std::f64::consts::PI).sin().abs();
                let start = rows.len();
                for s in 0..servers_per_pool {
                    rows.push(SnapshotRow {
                        server: ServerId(p * 10_000 + s),
                        pool: PoolId(p),
                        datacenter: DatacenterId((p % 9) as u16),
                        online: true,
                        rps,
                        cpu_pct: 0.028 * rps + 1.37,
                        latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
                        disk_queue: 1.0,
                        memory_pages_per_sec: 4_000.0,
                        network_mbps: 0.32 * rps,
                    });
                }
                slices.push(PoolSlice { pool: PoolId(p), start, len: rows.len() - start });
            }
            (rows, slices)
        })
        .collect()
}

/// The same recorded windows in columnar (struct-of-arrays) layout — the
/// conversion is lossless, so a grid cell measured over these sees the
/// exact same workload as its row-layout sibling.
pub fn synthetic_columns(snapshots: &[RecordedWindow]) -> Vec<RecordedColumns> {
    snapshots
        .iter()
        .map(|(rows, slices)| (SnapshotColumns::from_rows(rows), slices.clone()))
        .collect()
}

/// A sweep engine warmed over every recorded snapshot (windows `0..len`),
/// recommendations drained — ready for steady-state measurement.
pub fn warmed_engine(snapshots: &[RecordedWindow], config: OnlinePlannerConfig) -> SweepEngine {
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for (i, (rows, pools)) in snapshots.iter().enumerate() {
        engine.observe_partitioned(&PartitionedSnapshot {
            window: WindowIndex(i as u64),
            rows,
            pools,
        });
    }
    engine.drain_recommendations();
    engine
}

/// [`warmed_engine`] fed through the columnar ingestion path instead —
/// bit-identical planner state (property- and gate-tested), columnar
/// steady-state measurement.
pub fn warmed_engine_columns(
    columns: &[RecordedColumns],
    config: OnlinePlannerConfig,
) -> SweepEngine {
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for (i, (cols, pools)) in columns.iter().enumerate() {
        engine.observe_columns(&ColumnarSnapshot {
            window: WindowIndex(i as u64),
            columns: cols,
            pools,
        });
    }
    engine.drain_recommendations();
    engine
}

/// The recorded windows of a streamed-ingestion measurement: the same
/// workload stream as the materialised fixtures (each window's RPS column,
/// online bitmask, and pool partition are copied verbatim from the
/// [`RecordedColumns`] it is built from), plus the replay side of the
/// kernel inputs — per-pool response models (the paper's pool-B curves,
/// matching the synthetic row formulas), per-server hardware generations,
/// and per-window noise columns. Metric columns are *not* replayed: the
/// engine's streamed path generates them tile-at-a-time from these inputs,
/// which is exactly the work the fixture exists to measure.
///
/// The noise columns are zero-filled but per-window-allocated: the kernel
/// outputs stay the smooth response curves (so engine behaviour mirrors
/// the materialised cells), while each window still streams distinct
/// fleet-length noise memory — the same traffic shape the live pipeline's
/// freshly written noise columns have.
pub struct StreamedFixture {
    cache: KernelCache,
    hw: Vec<HardwareGeneration>,
    windows: Vec<StreamedRecord>,
}

/// One recorded streamed window: workload columns + partition + noise.
struct StreamedRecord {
    columns: SnapshotColumns,
    slices: Vec<PoolSlice>,
    noise_cpu: Vec<f64>,
    noise_p95: Vec<f64>,
    noise_avg: Vec<f64>,
}

impl StreamedFixture {
    /// Recorded windows available for cycling.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window was recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The streamed view of recorded window `recorded`, presented as
    /// window `window` — the replay twin of `Simulation::step_streamed`.
    pub fn window(&self, recorded: usize, window: WindowIndex) -> StreamedWindow<'_> {
        let r = &self.windows[recorded];
        StreamedWindow {
            window,
            pools: &r.slices,
            source: StreamedSource::Kernels(StreamedKernels::from_parts(
                &r.columns,
                &self.hw,
                &r.noise_cpu,
                &r.noise_p95,
                &r.noise_avg,
                &self.cache,
            )),
        }
    }
}

/// Builds the streamed twin of a [`RecordedColumns`] fixture: same
/// workload stream and pool partition, kernel inputs instead of metric
/// columns (see [`StreamedFixture`]). Deterministic, like the fixtures it
/// mirrors.
pub fn synthetic_streamed(columns: &[RecordedColumns]) -> StreamedFixture {
    let (_, slices) = &columns[0];
    let spec = MicroserviceKind::B.spec();
    let lanes = slices.iter().map(|s| s.len).sum::<usize>();
    let mut hw = Vec::with_capacity(lanes);
    let pools: Vec<Pool> = slices
        .iter()
        .map(|slice| {
            let servers: Vec<Server> = (0..slice.len)
                .map(|s| {
                    hw.push(spec.generation_for(s, slice.len));
                    Server::new(
                        ServerId(slice.pool.0 * 10_000 + s as u32),
                        spec.generation_for(s, slice.len),
                    )
                })
                .collect();
            Pool {
                id: slice.pool,
                datacenter: DatacenterId((slice.pool.0 % 9) as u16),
                service: spec.kind,
                model: spec.model.clone(),
                servers,
                demand: DiurnalCurve::new(1.0),
                maintenance: MaintenancePlan::new(spec.practice, slice.pool.0 as u64),
                failures: None,
                net_scale: 1.0,
                local_hour_offset: 0.0,
            }
        })
        .collect();
    let windows = columns
        .iter()
        .map(|(cols, slices)| StreamedRecord {
            columns: cols.clone(),
            slices: slices.clone(),
            noise_cpu: vec![0.0; lanes],
            noise_p95: vec![0.0; lanes],
            noise_avg: vec![0.0; lanes],
        })
        .collect();
    // Every pool carries the same spec-B model, so the cache collapses
    // to one entry — the kernels read it from L1 while only the dense
    // index + net_scale columns stream, exactly as a real fleet (a
    // handful of service specs over any number of pools) behaves.
    let cache = KernelCache::build(&pools);
    StreamedFixture { cache, hw, windows }
}

/// [`warmed_engine`] fed through the streamed ingestion path — the
/// tile-fused pipeline's steady-state measurement twin.
pub fn warmed_engine_streamed(
    fixture: &StreamedFixture,
    config: OnlinePlannerConfig,
) -> SweepEngine {
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for i in 0..fixture.len() {
        engine.observe_streamed(&fixture.window(i, WindowIndex(i as u64)));
    }
    engine.drain_recommendations();
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_pool_contiguous_and_deterministic() {
        let a = synthetic_snapshots(5, 3, 4);
        let b = synthetic_snapshots(5, 3, 4);
        assert_eq!(a, b, "same arguments, same rows");
        let (rows, slices) = &a[0];
        assert_eq!(rows.len(), 15);
        assert_eq!(slices.len(), 5);
        let mut cursor = 0;
        for slice in slices {
            assert_eq!(slice.start, cursor);
            assert!(rows[slice.start..slice.start + slice.len]
                .iter()
                .all(|r| r.pool == slice.pool));
            cursor += slice.len;
        }
        assert_eq!(cursor, rows.len());
    }

    #[test]
    fn warmed_engine_has_planned_every_pool() {
        let snapshots = synthetic_snapshots(4, 3, 40);
        let config = OnlinePlannerConfig {
            window_capacity: 32,
            min_fit_windows: 16,
            ..OnlinePlannerConfig::default()
        };
        let engine = warmed_engine(&snapshots, config);
        assert_eq!(engine.windows_seen(), 40);
        assert_eq!(engine.assessments().len(), 4);
    }

    #[test]
    fn columnar_warmup_matches_row_warmup() {
        let snapshots = synthetic_snapshots(5, 3, 40);
        let columns = synthetic_columns(&snapshots);
        let config = OnlinePlannerConfig {
            window_capacity: 32,
            min_fit_windows: 16,
            ..OnlinePlannerConfig::default()
        };
        let by_rows = warmed_engine(&snapshots, config);
        let by_cols = warmed_engine_columns(&columns, config);
        assert_eq!(by_cols.windows_seen(), 40);
        assert_eq!(by_rows.assessments(), by_cols.assessments());
    }
}
