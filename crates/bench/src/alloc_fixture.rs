//! The shared steady-state zero-allocation fixture.
//!
//! Three gates measure the same contract — a warmed, non-replan window of
//! the full simulator→ingestion pipeline performs zero heap allocations —
//! on the row layout (`repro sweep`), the columnar and streamed layouts
//! (`repro colsim`), and all three across thread counts (the
//! `alloc_steady_state` integration test). They must all drive the *same*
//! workload, or a layout-specific allocation regression could hide behind
//! a fixture drift; this module is the single definition of that workload.

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::maintenance::AvailabilityPractice;
use headroom_cluster::sim::{RecordingPolicy, SimConfig, Simulation, SnapshotLayout};
use headroom_cluster::topology::FleetBuilder;
use headroom_core::slo::QosRequirement;
use headroom_exec::alloc_track;
use headroom_online::planner::OnlinePlannerConfig;
use headroom_online::sweep::SweepEngine;
use headroom_telemetry::ids::DatacenterId;
use headroom_telemetry::time::SimTime;
use headroom_workload::events::{EventEffect, EventScript, ScheduledEvent};

/// Windows per replan in the fixture; measured windows dodge the cadence.
pub const REPLAN_EVERY: u64 = 16;
/// Warm-up length: fills the sliding window, the fits, and every scratch
/// buffer, includes many replans (so output buffers hold capacity), and
/// ends exactly on a replan tick.
pub const WARM_WINDOWS: u64 = 25 * REPLAN_EVERY;
/// Windows measured after warm-up.
pub const MEASURED_WINDOWS: u64 = 10;

/// One warmed simulator + engine pair on the canonical fixture fleet
/// (3 DCs × service B × 12 servers, no failures/incidents, SnapshotOnly,
/// replan every 16 windows), driven through the requested snapshot layout.
pub fn warmed(threads: usize, layout: SnapshotLayout) -> (Simulation, SweepEngine) {
    warmed_with(threads, layout, false)
}

/// The scenario-active twin of [`warmed`]: the same pipeline with a
/// `DatacenterLoss` *and* a global demand multiplier active across every
/// warmed and measured window, so the event-evaluation and loss-
/// redistribution paths are on the measured steady state. The fleet is
/// deployed with extra headroom (demand at 55% of the catalog peak) so
/// the survivors stay non-urgent under the rerouted load — a nonzero
/// count is then an allocation-contract violation, not urgency replans.
pub fn warmed_scenario(threads: usize, layout: SnapshotLayout) -> (Simulation, SweepEngine) {
    warmed_with(threads, layout, true)
}

/// Drives one window of the pipeline through the requested layout.
fn observe_window(sim: &mut Simulation, engine: &mut SweepEngine, layout: SnapshotLayout) {
    match layout {
        SnapshotLayout::Streamed => {
            let win = sim.step_streamed();
            engine.observe_streamed(&win);
        }
        SnapshotLayout::Columnar => {
            let snap = sim.step_columns_partitioned();
            engine.observe_columns(&snap);
        }
        SnapshotLayout::Rows => {
            let snap = sim.step_snapshot_partitioned();
            engine.observe_partitioned(&snap);
        }
    }
}

fn warmed_with(
    threads: usize,
    layout: SnapshotLayout,
    scenario: bool,
) -> (Simulation, SweepEngine) {
    let mut builder = FleetBuilder::new(11).datacenters(3).without_failures().without_incidents();
    builder = if scenario {
        let spec = MicroserviceKind::B.spec().with_practice(AvailabilityPractice::WellManaged);
        builder
            .deploy_with_spec(&spec, 12, spec.peak_rps_per_server * 0.55)
            .expect("catalog service deploys")
    } else {
        builder.deploy_service(MicroserviceKind::B, 12).expect("catalog service deploys")
    };
    let fleet = builder.build();
    let events = if scenario {
        // Active from window 0 through far past the measured span.
        let forever = 30 * 86_400;
        EventScript::new(vec![
            ScheduledEvent::new(
                SimTime::ZERO,
                forever,
                EventEffect::DatacenterLoss { datacenter: DatacenterId(2) },
            ),
            ScheduledEvent::new(
                SimTime::ZERO,
                forever,
                EventEffect::GlobalDemandMultiplier { factor: 1.1 },
            ),
        ])
    } else {
        EventScript::empty()
    };
    let sim_config = SimConfig {
        seed: 11,
        recording: RecordingPolicy::SnapshotOnly,
        track_availability: false,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fleet, events, sim_config);
    let config = OnlinePlannerConfig {
        window_capacity: 64,
        min_fit_windows: 32,
        replan_every: REPLAN_EVERY,
        threads,
        // The fixture fleet is tiny (3 pools), so the small-fleet fan-out
        // clamp would pin it sequential; force one-pool chunks so the
        // multi-thread variants actually measure the parallel path.
        min_pool_chunk: 1,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for _ in 0..WARM_WINDOWS {
        observe_window(&mut sim, &mut engine, layout);
    }
    engine.drain_recommendations();
    (sim, engine)
}

/// Counts heap allocations over [`MEASURED_WINDOWS`] warmed, non-replan
/// windows of the full pipeline in the requested layout. Meaningful only
/// when [`alloc_track::is_tracking`] (the `repro` binary or the dedicated
/// integration test install the counting allocator); always 0 otherwise.
///
/// # Panics
///
/// Panics when the fixture itself is broken — warm-up not ending on a
/// replan tick, or the fleet unplanned/urgent (an urgent pool legitimately
/// replans every window, which would make a nonzero count a fixture bug,
/// not an allocation-contract violation).
pub fn measure_steady_state_allocs(threads: usize, layout: SnapshotLayout) -> u64 {
    measure(warmed(threads, layout), layout)
}

/// [`measure_steady_state_allocs`] on the scenario-active fixture: the
/// same contract while a `DatacenterLoss` + global surge are live.
pub fn measure_steady_state_allocs_scenario(threads: usize, layout: SnapshotLayout) -> u64 {
    measure(warmed_scenario(threads, layout), layout)
}

fn measure((mut sim, mut engine): (Simulation, SweepEngine), layout: SnapshotLayout) -> u64 {
    assert!(
        engine.windows_seen().is_multiple_of(REPLAN_EVERY),
        "alloc fixture: warm-up must end on a replan tick"
    );
    assert!(
        !engine.assessments().is_empty()
            && engine.assessments().values().all(|a| !a.band.needs_capacity()),
        "alloc fixture: the measured fleet must be planned and non-urgent"
    );
    let before = alloc_track::allocations();
    for _ in 0..MEASURED_WINDOWS {
        observe_window(&mut sim, &mut engine, layout);
    }
    alloc_track::allocations() - before
}
