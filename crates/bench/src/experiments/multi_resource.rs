//! Live binding-constraint discovery on a mixed-resource fleet.
//!
//! Not a paper artifact: this experiment validates the multi-resource
//! generalization of the online planner against synthetic ground truth.
//! §II-A1 of the paper sizes each pool against its *limiting resource* —
//! here a mixed fleet is constructed where four different constraints bind
//! (CPU, disk queue, memory paging, network throughput, one per service),
//! and the planner must *discover* each pool's binding constraint from
//! nothing but the windowed counters:
//!
//! 1. **ground truth** — every pool's discovered binding constraint must
//!    equal the resource its service was engineered to exhaust first (the
//!    per-request cost shapes come from
//!    `headroom_workload::resource_profile`); a mismatch **fails the
//!    experiment** (and therefore CI);
//! 2. **determinism** — the discovery must be bit-identical across
//!    sequential, persistent-pool, and scoped execution at several thread
//!    counts, like every other planner output.

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::hardware::HardwareGeneration;
use headroom_cluster::maintenance::AvailabilityPractice;
use headroom_cluster::service_model::ServiceModel;
use headroom_cluster::sim::{RecordingPolicy, SimConfig, Simulation};
use headroom_cluster::topology::{Fleet, FleetBuilder};
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;
use headroom_online::planner::{BindingConstraint, OnlinePlannerConfig, SweepExec};
use headroom_online::sweep::SweepEngine;
use headroom_telemetry::counter::Resource;
use headroom_telemetry::ids::PoolId;
use headroom_workload::events::EventScript;
use headroom_workload::resource_profile::ResourceProfile;

use crate::csv::CsvTable;
use crate::Scale;

/// Datacenters in the mixed fleet (pools per engineered constraint).
const DATACENTERS: usize = 2;
/// Peak RPS per server every pool is provisioned for.
const PEAK_RPS: f64 = 300.0;
/// Servers per pool at weight 1.0.
const SERVERS_PER_POOL: usize = 8;

/// One pool's verdict: the constraint it was engineered to exhaust first
/// vs the constraint the planner discovered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolVerdict {
    /// The pool.
    pub pool: PoolId,
    /// Service label (which engineered profile the pool runs).
    pub service: MicroserviceKind,
    /// Ground truth: the resource the service exhausts first by design.
    pub expected: Resource,
    /// What the planner discovered from the counters.
    pub discovered: BindingConstraint,
    /// Per-server RPS at which the engineered constraint crosses its
    /// safety threshold (analytic, from the model coefficients).
    pub design_rps_at_limit: f64,
}

impl PoolVerdict {
    /// Whether discovery matched the engineered ground truth.
    pub fn matched(&self) -> bool {
        self.discovered == BindingConstraint::Resource(self.expected)
    }
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiResourceReport {
    /// Windows driven.
    pub windows: u64,
    /// Per-pool verdicts.
    pub rows: Vec<PoolVerdict>,
    /// Distinct resources that bound across the fleet.
    pub distinct_bindings: usize,
    /// Whether every exec mode / thread count produced identical results.
    pub deterministic: bool,
}

impl MultiResourceReport {
    /// Whether every pool's discovery matched ground truth.
    pub fn all_matched(&self) -> bool {
        self.rows.iter().all(|r| r.matched())
    }
}

/// The four engineered services: each exhausts a different resource first.
/// Catalog kinds are reused purely as labels.
fn engineered_specs() -> Vec<(headroom_cluster::catalog::ServiceSpec, Resource, f64)> {
    // A well-conditioned quadratic (curvature dominates the window noise
    // over the observed 100–300 RPS range) that reaches the 60 ms SLO only
    // around 1 250 RPS — far above every engineered resource threshold, so
    // a noisy fit cannot make latency spuriously bind.
    let latency = [10.0, -0.01, 4e-5];
    let qos = QosRequirement::latency(60.0).with_cpu_ceiling(90.0);

    // CPU-bound: costly requests hit the 90% ceiling at ~733 RPS/server.
    let cpu_model = ServiceModel::new(0.12, 2.0, latency)
        .with_queue_capacity(2_200.0)
        .with_latency_noise(0.15)
        .with_resource_profile(&ResourceProfile::cpu_only());
    // Disk-bound: queue depth 0.5 + 0.04·r crosses 24 at ~587 RPS/server.
    let disk_profile =
        ResourceProfile { disk_queue_per_rps: 0.04, pages_per_rps: 2.0, net_bytes_per_req: 30e3 };
    let mut disk_model = ServiceModel::new(0.03, 1.0, latency)
        .with_latency_noise(0.15)
        .with_resource_profile(&disk_profile);
    disk_model.disk_queue_base = 0.5;
    // Memory-bound: paging 2 000 + 120·r crosses 60 000 at ~483 RPS/server.
    let mem_profile = ResourceProfile {
        disk_queue_per_rps: 0.002,
        pages_per_rps: 120.0,
        net_bytes_per_req: 25e3,
    };
    let mut mem_model = ServiceModel::new(0.03, 1.0, latency)
        .with_latency_noise(0.15)
        .with_resource_profile(&mem_profile);
    mem_model.paging_base = 2_000.0;
    // Network-bound: 24 Mbps per RPS crosses 9 Gbps at ~375 RPS/server
    // (modulated per datacenter by net_scale).
    let net_profile =
        ResourceProfile { disk_queue_per_rps: 0.001, pages_per_rps: 1.0, net_bytes_per_req: 3.0e6 };
    let net_model = ServiceModel::new(0.03, 1.0, latency)
        .with_latency_noise(0.15)
        .with_resource_profile(&net_profile);

    let spec =
        |kind: MicroserviceKind, model: ServiceModel| headroom_cluster::catalog::ServiceSpec {
            kind,
            model,
            servers_per_pool: SERVERS_PER_POOL,
            peak_rps_per_server: PEAK_RPS,
            practice: AvailabilityPractice::WellManaged,
            latency_slo_ms: 60.0,
            hardware_mix: vec![(HardwareGeneration::Gen1, 1.0)],
        };

    vec![
        (spec(MicroserviceKind::F, cpu_model), Resource::Cpu, (qos.cpu_ceiling_pct - 2.0) / 0.12),
        (
            spec(MicroserviceKind::C, disk_model),
            Resource::DiskQueue,
            (qos.disk_queue_limit - 0.5) / 0.04,
        ),
        (
            spec(MicroserviceKind::A, mem_model),
            Resource::MemoryPages,
            (qos.memory_pages_limit - 2_000.0) / 120.0,
        ),
        (
            spec(MicroserviceKind::E, net_model),
            Resource::Network,
            // At net_scale 1.0; per-datacenter scale shifts the exact
            // crossing but not which resource binds.
            qos.network_mbps_limit / (3.0e6 * 8.0 / 1e6),
        ),
    ]
}

/// Ground truth per engineered service: its label, the resource it exhausts
/// first by design, and the analytic per-server RPS at that threshold.
type GroundTruth = Vec<(MicroserviceKind, Resource, f64)>;

fn build_fleet(seed: u64) -> Result<(Fleet, GroundTruth), Box<dyn Error>> {
    let mut builder =
        FleetBuilder::new(seed).datacenters(DATACENTERS).without_failures().without_incidents();
    let mut truth = Vec::new();
    for (spec, resource, design_rps) in engineered_specs() {
        truth.push((spec.kind, resource, design_rps));
        builder = builder.deploy_with_spec(&spec, SERVERS_PER_POOL, PEAK_RPS)?;
    }
    Ok((builder.build(), truth))
}

fn drive(seed: u64, windows: u64, threads: usize, exec: SweepExec) -> SweepEngine {
    let (fleet, _) = build_fleet(seed).expect("mixed fleet builds");
    let sim_config = SimConfig {
        seed,
        recording: RecordingPolicy::SnapshotOnly,
        track_availability: false,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fleet, EventScript::empty(), sim_config);
    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: 180.min(windows as usize / 2).max(8),
        threads,
        exec,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = SweepEngine::new(config, QosRequirement::latency(60.0).with_cpu_ceiling(90.0));
    for _ in 0..windows {
        let snap = sim.step_snapshot_partitioned();
        engine.observe_partitioned(&snap);
    }
    engine
}

/// Runs the discovery-vs-ground-truth comparison, then re-runs the same
/// stream under every exec mode / thread width and demands bit-identity.
///
/// # Errors
///
/// Fails when any pool's discovered binding constraint differs from the
/// engineered ground truth, when fewer than 3 distinct resources bind
/// across the fleet, or when any execution shape diverges — these are
/// acceptance criteria, so a CI run must go red.
pub fn run(scale: &Scale) -> Result<MultiResourceReport, Box<dyn Error>> {
    let windows = scale.observe_windows();
    let seed = scale.seed;
    let (fleet, truth) = build_fleet(seed)?;

    let reference = drive(seed, windows, 1, SweepExec::Persistent);
    let deterministic = [
        drive(seed, windows, 2, SweepExec::Persistent),
        drive(seed, windows, 4, SweepExec::Persistent),
        drive(seed, windows, 4, SweepExec::Scoped),
    ]
    .iter()
    .all(|e| e.assessments() == reference.assessments());

    let mut rows = Vec::new();
    for pool in fleet.pools() {
        let (_, expected, design_rps) = truth
            .iter()
            .find(|(kind, _, _)| *kind == pool.service)
            .copied()
            .ok_or("pool service missing from ground truth")?;
        let assessment = reference
            .assessments()
            .get(pool.id)
            .ok_or_else(|| format!("pool {} was never planned", pool.id.0))?;
        rows.push(PoolVerdict {
            pool: pool.id,
            service: pool.service,
            expected,
            discovered: assessment.binding,
            design_rps_at_limit: design_rps,
        });
    }

    let mut bound: Vec<Resource> = rows.iter().filter_map(|r| r.discovered.resource()).collect();
    bound.sort_unstable();
    bound.dedup();
    let report =
        MultiResourceReport { windows, rows, distinct_bindings: bound.len(), deterministic };
    if !report.all_matched() {
        return Err(
            format!("discovered binding constraints diverge from ground truth:\n{report}").into()
        );
    }
    if report.distinct_bindings < 3 {
        return Err(format!(
            "only {} distinct resources bound — the fleet must mix at least 3:\n{report}",
            report.distinct_bindings
        )
        .into());
    }
    if !report.deterministic {
        return Err(
            format!("binding discovery diverged across exec modes/threads:\n{report}").into()
        );
    }
    Ok(report)
}

impl MultiResourceReport {
    /// CSV export of the per-pool verdicts.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "multi_resource".into(),
            headers: vec![
                "pool".into(),
                "service".into(),
                "expected".into(),
                "discovered".into(),
                "design_rps_at_limit".into(),
                "matched".into(),
            ],
            rows: self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.pool.0.to_string(),
                        format!("{:?}", r.service),
                        r.expected.to_string(),
                        r.discovered.to_string(),
                        format!("{:.0}", r.design_rps_at_limit),
                        r.matched().to_string(),
                    ]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for MultiResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Binding-constraint discovery on a mixed fleet ({} pools, {} windows):",
            self.rows.len(),
            self.windows
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.pool.0.to_string(),
                    format!("{:?}", r.service),
                    r.expected.to_string(),
                    r.discovered.to_string(),
                    format!("{:.0}", r.design_rps_at_limit),
                    if r.matched() { "yes".into() } else { "NO".into() },
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &["Pool", "Service", "Engineered", "Discovered", "RPS@limit", "Match"],
                &rows
            )
        )?;
        writeln!(
            f,
            "distinct binding resources: {}; ground truth matched: {}; \
             deterministic across exec modes: {}",
            self.distinct_bindings,
            if self.all_matched() { "yes (all pools)" } else { "NO" },
            if self.deterministic { "yes" } else { "NO" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_matches_ground_truth_and_is_deterministic() {
        let scale = Scale { observe_days: 0.5, ..Scale::quick() };
        let r = run(&scale).unwrap();
        assert_eq!(r.rows.len(), DATACENTERS * 4, "four services per datacenter");
        assert!(r.all_matched(), "{r}");
        assert_eq!(r.distinct_bindings, 4, "all four resources bind somewhere: {r}");
        assert!(r.deterministic, "{r}");
    }
}
